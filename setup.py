"""Build script: packaging metadata lives in pyproject.toml.

The only thing defined here is the optional C fast path for the wire
codec (``repro.serial._wirec``).  The build is strictly best-effort:
``optional=True`` plus a tolerant ``build_ext`` mean a missing compiler,
missing Python headers or any compile error produce a warning and a
pure-Python install — importing :mod:`repro` never requires the
extension (``repro.serial.fastpath`` falls back automatically, and the
no-compiler CI job pins that).  Set ``REPRO_NO_EXT=1`` to skip the
extension build entirely.
"""

import os
import sys

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """Swallow any extension build failure; the pure path covers it."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # pragma: no cover - compiler-dependent
            self._warn(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # pragma: no cover - compiler-dependent
            self._warn(exc)

    @staticmethod
    def _warn(exc):
        print(
            f"WARNING: building repro.serial._wirec failed ({exc!r}); "
            "continuing with the pure-Python wire codec",
            file=sys.stderr,
        )


ext_modules = []
cmdclass = {}
if os.environ.get("REPRO_NO_EXT", "0") != "1":
    ext_modules.append(
        Extension(
            "repro.serial._wirec",
            sources=["src/repro/serial/_wirec.c"],
            optional=True,
        )
    )
    cmdclass["build_ext"] = optional_build_ext

setup(ext_modules=ext_modules, cmdclass=cmdclass)
