"""Property suite pinning fast/pure codec byte-identity.

The fast paths (per-token-type plans and the optional compiled visitor,
:mod:`repro.serial.fastpath`) must be invisible on the wire: for every
payload the bytes they emit equal the pure visitor's bytes, and a
message encoded by either side decodes identically on the other.  These
tests drive both directions over arbitrary payload trees — including
the kinds the fast paths cannot handle, where the total-fallback rule
must kick in rather than diverge.

Run twice by the codec-parity CI job: once with the compiled extension
built, once without (plans only); the properties hold either way.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays, array_shapes

from repro.serial import Buffer, ComplexToken, SimpleToken, Vector, decode, encode
from repro.serial import fastpath
from repro.serial.plans import PlanMiss, build_decode_plan, build_encode_plan
from repro.serial.wire import _SEGMENT_THRESHOLD


class ParityToken(ComplexToken):
    """Generic carrier for parity payloads."""

    def __init__(self, payload=None):
        self.payload = payload


class ScalarToken(SimpleToken):
    """Scalar-heavy layout (str field keeps it off the plan path)."""

    def __init__(self, seq=0, value=0.0, flag=False, note="", tag=None):
        self.seq = seq
        self.value = value
        self.flag = flag
        self.note = note
        self.tag = tag


class PlanToken(SimpleToken):
    """Fixed-width scalars only: the plan path's home turf."""

    def __init__(self, seq=0, value=0.0, flag=False, tag=None):
        self.seq = seq
        self.value = value
        self.flag = flag
        self.tag = tag


scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)

np_dtypes = st.sampled_from(
    [np.int8, np.int32, np.int64, np.uint16, np.float32, np.float64, np.bool_]
)


def small_arrays():
    return np_dtypes.flatmap(
        lambda dt: arrays(
            dtype=dt,
            shape=array_shapes(max_dims=3, max_side=5),
            elements=st.booleans()
            if dt is np.bool_
            else st.integers(min_value=0, max_value=100)
            if np.issubdtype(dt, np.integer)
            else st.floats(width=32, allow_nan=False, allow_infinity=False),
        )
    )


payloads = st.recursive(
    st.one_of(scalars, small_arrays().map(Buffer), small_arrays()),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
        st.lists(children, max_size=3).map(Vector),
    ),
    max_leaves=12,
)


def _pure_encode(tok):
    mode = fastpath.get_codec()
    fastpath.set_codec("pure")
    try:
        return encode(tok)
    finally:
        fastpath.set_codec(mode)


def _fast_encode(tok):
    mode = fastpath.get_codec()
    fastpath.set_codec("fast")
    try:
        return encode(tok)
    finally:
        fastpath.set_codec(mode)


def _pure_decode(data):
    mode = fastpath.get_codec()
    fastpath.set_codec("pure")
    try:
        return decode(data)
    finally:
        fastpath.set_codec(mode)


def _fast_decode(data):
    mode = fastpath.get_codec()
    fastpath.set_codec("fast")
    try:
        return decode(data)
    finally:
        fastpath.set_codec(mode)


@settings(max_examples=200, deadline=None)
@given(payloads)
def test_fast_and_pure_bytes_identical(payload):
    """The load-bearing property: identical wire bytes, both paths."""
    tok = ParityToken(payload)
    assert _fast_encode(tok) == _pure_encode(tok)


@settings(max_examples=120, deadline=None)
@given(payloads)
def test_cross_decode_both_directions(payload):
    """fast-encoded → pure-decoded and pure-encoded → fast-decoded."""
    tok = ParityToken(payload)
    wire = _fast_encode(tok)
    a = _pure_decode(wire)
    b = _fast_decode(_pure_encode(tok))
    # Re-encoding the two decodes (on either path) reproduces the
    # original bytes — field order and value types survived the trip.
    assert _pure_encode(a) == wire
    assert _fast_encode(b) == wire
    assert _fast_encode(a) == _pure_encode(b) == wire


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),
    st.booleans(),
    st.text(max_size=20),
    st.one_of(st.none(), st.integers(min_value=0, max_value=10)),
)
def test_scalar_token_parity(seq, value, flag, note, tag):
    """The plan-specialized layout: every scalar kind and the None/bigint
    edges (ints beyond int64 must fall back identically)."""
    tok = ScalarToken(seq, value, flag, note, tag)
    wire = _fast_encode(tok)
    assert wire == _pure_encode(tok)
    back_fast = _fast_decode(wire)
    back_pure = _pure_decode(wire)
    assert back_fast.fields() == back_pure.fields() == tok.fields()
    for key in tok.fields():
        assert type(getattr(back_fast, key)) is type(getattr(tok, key))


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_borrowed_segment_arrays_fall_back(arr):
    """Arrays at/above the scatter threshold are pure-only: the fast
    paths must fall back whole-message, not truncate or diverge."""
    big = np.zeros(_SEGMENT_THRESHOLD, dtype=np.uint8)
    tok = ParityToken([Buffer(big), arr])
    wire = _fast_encode(tok)
    assert wire == _pure_encode(tok)
    back = _fast_decode(wire)
    assert np.array_equal(back.payload[0].array, big)
    assert np.array_equal(back.payload[1], arr)


def test_int64_boundary_parity():
    for n in (2**63 - 1, -(2**63), 2**63, -(2**63) - 1, 2**200, 0):
        tok = ScalarToken(seq=n)
        assert _fast_encode(tok) == _pure_encode(tok)
        assert _fast_decode(_pure_encode(tok)).seq == n


def test_plan_miss_falls_back_not_raises():
    """A built plan whose guards miss must fall back, never corrupt."""
    fastpath.warm(PlanToken())
    shifted = PlanToken(seq="now a string", value=[1, 2], tag={"k": 1})
    assert _fast_encode(shifted) == _pure_encode(shifted)


def test_plan_field_order_identity():
    """Plans embed the sample's field order; a token whose dict order
    differs must miss the plan and still produce identical bytes."""
    fastpath.warm(PlanToken())
    tok = PlanToken(1, 2.0, True, None)
    reordered = PlanToken.__new__(PlanToken)
    reordered.__dict__ = dict(reversed(list(tok.fields().items())))
    assert _fast_encode(reordered) == _pure_encode(reordered)
    assert _fast_encode(tok) == _pure_encode(tok)


def test_decode_plan_rejects_wrong_length():
    tok = PlanToken(7, 1.5, True, None)
    name = b"PlanToken"
    plan = build_decode_plan(PlanToken, name, tok.fields())
    assert plan is not None
    wire = bytes(_pure_encode(tok))
    with pytest.raises(PlanMiss):
        plan(memoryview(wire + b"\x00"))
    with pytest.raises(PlanMiss):
        plan(memoryview(wire[:-1]))


def test_encode_plan_unplannable_layouts():
    name = b"ParityToken"
    assert build_encode_plan(name, {"payload": [1, 2]}) is None
    assert build_encode_plan(name, {"payload": b"raw"}) is None
    assert build_encode_plan(name, {"payload": "strings vary"}) is None
    # all-scalar layouts plan fine
    assert build_encode_plan(name, {"a": 1, "b": 2.0, "c": None}) is not None


def test_fast_output_is_writable_tail():
    """encode_segments documents a writable whole-message tail; the fast
    paths must preserve that (gather() hands it over as-is)."""
    from repro.serial import encode_segments, gather

    fastpath.warm(PlanToken())
    segs = encode_segments(PlanToken(3, 4.0, False, None))
    assert len(segs) == 1 and type(segs[0]) is bytearray
    assert gather(segs) is segs[0]
