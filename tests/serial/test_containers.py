"""Unit tests for the Buffer and Vector container types."""

import numpy as np
import pytest

from repro.serial import Buffer, ComplexToken, Vector, decode, encode


class ContainerTestToken(ComplexToken):
    def __init__(self, payload=None):
        self.payload = payload


# ---------------------------------------------------------------------------
# Buffer
# ---------------------------------------------------------------------------

def test_buffer_basic_access():
    b = Buffer([1, 2, 3], dtype=np.int32)
    assert len(b) == 3
    assert b[1] == 2
    b[1] = 9
    assert b.array[1] == 9
    assert list(b) == [1, 9, 3]


def test_buffer_properties():
    b = Buffer(np.zeros((4, 5), np.float32))
    assert b.nbytes == 4 * 5 * 4
    assert b.dtype == np.float32
    assert b.shape == (4, 5)


def test_buffer_equality():
    a = Buffer([1, 2, 3])
    assert a == Buffer([1, 2, 3])
    assert a == np.array([1, 2, 3])
    assert not (a == Buffer([1, 2, 4]))
    assert not (a == Buffer([1.0, 2.0, 3.0]))  # dtype differs
    assert not (a == Buffer([[1, 2, 3]]))      # shape differs


def test_buffer_rejects_object_dtype():
    with pytest.raises(TypeError, match="numeric dtype"):
        Buffer(np.array([object()], dtype=object))


def test_buffer_repr():
    assert "float64" in repr(Buffer(np.zeros(3)))


def test_empty_buffer_roundtrip():
    back = decode(encode(ContainerTestToken(Buffer([]))))
    assert len(back.payload) == 0


# ---------------------------------------------------------------------------
# Vector
# ---------------------------------------------------------------------------

def test_vector_basic():
    v = Vector([1, 2])
    v.append(3)
    v.extend([4, 5])
    assert len(v) == 5
    assert v[0] == 1
    assert list(v) == [1, 2, 3, 4, 5]


def test_vector_typed_rejects_wrong_elements():
    class Elem(ComplexToken):
        def __init__(self, x=0):
            self.x = x

    v = Vector(element_type=Elem)
    v.append(Elem(1))
    with pytest.raises(TypeError, match="cannot hold"):
        v.append("not an Elem")
    with pytest.raises(TypeError):
        v.extend([Elem(2), 42])


def test_vector_equality():
    assert Vector([1, 2]) == Vector([1, 2])
    assert Vector([1, 2]) == [1, 2]
    assert not (Vector([1]) == Vector([2]))


def test_vector_repr():
    class Thing(ComplexToken):
        pass

    assert "Thing" in repr(Vector(element_type=Thing))
    assert "Any" in repr(Vector())


def test_vector_of_buffers_roundtrip():
    v = Vector([Buffer(np.arange(3)), Buffer(np.arange(5, dtype=np.int16))])
    back = decode(encode(ContainerTestToken(v)))
    assert len(back.payload) == 2
    assert np.array_equal(back.payload[0].array, np.arange(3))
    assert back.payload[1].dtype == np.int16


def test_deeply_nested_containers_roundtrip():
    payload = Vector([
        {"inner": [Buffer(np.ones(2)), (1, "two")]},
        Vector([Vector([Buffer(np.zeros(1, np.uint8))])]),
    ])
    back = decode(encode(ContainerTestToken(payload))).payload
    assert np.array_equal(back[0]["inner"][0].array, np.ones(2))
    assert back[0]["inner"][1] == (1, "two")
    assert np.array_equal(back[1][0][0].array, np.zeros(1, np.uint8))
