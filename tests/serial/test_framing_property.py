"""Property-based tests for the length-prefixed frame layer.

``frame()``/``unframe()`` sit between the token wire format and the
socket: every payload — single buffer or scatter-gather segment list —
must round-trip bit-exactly through the header, and corrupted headers
must be rejected rather than misparsed.

The batched transport extensions get the same treatment: arbitrary
interleavings of tiny and huge frames must round-trip through
``send_messages()`` + ``FrameReader`` identically to the frame-at-a-time
``send_message()``/``recv_message()`` path, in every sender/receiver
pairing (the wire format is shared, so old and new endpoints
interoperate).
"""

import socket
import struct
import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net import FrameReader, send_message, send_messages
from repro.serial import (
    FRAME_HEADER_BYTES,
    FRAME_VERSION,
    WireError,
    frame,
    gather,
    unframe,
)


def roundtrip(payload):
    segments = frame(payload)
    wire = gather(segments)
    return bytes(unframe(wire))


@given(st.binary(max_size=4096))
def test_frame_roundtrip_single_buffer(payload):
    assert roundtrip(payload) == payload


@given(st.lists(st.binary(max_size=256), max_size=16))
def test_frame_roundtrip_segment_list(segments):
    expected = b"".join(segments)
    assert roundtrip([bytearray(s) for s in segments]) == expected


@given(st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=8))
def test_frame_never_coalesces_segments(segments):
    out = frame([bytearray(s) for s in segments])
    # one header segment prepended; payload segments pass through untouched
    assert len(out) == 1 + len(segments)
    assert bytes(out[0])[:FRAME_HEADER_BYTES] == out[0]
    for original, framed in zip(segments, out[1:]):
        assert bytes(framed) == original


@given(st.binary(max_size=1024))
def test_frame_header_length_and_version(payload):
    head = bytes(frame(payload)[0])
    assert len(head) == FRAME_HEADER_BYTES
    length, version = struct.unpack("<IB", head)
    assert length == len(payload)
    assert version == FRAME_VERSION


@given(st.binary(max_size=256),
       st.integers(min_value=0, max_value=255).filter(
           lambda v: v != FRAME_VERSION))
def test_unframe_rejects_wrong_version(payload, version):
    wire = bytearray(gather(frame(payload)))
    wire[4] = version
    with pytest.raises(WireError, match="version"):
        unframe(wire)


@given(st.binary(min_size=1, max_size=256))
def test_unframe_rejects_truncated_payload(payload):
    wire = gather(frame(payload))
    with pytest.raises(WireError):
        unframe(memoryview(wire)[:len(wire) - 1])


@given(st.binary(max_size=256), st.binary(min_size=1, max_size=16))
def test_unframe_rejects_trailing_garbage(payload, extra):
    wire = bytes(gather(frame(payload))) + extra
    with pytest.raises(WireError):
        unframe(wire)


def test_unframe_rejects_short_header():
    with pytest.raises(WireError):
        unframe(b"\x00\x00")


def test_unframe_is_zero_copy():
    wire = gather(frame(b"payload-bytes"))
    view = unframe(wire)
    assert isinstance(view, memoryview)
    assert view.obj is wire


# ---------------------------------------------------------------------------
# batched transport: send_messages() + FrameReader
# ---------------------------------------------------------------------------

# Interleavings of tiny frames (coalesced many-per-syscall) and huge ones
# (exceeding the reader's staging buffer, taking the direct recv path).
_segment = st.one_of(
    st.binary(max_size=64),
    st.binary(min_size=1024, max_size=4096),
)
_messages = st.lists(
    st.lists(_segment, max_size=3), min_size=1, max_size=8)
_big = settings(deadline=None, max_examples=40,
                suppress_health_check=[HealthCheck.data_too_large])


def _exchange(messages, send_all, recv_bytes=512):
    """Run *send_all* against a FrameReader over a socketpair; returns
    every received payload (the sender runs on its own thread so large
    bursts cannot deadlock on the socket buffer)."""
    out_sock, in_sock = socket.socketpair()
    failure = []

    def sender():
        try:
            send_all(out_sock)
        except Exception as exc:  # pragma: no cover - surfaced in assert
            failure.append(exc)
        finally:
            out_sock.close()

    thread = threading.Thread(target=sender)
    thread.start()
    try:
        reader = FrameReader(in_sock, recv_bytes=recv_bytes)
        received = []
        while True:
            batch = reader.recv_batch()
            if batch is None:
                break
            assert len(batch) >= 1
            received.extend(batch)
    finally:
        thread.join()
        in_sock.close()
    assert not failure, failure[0]
    return received


@_big
@given(_messages, st.integers(min_value=64, max_value=1 << 16))
def test_send_messages_framereader_roundtrip(messages, max_batch_bytes):
    """Batched sender → batch-aware reader: payloads, order and frame
    boundaries all survive arbitrary tiny/huge interleavings."""
    payloads = [[bytearray(s) for s in message] for message in messages]
    received = _exchange(
        payloads,
        lambda sock: send_messages(sock, payloads,
                                   max_batch_bytes=max_batch_bytes))
    assert [bytes(r) for r in received] == \
        [b"".join(message) for message in messages]
    for r in received:
        assert isinstance(r, bytearray)  # owned, decode(copy=False) safe


@_big
@given(_messages)
def test_send_messages_bytes_identical_to_frame_at_a_time(messages):
    """The batched sender's wire bytes are bit-identical to one
    send_message() call per payload — receivers cannot tell them apart."""
    expected = b"".join(
        bytes(gather(frame([bytearray(s) for s in message])))
        for message in messages)
    out_sock, in_sock = socket.socketpair()
    payloads = [[bytearray(s) for s in message] for message in messages]

    def sender():
        total, syscalls = send_messages(out_sock, payloads,
                                        max_batch_bytes=4096)
        assert total == len(expected)
        assert syscalls >= 1
        out_sock.close()

    thread = threading.Thread(target=sender)
    thread.start()
    try:
        got = bytearray()
        while True:
            chunk = in_sock.recv(1 << 16)
            if not chunk:
                break
            got += chunk
    finally:
        thread.join()
        in_sock.close()
    assert bytes(got) == expected


@_big
@given(_messages)
def test_framereader_interops_with_unbatched_sender(messages):
    """A frame-at-a-time sender against the batch-aware reader."""
    payloads = [[bytearray(s) for s in message] for message in messages]

    def send_all(sock):
        for payload in payloads:
            send_message(sock, payload)

    received = _exchange(payloads, send_all)
    assert [bytes(r) for r in received] == \
        [b"".join(message) for message in messages]


def test_framereader_rejects_wrong_version():
    out_sock, in_sock = socket.socketpair()
    wire = bytearray(gather(frame(b"x" * 8)))
    wire[4] ^= 0xFF
    out_sock.sendall(wire)
    out_sock.close()
    reader = FrameReader(in_sock)
    with pytest.raises(WireError, match="version"):
        reader.recv_batch()
    in_sock.close()


def test_framereader_rejects_eof_mid_frame():
    out_sock, in_sock = socket.socketpair()
    wire = bytes(gather(frame(b"y" * 100)))
    out_sock.sendall(wire[:-3])  # die mid-payload
    out_sock.close()
    reader = FrameReader(in_sock)
    with pytest.raises(WireError, match="closed"):
        reader.recv_batch()
    in_sock.close()


def test_framereader_large_frame_direct_path():
    """A frame bigger than the staging buffer arrives intact through the
    direct recv_into path."""
    payload = bytes(range(256)) * 1024  # 256 KiB >> recv_bytes
    received = _exchange(
        [payload], lambda sock: send_messages(sock, [payload]),
        recv_bytes=1024)
    assert len(received) == 1
    assert bytes(received[0]) == payload
