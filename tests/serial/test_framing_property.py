"""Property-based tests for the length-prefixed frame layer.

``frame()``/``unframe()`` sit between the token wire format and the
socket: every payload — single buffer or scatter-gather segment list —
must round-trip bit-exactly through the header, and corrupted headers
must be rejected rather than misparsed.
"""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serial import (
    FRAME_HEADER_BYTES,
    FRAME_VERSION,
    WireError,
    frame,
    gather,
    unframe,
)


def roundtrip(payload):
    segments = frame(payload)
    wire = gather(segments)
    return bytes(unframe(wire))


@given(st.binary(max_size=4096))
def test_frame_roundtrip_single_buffer(payload):
    assert roundtrip(payload) == payload


@given(st.lists(st.binary(max_size=256), max_size=16))
def test_frame_roundtrip_segment_list(segments):
    expected = b"".join(segments)
    assert roundtrip([bytearray(s) for s in segments]) == expected


@given(st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=8))
def test_frame_never_coalesces_segments(segments):
    out = frame([bytearray(s) for s in segments])
    # one header segment prepended; payload segments pass through untouched
    assert len(out) == 1 + len(segments)
    assert bytes(out[0])[:FRAME_HEADER_BYTES] == out[0]
    for original, framed in zip(segments, out[1:]):
        assert bytes(framed) == original


@given(st.binary(max_size=1024))
def test_frame_header_length_and_version(payload):
    head = bytes(frame(payload)[0])
    assert len(head) == FRAME_HEADER_BYTES
    length, version = struct.unpack("<IB", head)
    assert length == len(payload)
    assert version == FRAME_VERSION


@given(st.binary(max_size=256),
       st.integers(min_value=0, max_value=255).filter(
           lambda v: v != FRAME_VERSION))
def test_unframe_rejects_wrong_version(payload, version):
    wire = bytearray(gather(frame(payload)))
    wire[4] = version
    with pytest.raises(WireError, match="version"):
        unframe(wire)


@given(st.binary(min_size=1, max_size=256))
def test_unframe_rejects_truncated_payload(payload):
    wire = gather(frame(payload))
    with pytest.raises(WireError):
        unframe(memoryview(wire)[:len(wire) - 1])


@given(st.binary(max_size=256), st.binary(min_size=1, max_size=16))
def test_unframe_rejects_trailing_garbage(payload, extra):
    wire = bytes(gather(frame(payload))) + extra
    with pytest.raises(WireError):
        unframe(wire)


def test_unframe_rejects_short_header():
    with pytest.raises(WireError):
        unframe(b"\x00\x00")


def test_unframe_is_zero_copy():
    wire = gather(frame(b"payload-bytes"))
    view = unframe(wire)
    assert isinstance(view, memoryview)
    assert view.obj is wire
