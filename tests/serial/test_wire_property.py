"""Property-based tests: wire round-trip over arbitrary token payload trees."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays, array_shapes

from repro.serial import (
    Buffer,
    ComplexToken,
    Vector,
    decode,
    encode,
    encode_segments,
    measure,
)


class PropToken(ComplexToken):
    """Generic carrier for property-based payloads."""

    def __init__(self, payload=None):
        self.payload = payload


scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)

np_dtypes = st.sampled_from(
    [np.int8, np.int32, np.int64, np.uint16, np.float32, np.float64, np.bool_]
)


def small_arrays():
    return np_dtypes.flatmap(
        lambda dt: arrays(
            dtype=dt,
            shape=array_shapes(max_dims=3, max_side=5),
            elements=st.booleans()
            if dt is np.bool_
            else st.integers(min_value=0, max_value=100)
            if np.issubdtype(dt, np.integer)
            else st.floats(width=32, allow_nan=False, allow_infinity=False),
        )
    )


payloads = st.recursive(
    st.one_of(scalars, small_arrays().map(Buffer), small_arrays()),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
        st.lists(children, max_size=3).map(Vector),
    ),
    max_leaves=12,
)


def assert_payload_equal(a, b):
    if isinstance(a, Buffer):
        assert isinstance(b, Buffer)
        assert a.dtype == b.dtype and a.shape == b.shape
        assert np.array_equal(a.array, b.array)
    elif isinstance(a, np.ndarray):
        assert isinstance(b, np.ndarray)
        assert a.dtype == b.dtype and a.shape == b.shape
        assert np.array_equal(a, b)
    elif isinstance(a, Vector):
        assert isinstance(b, Vector) and len(a) == len(b)
        for x, y in zip(a, b):
            assert_payload_equal(x, y)
    elif isinstance(a, (list, tuple)):
        assert type(a) is type(b) and len(a) == len(b)
        for x, y in zip(a, b):
            assert_payload_equal(x, y)
    elif isinstance(a, dict):
        assert isinstance(b, dict) and a.keys() == b.keys()
        for k in a:
            assert_payload_equal(a[k], b[k])
    elif isinstance(a, float):
        assert a == b or (a != a and b != b)
    elif isinstance(a, (bool, int, str, bytes)) or a is None:
        assert a == b and type(a) is type(b)
    else:  # pragma: no cover
        raise AssertionError(f"unexpected payload type {type(a)}")


@settings(max_examples=150, deadline=None)
@given(payloads)
def test_roundtrip_arbitrary_payload(payload):
    tok = PropToken(payload)
    back = decode(encode(tok))
    assert isinstance(back, PropToken)
    assert_payload_equal(tok.payload, back.payload)


@settings(max_examples=60, deadline=None)
@given(payloads)
def test_encode_deterministic(payload):
    tok = PropToken(payload)
    assert encode(tok) == encode(tok)


@settings(max_examples=60, deadline=None)
@given(small_arrays())
def test_buffer_roundtrip_exact(arr):
    back = decode(encode(PropToken(Buffer(arr))))
    assert back.payload.dtype == arr.dtype
    assert back.payload.shape == arr.shape
    assert np.array_equal(back.payload.array, arr)


@settings(max_examples=100, deadline=None)
@given(payloads)
def test_measure_matches_encoded_length(payload):
    """The size-only visitor prices every payload tree exactly."""
    tok = PropToken(payload)
    assert measure(tok) == len(encode(tok))


@settings(max_examples=60, deadline=None)
@given(payloads)
def test_segments_concatenate_to_encode(payload):
    """Scatter-gather output joins to the canonical single-buffer wire."""
    tok = PropToken(payload)
    segs = encode_segments(tok)
    assert b"".join(bytes(s) for s in segs) == encode(tok)


@settings(max_examples=60, deadline=None)
@given(payloads)
def test_borrow_decode_equals_copy_decode(payload):
    """decode(copy=False) yields the same token tree as a copying decode."""
    wire = bytearray(encode(PropToken(payload)))
    copied = decode(bytes(wire))
    borrowed = decode(wire, copy=False)
    assert_payload_equal(copied.payload, borrowed.payload)
