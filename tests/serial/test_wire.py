"""Unit tests for the token wire format and class registry."""

import numpy as np
import pytest

from repro.serial import (
    Buffer,
    ComplexToken,
    SimpleToken,
    Token,
    Vector,
    WireError,
    decode,
    encode,
    encode_into,
    encode_segments,
    encoded_size,
    gather,
    measure,
    registry,
)


class WireCharToken(SimpleToken):
    """The tutorial token from the paper (a char and its position)."""

    def __init__(self, chr="", pos=0):
        self.chr = chr
        self.pos = pos


class MatrixToken(ComplexToken):
    def __init__(self, block=None, row=0, col=0):
        self.block = Buffer(block if block is not None else [])
        self.row = row
        self.col = col


class NestedToken(ComplexToken):
    def __init__(self, children=(), meta=None):
        self.children = Vector(children)
        self.meta = meta or {}


def roundtrip(tok):
    data = encode(tok)
    return decode(data)


def test_simple_roundtrip():
    tok = WireCharToken("a", 7)
    back = roundtrip(tok)
    assert isinstance(back, WireCharToken)
    assert back.chr == "a"
    assert back.pos == 7
    assert back == tok


def test_magic_header():
    data = encode(WireCharToken("x", 1))
    assert data[:4] == b"DPS2"


def test_bad_magic_rejected():
    with pytest.raises(WireError, match="bad magic"):
        decode(b"NOPE" + b"\x00" * 16)


def test_trailing_garbage_rejected():
    data = encode(WireCharToken("x", 1))
    with pytest.raises(WireError, match="trailing"):
        decode(data + b"\x00")


def test_scalar_field_types():
    class ScalarsToken(SimpleToken):
        def __init__(self):
            self.n = None
            self.t = True
            self.f = False
            self.i = -123456789
            self.x = 3.5
            self.s = "héllo"
            self.b = b"\x00\x01\xff"

    back = roundtrip(ScalarsToken())
    assert back.n is None
    assert back.t is True and back.f is False
    assert back.i == -123456789
    assert back.x == 3.5
    assert back.s == "héllo"
    assert back.b == b"\x00\x01\xff"


def test_big_integers():
    class BigToken(Token):
        def __init__(self, v=0):
            self.v = v

    huge = 2**100 + 12345
    assert roundtrip(BigToken(huge)).v == huge
    assert roundtrip(BigToken(-huge)).v == -huge
    assert roundtrip(BigToken(2**63 - 1)).v == 2**63 - 1
    assert roundtrip(BigToken(-(2**63))).v == -(2**63)


def test_buffer_roundtrip_preserves_dtype_and_shape():
    block = np.arange(12, dtype=np.float32).reshape(3, 4)
    tok = MatrixToken(block, row=1, col=2)
    back = roundtrip(tok)
    assert isinstance(back.block, Buffer)
    assert back.block.dtype == np.float32
    assert back.block.shape == (3, 4)
    assert np.array_equal(back.block.array, block)
    assert back.row == 1 and back.col == 2


def test_raw_ndarray_field():
    class ArrToken(ComplexToken):
        def __init__(self, a):
            self.a = a

    arr = np.linspace(0, 1, 17)
    back = roundtrip(ArrToken(arr))
    assert isinstance(back.a, np.ndarray)
    assert np.array_equal(back.a, arr)


def test_zero_dim_array():
    class ArrToken2(ComplexToken):
        def __init__(self, a):
            self.a = a

    back = roundtrip(ArrToken2(np.array(3.25)))
    assert back.a.shape == ()
    assert back.a == 3.25


def test_noncontiguous_array_roundtrip():
    class ArrToken3(ComplexToken):
        def __init__(self, a):
            self.a = a

    base = np.arange(100, dtype=np.int32).reshape(10, 10)
    sliced = base[::2, ::3]
    back = roundtrip(ArrToken3(sliced))
    assert np.array_equal(back.a, sliced)


def test_vector_of_tokens():
    kids = [WireCharToken("a", 0), WireCharToken("b", 1)]
    tok = NestedToken(kids, meta={"k": 5, "name": "x"})
    back = roundtrip(tok)
    assert len(back.children) == 2
    assert isinstance(back.children[0], WireCharToken)
    assert back.children[1].chr == "b"
    assert back.meta == {"k": 5, "name": "x"}


def test_lists_and_tuples():
    class SeqToken(ComplexToken):
        def __init__(self):
            self.l = [1, "two", 3.0, None]
            self.t = (True, b"x")

    back = roundtrip(SeqToken())
    assert back.l == [1, "two", 3.0, None]
    assert back.t == (True, b"x")


def test_nested_token_field():
    class OuterToken(ComplexToken):
        def __init__(self, inner):
            self.inner = inner

    back = roundtrip(OuterToken(WireCharToken("z", 9)))
    assert isinstance(back.inner, WireCharToken)
    assert back.inner.chr == "z" and back.inner.pos == 9


def test_unserializable_field_rejected():
    class BadToken(ComplexToken):
        def __init__(self):
            self.fn = lambda: None

    with pytest.raises(WireError, match="unserializable"):
        encode(BadToken())


def test_object_dtype_rejected():
    class ObjToken(ComplexToken):
        def __init__(self):
            self.a = Buffer([1, 2, 3])

    tok = ObjToken()
    with pytest.raises(TypeError):
        tok.a = Buffer(np.array([object()], dtype=object))


def test_non_string_dict_keys_rejected():
    class DictToken(ComplexToken):
        def __init__(self):
            self.d = {1: "x"}

    with pytest.raises(WireError, match="dict keys"):
        encode(DictToken())


def test_encode_requires_token():
    with pytest.raises(WireError):
        encode({"not": "a token"})


def test_encoded_size_matches_len():
    tok = MatrixToken(np.zeros((8, 8)), 0, 0)
    assert encoded_size(tok) == len(encode(tok))


def test_numpy_scalars_encode_as_python_scalars():
    class NpToken(Token):
        def __init__(self):
            self.i = np.int32(7)
            self.f = np.float64(2.5)

    back = roundtrip(NpToken())
    assert back.i == 7 and isinstance(back.i, int)
    assert back.f == 2.5 and isinstance(back.f, float)


def test_registry_duplicate_name_rejected():
    class UniqueName1(Token):
        pass

    with pytest.raises(ValueError, match="already registered"):
        class UniqueName1(SimpleToken):  # noqa: F811 - deliberate clash
            pass


def test_registry_custom_name():
    class Custom(Token):
        _dps_name_ = "my.custom.token"

    assert registry.lookup("my.custom.token") is Custom
    back = roundtrip(Custom())
    assert isinstance(back, Custom)


def test_registry_unknown_name():
    with pytest.raises(KeyError, match="unknown token class"):
        registry.lookup("never-registered")


def test_underscore_classes_not_registered():
    class _AbstractBase(Token):
        pass

    assert not registry.is_registered("_AbstractBase")


def test_simple_token_validate_rejects_containers():
    class OverweightToken(SimpleToken):
        def __init__(self):
            self.data = Buffer([1, 2, 3])

    with pytest.raises(TypeError, match="SimpleToken fields"):
        OverweightToken().validate()


def test_payload_nbytes_reasonable():
    tok = MatrixToken(np.zeros((16, 16), dtype=np.float64), 0, 0)
    # 16*16*8 = 2048 payload bytes plus two small ints
    assert 2048 <= tok.payload_nbytes() <= 2100


def test_truncated_messages_raise_not_crash():
    """Corrupt/truncated wire data must raise WireError/struct errors,
    never return garbage objects silently."""
    import struct

    data = encode(MatrixToken(np.arange(16.0).reshape(4, 4), 1, 2))
    for cut in (3, 5, 7, len(data) // 2, len(data) - 1):
        with pytest.raises((WireError, ValueError, struct.error, KeyError)):
            decode(data[:cut])


def test_flipped_tag_bytes_raise():
    data = bytearray(encode(WireCharToken("q", 4)))
    # flip the first value-tag byte to an invalid tag id
    # (header: 4 magic + 2 len + name)
    name_len = data[4] | (data[5] << 8)
    tag_pos = 6 + name_len
    data[tag_pos] = 250
    with pytest.raises(WireError, match="unknown wire tag"):
        decode(bytes(data))


# ---------------------------------------------------------------------------
# zero-copy wire path: measure / encode_segments / gather / borrow decode
# ---------------------------------------------------------------------------

class ArrCarrierToken(ComplexToken):
    def __init__(self, a=None):
        self.a = a


def test_empty_array_roundtrip():
    back = roundtrip(ArrCarrierToken(np.empty((0, 3), dtype=np.float64)))
    assert back.a.shape == (0, 3)
    assert back.a.dtype == np.float64
    assert back.a.size == 0


def test_measure_matches_len_scalar_token():
    tok = WireCharToken("q", 3)
    assert measure(tok) == len(encode(tok))


def test_measure_matches_len_large_buffer():
    block = np.arange(256 * 256, dtype=np.float64).reshape(256, 256)
    tok = MatrixToken(block, 1, 2)
    assert measure(tok) == len(encode(tok))


def test_measure_matches_len_nested_tree():
    kids = [WireCharToken(c, i) for i, c in enumerate("abc")]
    tok = NestedToken(kids, meta={"deep": [1, (2.5, None), b"xy"]})
    assert measure(tok) == len(encode(tok))


def test_encode_segments_concatenation_matches_encode():
    tok = MatrixToken(np.arange(1024, dtype=np.float64), 0, 0)  # 8 KB payload
    segs = encode_segments(tok)
    assert len(segs) > 1  # large array borrowed as its own segment
    assert any(isinstance(s, memoryview) for s in segs)
    assert b"".join(bytes(s) for s in segs) == encode(tok)


def test_encode_segments_small_token_single_segment():
    tok = WireCharToken("a", 1)
    segs = encode_segments(tok)
    assert len(segs) == 1
    assert bytes(segs[0]) == encode(tok)


def test_gather_matches_encode():
    for tok in (WireCharToken("z", 5),
                MatrixToken(np.arange(2048, dtype=np.float32), 3, 4)):
        buf = gather(encode_segments(tok))
        assert isinstance(buf, bytearray)
        assert bytes(buf) == encode(tok)


def test_gather_single_segment_passthrough():
    # Documented contract: a lone bytearray tail is handed over as-is.
    segs = encode_segments(WireCharToken("a", 1))
    buf = gather(segs)
    assert buf is segs[0]


def test_encode_into_exact_fit():
    tok = MatrixToken(np.arange(512, dtype=np.int32), 0, 1)
    buf = bytearray(measure(tok))
    written = encode_into(tok, buf)
    assert written == len(buf)
    assert bytes(buf) == encode(tok)


def test_encode_into_undersized_buffer_raises():
    tok = MatrixToken(np.arange(512, dtype=np.int32), 0, 1)
    with pytest.raises(WireError):
        encode_into(tok, bytearray(measure(tok) - 1))


def test_decode_borrow_from_bytearray_is_writable_alias():
    wire = bytearray(encode(MatrixToken(np.arange(64, dtype=np.float64), 0, 0)))
    back = decode(wire, copy=False)
    assert back.block.array.flags.writeable
    before = bytes(wire)
    back.block.array[0] = -1.0  # borrowed storage: writes hit the buffer
    assert bytes(wire) != before


def test_decode_borrow_from_bytes_is_readonly():
    wire = encode(MatrixToken(np.arange(64, dtype=np.float64), 0, 0))
    back = decode(wire, copy=False)
    assert not back.block.array.flags.writeable
    assert np.array_equal(back.block.array, np.arange(64, dtype=np.float64))


def test_decode_copy_default_is_independent():
    wire = bytearray(encode(MatrixToken(np.arange(8, dtype=np.float64), 0, 0)))
    back = decode(wire)
    wire[-1] ^= 0xFF  # corrupt the buffer after a copying decode
    assert back.block.array[-1] == 7.0
