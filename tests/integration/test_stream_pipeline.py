"""The bursty streaming workload is bit-identical on every engine.

Runs ``repro.apps.stream_pipeline`` — seeded bursty source, parallel
transform, watermark-driven windowed aggregation, digest merge — on the
simulated, threaded and multiprocess engines and checks every digest
against the engine-free pure fold (``oracle_digest``).  The chaos case
kills a worker kernel mid-stream: recovery must replay the lost tokens
and the digest must *still* match, i.e. each window aggregates each
sequence exactly once across the kill (the merge corrupts a window's
entry on duplicate delivery, so any double-count breaks the digest).

The heavier, longer protocol (overload shedding, published throughput
and latency) lives in ``benchmarks/test_stream_soak.py``.
"""

import pytest

from repro.apps.stream_pipeline import (
    StreamJob,
    oracle_digest,
    run_stream_pipeline,
)
from repro.cluster import paper_cluster
from repro.runtime import FaultPolicy, SimEngine, create_engine

MAIN = "node01"
WORKERS = ["node02", "node03"]
AGG = "node04"

JOB = StreamJob(items=192, rate=6000.0, burst=12, gap=0.003, seed=11,
                window=24, work=0.0001)


@pytest.fixture(scope="module")
def oracle():
    return oracle_digest(JOB)


def test_oracle_is_a_pure_function(oracle):
    again = oracle_digest(JOB)
    assert again.digest == oracle.digest
    assert again.windows == oracle.windows == 8
    assert again.complete_windows == 8


def test_sim_engine_matches_oracle(oracle):
    stats = run_stream_pipeline(SimEngine(paper_cluster(4)), JOB,
                                MAIN, WORKERS, AGG, name="int-sim")
    assert stats.digest == oracle.digest
    assert stats.items == JOB.items
    assert stats.windows == oracle.windows


def test_threaded_engine_matches_oracle(oracle):
    with create_engine("threaded") as engine:
        stats = run_stream_pipeline(engine, JOB, MAIN, WORKERS, AGG,
                                    name="int-threaded")
    assert stats.digest == oracle.digest
    assert stats.complete_windows == oracle.complete_windows


def test_multiprocess_engine_matches_oracle(oracle):
    with create_engine("multiprocess") as engine:
        stats = run_stream_pipeline(engine, JOB, MAIN, WORKERS, AGG,
                                    name="int-mp", timeout=120.0)
    assert stats.digest == oracle.digest
    assert stats.recovered is False


def test_kernel_kill_mid_stream_is_exactly_once(oracle):
    faults = FaultPolicy(kill_kernel="node02", kill_after_messages=25)
    with create_engine("multiprocess", recover=True,
                       faults=faults) as engine:
        stats = run_stream_pipeline(engine, JOB, MAIN, WORKERS, AGG,
                                    name="int-chaos", timeout=120.0)
    assert stats.recovered is True
    assert stats.replayed_tokens > 0
    # replay did not double-aggregate any window member
    assert stats.digest == oracle.digest
    assert stats.windows == oracle.windows
