"""Observability parity: one event vocabulary across all three engines.

The tentpole guarantee of the unified tracing layer (DESIGN.md): the
same application traced on the simulated, threaded and multiprocess
engines produces the same *schedule-determined* event counts; only
timing (and timing-dependent kinds like stall/admit) may differ.  The
multiprocess engine additionally merges per-kernel buffers into one
timeline with distinct pids.
"""

import json

from repro import MetricsRegistry, Tracer, create_engine, export_chrome_trace
from repro.apps.ring import RingJobToken, build_ring_graph
from repro.apps.strings import StringToken, build_uppercase_graph
from repro.trace import DETERMINISTIC_KINDS, EVENT_KINDS

ENGINES = ["sim", "threaded", "multiprocess"]
FOUR_NODES = ["node01", "node02", "node03", "node04"]


def traced_strings_run(kind):
    tracer = Tracer()
    graph, *_ = build_uppercase_graph(
        FOUR_NODES[0], " ".join(FOUR_NODES[1:]), name=f"obs-{kind}")
    with create_engine(kind, nodes=4, tracer=tracer) as engine:
        engine.register_graph(graph)
        out = engine.run(graph, StringToken("observe me uniformly"))
    text = out.token.text if kind == "sim" else out.text
    assert text == "OBSERVE ME UNIFORMLY"
    return tracer


def test_event_kind_parity_across_engines():
    fingerprints = {}
    for kind in ENGINES:
        tracer = traced_strings_run(kind)
        kinds = tracer.kinds()
        assert set(kinds) <= EVENT_KINDS, f"unknown kinds on {kind}"
        # engine-dependent kinds must still be *present* where expected
        assert kinds.get("token_send", 0) > 0
        fingerprints[kind] = {
            k: v for k, v in kinds.items() if k in DETERMINISTIC_KINDS
        }
    assert fingerprints["sim"] == fingerprints["threaded"] \
        == fingerprints["multiprocess"]


def test_multiprocess_trace_merges_every_kernel():
    tracer = Tracer()
    metrics = MetricsRegistry()
    graph = build_ring_graph(FOUR_NODES)
    with create_engine("multiprocess",
                       tracer=tracer, metrics=metrics) as engine:
        engine.register_graph(graph)
        done = engine.run(graph, RingJobToken(1024, 8), timeout=60)
    assert done.blocks == 8
    # every kernel process shipped its buffer back to the console
    assert set(FOUR_NODES) <= tracer.pids()
    snap = metrics.snapshot()
    assert snap["counters"].get("tokens_posted", 0) > 0
    assert snap["counters"].get("wire_bytes", 0) > 0


def test_chrome_trace_schema(tmp_path):
    tracer = traced_strings_run("threaded")
    path = tmp_path / "trace.json"
    n = export_chrome_trace(tracer, str(path))
    doc = json.loads(path.read_text())
    events = doc["traceEvents"]
    assert len(events) == n > 0
    for record in events:
        for key in ("ph", "ts", "pid", "tid", "name"):
            assert key in record, f"missing {key!r} in {record}"
        assert record["ph"] in {"X", "i", "M"}
        assert record["ts"] >= 0
    # op_end events become complete ("X") slices with durations
    assert any(r["ph"] == "X" and r.get("dur", 0) >= 0 for r in events)
