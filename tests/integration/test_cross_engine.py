"""Cross-engine equivalence: the same application code must produce the
same *results* on the simulated cluster and on real OS threads.

This is the central guarantee of the two-engine design (DESIGN.md §2):
operations, graphs, routing and flow control are engine-agnostic; only
timing semantics differ.
"""

import numpy as np
import pytest

from repro.apps.strings import StringToken, build_uppercase_graph
from repro.cluster import paper_cluster
from repro.core import (
    ConstantRoute,
    DpsThread,
    FlowControlPolicy,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    MergeOperation,
    RoundRobinRoute,
    SplitOperation,
    StreamOperation,
    ThreadCollection,
    route_fn,
)
from repro.runtime import SimEngine
from repro.runtime.threaded_engine import ThreadedEngine
from repro.serial import Buffer, ComplexToken, SimpleToken


class XJob(SimpleToken):
    def __init__(self, n=0):
        self.n = n


class XChunk(ComplexToken):
    def __init__(self, idx=0, data=None):
        self.idx = idx
        self.data = Buffer(data if data is not None else [])


class XResult(ComplexToken):
    def __init__(self, total=None):
        self.total = Buffer(total if total is not None else [])


class XMain(DpsThread):
    pass


class XWork(DpsThread):
    pass


class XSplit(SplitOperation):
    """Fan a job out into numpy chunks."""

    thread_type = XMain
    in_types = (XJob,)
    out_types = (XChunk,)

    def execute(self, tok):
        rng = np.random.default_rng(tok.n)
        for i in range(tok.n):
            self.post(XChunk(i, rng.standard_normal(32)))


class XSquare(LeafOperation):
    thread_type = XWork
    in_types = (XChunk,)
    out_types = (XChunk,)

    def execute(self, tok):
        self.post(XChunk(tok.idx, tok.data.array ** 2))


class XStream(StreamOperation):
    """Running prefix sums — order-sensitive per token, not per group."""

    thread_type = XWork
    in_types = (XChunk,)
    out_types = (XChunk,)

    def execute(self, tok):
        while tok is not None:
            yield self.post(XChunk(tok.idx, np.cumsum(tok.data.array)))
            tok = yield self.next_token()


class XMerge(MergeOperation):
    thread_type = XMain
    in_types = (XChunk,)
    out_types = (XResult,)

    def execute(self, tok):
        total = np.zeros(32)
        while tok is not None:
            total += tok.data.array
            tok = yield self.next_token()
        yield self.post(XResult(total))


def numeric_graph(suffix):
    main = ThreadCollection(XMain, f"xmain{suffix}").map("node01")
    workers = ThreadCollection(XWork, f"xwork{suffix}").map("node02 node03")
    mids = ThreadCollection(XWork, f"xmid{suffix}").map("node02")
    return Flowgraph(
        FlowgraphNode(XSplit, main)
        >> FlowgraphNode(XSquare, workers, RoundRobinRoute)
        >> FlowgraphNode(XStream, mids, ConstantRoute)
        >> FlowgraphNode(XMerge, main),
        f"xpipeline{suffix}",
    )


def expected_result(n):
    rng = np.random.default_rng(n)
    total = np.zeros(32)
    for _ in range(n):
        total += np.cumsum(rng.standard_normal(32) ** 2)
    return total


@pytest.mark.parametrize("n", [1, 5, 17])
def test_numeric_pipeline_identical_across_engines(n):
    sim_engine = SimEngine(paper_cluster(3))
    sim_out = sim_engine.run(numeric_graph("s"), XJob(n)).token.total.array

    with ThreadedEngine() as teng:
        thr_out = teng.run(numeric_graph("t"), XJob(n)).total.array

    reference = expected_result(n)
    assert np.allclose(sim_out, reference)
    assert np.allclose(thr_out, reference)
    assert np.allclose(sim_out, thr_out)


def test_uppercase_identical_across_engines():
    text = "engines must agree on results"
    g1, *_ = build_uppercase_graph("node01", "node02 node03", name="up-sim")
    sim_out = SimEngine(paper_cluster(3)).run(g1, StringToken(text)).token.text

    g2, *_ = build_uppercase_graph("hostA", "hostB hostC", name="up-thr")
    with ThreadedEngine() as teng:
        thr_out = teng.run(g2, StringToken(text)).text
    assert sim_out == thr_out == text.upper()


def test_flow_control_semantics_match():
    """Window=1 must complete on both engines (lock-step, no deadlock)."""
    g1 = numeric_graph("fc-s")
    sim_engine = SimEngine(paper_cluster(3),
                           policy=FlowControlPolicy(window=1))
    sim_out = sim_engine.run(g1, XJob(6)).token.total.array

    g2 = numeric_graph("fc-t")
    with ThreadedEngine(policy=FlowControlPolicy(window=1)) as teng:
        thr_out = teng.run(g2, XJob(6)).total.array
    assert np.allclose(sim_out, thr_out)


def test_error_semantics_match():
    class XBoom(LeafOperation):
        thread_type = XWork
        in_types = (XChunk,)
        out_types = (XChunk,)

        def execute(self, tok):
            raise ValueError("engine-agnostic crash")

    def graph(suffix):
        main = ThreadCollection(XMain, f"bmain{suffix}").map("node01")
        work = ThreadCollection(XWork, f"bwork{suffix}").map("node02")
        return Flowgraph(
            FlowgraphNode(XSplit, main)
            >> FlowgraphNode(XBoom, work, ConstantRoute)
            >> FlowgraphNode(XMerge, main),
            f"boom{suffix}",
        )

    with pytest.raises(ValueError, match="engine-agnostic crash"):
        SimEngine(paper_cluster(2)).run(graph("s"), XJob(2))
    with ThreadedEngine() as teng:
        with pytest.raises(ValueError, match="engine-agnostic crash"):
            teng.run(graph("t"), XJob(2), timeout=10)
