"""Cross-engine equivalence: the same application code must produce the
same *results* on the simulated cluster and on real OS threads.

This is the central guarantee of the two-engine design (DESIGN.md §2):
operations, graphs, routing and flow control are engine-agnostic; only
timing semantics differ.
"""

import numpy as np
import pytest

from repro.apps.strings import StringToken, build_uppercase_graph
from repro.core import (
    ConstantRoute,
    DpsThread,
    FlowControlPolicy,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    MergeOperation,
    RoundRobinRoute,
    SplitOperation,
    StreamOperation,
    ThreadCollection,
    route_fn,
)
from repro.runtime import create_engine
from repro.serial import Buffer, ComplexToken, SimpleToken


class XJob(SimpleToken):
    def __init__(self, n=0):
        self.n = n


class XChunk(ComplexToken):
    def __init__(self, idx=0, data=None):
        self.idx = idx
        self.data = Buffer(data if data is not None else [])


class XResult(ComplexToken):
    def __init__(self, total=None):
        self.total = Buffer(total if total is not None else [])


class XMain(DpsThread):
    pass


class XWork(DpsThread):
    pass


class XSplit(SplitOperation):
    """Fan a job out into numpy chunks."""

    thread_type = XMain
    in_types = (XJob,)
    out_types = (XChunk,)

    def execute(self, tok):
        rng = np.random.default_rng(tok.n)
        for i in range(tok.n):
            self.post(XChunk(i, rng.standard_normal(32)))


class XSquare(LeafOperation):
    thread_type = XWork
    in_types = (XChunk,)
    out_types = (XChunk,)

    def execute(self, tok):
        self.post(XChunk(tok.idx, tok.data.array ** 2))


class XStream(StreamOperation):
    """Running prefix sums — order-sensitive per token, not per group."""

    thread_type = XWork
    in_types = (XChunk,)
    out_types = (XChunk,)

    def execute(self, tok):
        while tok is not None:
            yield self.post(XChunk(tok.idx, np.cumsum(tok.data.array)))
            tok = yield self.next_token()


class XMerge(MergeOperation):
    thread_type = XMain
    in_types = (XChunk,)
    out_types = (XResult,)

    def execute(self, tok):
        total = np.zeros(32)
        while tok is not None:
            total += tok.data.array
            tok = yield self.next_token()
        yield self.post(XResult(total))


def numeric_graph(suffix):
    main = ThreadCollection(XMain, f"xmain{suffix}").map("node01")
    workers = ThreadCollection(XWork, f"xwork{suffix}").map("node02 node03")
    mids = ThreadCollection(XWork, f"xmid{suffix}").map("node02")
    return Flowgraph(
        FlowgraphNode(XSplit, main)
        >> FlowgraphNode(XSquare, workers, RoundRobinRoute)
        >> FlowgraphNode(XStream, mids, ConstantRoute)
        >> FlowgraphNode(XMerge, main),
        f"xpipeline{suffix}",
    )


def expected_result(n):
    rng = np.random.default_rng(n)
    total = np.zeros(32)
    for _ in range(n):
        total += np.cumsum(rng.standard_normal(32) ** 2)
    return total


@pytest.mark.parametrize("n", [1, 5, 17])
def test_numeric_pipeline_identical_across_engines(n):
    sim_engine = create_engine("sim", nodes=3)
    sim_out = sim_engine.run(numeric_graph("s"), XJob(n)).token.total.array

    with create_engine("threaded") as teng:
        thr_out = teng.run(numeric_graph("t"), XJob(n)).total.array

    reference = expected_result(n)
    assert np.allclose(sim_out, reference)
    assert np.allclose(thr_out, reference)
    assert np.allclose(sim_out, thr_out)


def test_uppercase_identical_across_engines():
    text = "engines must agree on results"
    g1, *_ = build_uppercase_graph("node01", "node02 node03", name="up-sim")
    sim_out = create_engine("sim", nodes=3).run(g1, StringToken(text)).token.text

    g2, *_ = build_uppercase_graph("hostA", "hostB hostC", name="up-thr")
    with create_engine("threaded") as teng:
        thr_out = teng.run(g2, StringToken(text)).text
    assert sim_out == thr_out == text.upper()


def test_flow_control_semantics_match():
    """Window=1 must complete on both engines (lock-step, no deadlock)."""
    g1 = numeric_graph("fc-s")
    sim_engine = create_engine("sim", nodes=3,
                               policy=FlowControlPolicy(window=1))
    sim_out = sim_engine.run(g1, XJob(6)).token.total.array

    g2 = numeric_graph("fc-t")
    with create_engine("threaded", policy=FlowControlPolicy(window=1)) as teng:
        thr_out = teng.run(g2, XJob(6)).total.array
    assert np.allclose(sim_out, thr_out)


def test_error_semantics_match():
    class XBoom(LeafOperation):
        thread_type = XWork
        in_types = (XChunk,)
        out_types = (XChunk,)

        def execute(self, tok):
            raise ValueError("engine-agnostic crash")

    def graph(suffix):
        main = ThreadCollection(XMain, f"bmain{suffix}").map("node01")
        work = ThreadCollection(XWork, f"bwork{suffix}").map("node02")
        return Flowgraph(
            FlowgraphNode(XSplit, main)
            >> FlowgraphNode(XBoom, work, ConstantRoute)
            >> FlowgraphNode(XMerge, main),
            f"boom{suffix}",
        )

    with pytest.raises(ValueError, match="engine-agnostic crash"):
        create_engine("sim", nodes=2).run(graph("s"), XJob(2))
    with create_engine("threaded") as teng:
        with pytest.raises(ValueError, match="engine-agnostic crash"):
            teng.run(graph("t"), XJob(2), timeout=10)


# ---------------------------------------------------------------------------
# three-engine equivalence: add the multiprocess engine (real OS processes
# over TCP) to the contract — same graphs, same results, >= 4 kernels
# ---------------------------------------------------------------------------

from repro.apps.gameoflife import DistributedGameOfLife, life_step
from repro.apps.lu import DistributedLU
from repro.apps.ring import RingJobToken, build_ring_graph

FOUR_NODES = ["node01", "node02", "node03", "node04"]


@pytest.mark.parametrize("n", [1, 5, 17])
def test_numeric_pipeline_identical_on_multiprocess(n):
    with create_engine("multiprocess") as engine:
        g = numeric_graph(f"mp{n}")
        engine.register_graph(g)
        mp_out = engine.run(g, XJob(n), timeout=60).total.array
    assert np.allclose(mp_out, expected_result(n))


def test_uppercase_identical_across_three_engines():
    text = "engines must agree on results"
    g1, *_ = build_uppercase_graph("node01", "node02 node03 node04",
                                   name="up3-sim")
    sim_out = create_engine("sim", nodes=4).run(g1, StringToken(text)).token.text

    g2, *_ = build_uppercase_graph("hostA", "hostB hostC hostD",
                                   name="up3-thr")
    with create_engine("threaded") as teng:
        thr_out = teng.run(g2, StringToken(text)).text

    g3, *_ = build_uppercase_graph(FOUR_NODES[0], " ".join(FOUR_NODES[1:]),
                                   name="up3-mp")
    with create_engine("multiprocess") as meng:
        meng.register_graph(g3)
        assert len(meng.kernel_names) >= 4
        mp_out = meng.run(g3, StringToken(text), timeout=60).text
    assert sim_out == thr_out == mp_out == text.upper()


def test_ring_identical_across_engines():
    with create_engine("threaded") as teng:
        thr_done = teng.run(build_ring_graph(FOUR_NODES),
                            RingJobToken(2048, 10))
    with create_engine("multiprocess") as meng:
        g = build_ring_graph(FOUR_NODES)
        meng.register_graph(g)
        mp_done = meng.run(g, RingJobToken(2048, 10), timeout=60)
    assert (thr_done.blocks, thr_done.received_bytes) == \
        (mp_done.blocks, mp_done.received_bytes) == (10, 20480)


def test_gameoflife_identical_across_engines():
    rng = np.random.default_rng(11)
    world = (rng.random((16, 12)) < 0.35).astype(np.uint8)
    steps = 2

    reference = world
    for _ in range(steps):
        reference = life_step(reference)

    def run_on(engine):
        gol = DistributedGameOfLife(engine, world, FOUR_NODES)
        gol.load()
        gol.step(improved=True)
        gol.step(improved=False)
        return gol.gather()

    sim_out = run_on(create_engine("sim", nodes=4))
    with create_engine("threaded") as teng:
        thr_out = run_on(teng)
    with create_engine("multiprocess") as meng:
        mp_out = run_on(meng)

    assert np.array_equal(sim_out, reference)
    assert np.array_equal(thr_out, reference)
    assert np.array_equal(mp_out, reference)


def test_lu_identical_across_engines():
    rng = np.random.default_rng(5)
    a = rng.standard_normal((16, 16))

    def run_on(engine):
        lu = DistributedLU(engine, a, s=4, worker_nodes=FOUR_NODES)
        lu.load()
        lu.run()
        fact, pivots = lu.gather()
        assert lu.check()
        return fact, pivots

    sim_fact, sim_piv = run_on(create_engine("sim", nodes=4))
    with create_engine("threaded") as teng:
        thr_fact, thr_piv = run_on(teng)
    with create_engine("multiprocess") as meng:
        mp_fact, mp_piv = run_on(meng)

    assert np.allclose(sim_fact, thr_fact)
    assert np.allclose(sim_fact, mp_fact)
    for s_p, t_p, m_p in zip(sim_piv, thr_piv, mp_piv):
        assert np.array_equal(s_p, t_p)
        assert np.array_equal(s_p, m_p)


def test_flow_control_semantics_match_multiprocess():
    """Window=1 lock-step must complete across process boundaries too."""
    with create_engine("multiprocess", policy=FlowControlPolicy(window=1)) as meng:
        g = numeric_graph("fc-m")
        meng.register_graph(g)
        mp_out = meng.run(g, XJob(6), timeout=60).total.array
    assert np.allclose(mp_out, expected_result(6))


def test_error_semantics_match_multiprocess():
    class MBoom(LeafOperation):
        thread_type = XWork
        in_types = (XChunk,)
        out_types = (XChunk,)

        def execute(self, tok):
            raise ValueError("engine-agnostic crash")

    main = ThreadCollection(XMain, "mbmain").map("node01")
    work = ThreadCollection(XWork, "mbwork").map("node02")
    g = Flowgraph(
        FlowgraphNode(XSplit, main)
        >> FlowgraphNode(MBoom, work, ConstantRoute)
        >> FlowgraphNode(XMerge, main),
        "boom-mp",
    )
    with create_engine("multiprocess") as meng:
        meng.register_graph(g)
        with pytest.raises(ValueError, match="engine-agnostic crash"):
            meng.run(g, XJob(2), timeout=30)


# ---------------------------------------------------------------------------
# the resident service path joins the contract: a graph called through a
# ServiceClient session must return bit-identical tokens to the same
# graph driven directly on the sim and threaded engines
# ---------------------------------------------------------------------------

from repro.apps.gol_service import GameOfLifeService, GolReadRequest
from repro.service import ServiceClient, ServiceEngine

GOL_NODES = ["node01", "node02"]
READS = [(0, 0, 16, 12), (3, 2, 7, 5), (10, 0, 6, 12)]


def test_gol_read_identical_across_engines_and_service_path():
    rng = np.random.default_rng(23)
    world = (rng.random((16, 12)) < 0.35).astype(np.uint8)
    steps = 2

    reference = world
    for _ in range(steps):
        reference = life_step(reference)

    def evolve(engine):
        gol = GameOfLifeService(engine, world, GOL_NODES)
        gol.load()
        for _ in range(steps):
            gol.step(improved=True)
        return gol

    sim_gol = evolve(create_engine("sim", nodes=2))
    sim_reads = [sim_gol.read_block(*r) for r in READS]

    with create_engine("threaded") as teng:
        thr_gol = evolve(teng)
        thr_reads = [thr_gol.read_block(*r) for r in READS]

    with ServiceEngine() as seng:
        svc_gol = GameOfLifeService(seng, world, GOL_NODES)
        seng.expose(svc_gol.read_graph, "gol.read")
        address = seng.serve()
        svc_gol.load()
        for _ in range(steps):
            svc_gol.step(improved=True)
        with ServiceClient(address) as client:
            svc_reads = [
                client.call("gol.read", GolReadRequest(*r),
                            timeout=60).data.array
                for r in READS
            ]

    for (row, col, h, w), sim_b, thr_b, svc_b in zip(
            READS, sim_reads, thr_reads, svc_reads):
        expected = reference[row:row + h, col:col + w]
        assert np.array_equal(sim_b, expected)
        assert np.array_equal(thr_b, expected)
        assert np.array_equal(svc_b, expected)
