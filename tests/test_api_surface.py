"""Public-API surface check: ``repro.__all__`` is the documented API.

Every exported name must import cleanly, the list must stay sorted and
duplicate-free, and the names the README/DESIGN docs rely on must be
present — so an accidental removal fails CI before it breaks a user.
"""

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, \
            f"repro.__all__ exports {name!r} but repro.{name} is missing"


def test_all_is_sorted_and_unique():
    assert list(repro.__all__) == sorted(set(repro.__all__))


def test_documented_api_present():
    documented = {
        # engines + factory (README "Engines", "Observability")
        "Engine", "SimEngine", "ThreadedEngine", "MultiprocessEngine",
        "create_engine",
        # observability layer
        "Tracer", "MetricsRegistry", "export_chrome_trace",
        # graph construction core (README quickstart)
        "Flowgraph", "FlowgraphBuilder", "FlowgraphNode", "ThreadCollection",
        "DpsThread", "SplitOperation", "LeafOperation", "MergeOperation",
        "StreamOperation", "FlowControlPolicy",
        # cluster + tokens
        "paper_cluster", "Token", "Buffer", "Application",
        # fault tolerance (README "Fault tolerance")
        "FaultPolicy", "KernelFailure",
    }
    missing = documented - set(repro.__all__)
    assert not missing, f"documented names absent from __all__: {missing}"


def test_exact_public_surface():
    """The package's public surface, name for name.

    Additions are deliberate API decisions: extend this list *and* the
    docs in the same change.  Removals must go through a deprecation
    shim first (see ``repro.runtime.checkpoint.fail_node``).
    """
    assert list(repro.__all__) == [
        "AdmissionPolicy", "Application", "ArrivalProcess", "Buffer",
        "Cluster", "ClusterSpec", "ComplexToken", "ConstantRoute",
        "DpsThread", "Engine", "FaultPolicy", "FlowControlPolicy",
        "Flowgraph", "FlowgraphBuilder", "FlowgraphNode", "GraphError",
        "KernelFailure", "LeafOperation", "LoadBalancedRoute",
        "MergeOperation", "MetricsRegistry", "MultiprocessEngine",
        "NetworkSpec", "NodeSpec", "Operation", "QueueDepthRoute",
        "RoundRobinRoute", "Route", "RoutingPolicy", "RunResult",
        "ScalingPolicy", "ScheduleError", "ServiceClient", "ServiceEngine",
        "SimEngine", "SimpleToken", "SplitOperation", "StreamOperation",
        "StreamPolicy", "StreamSource", "ThreadCollection",
        "ThreadedEngine", "Token", "Tracer", "TransportPolicy", "Vector",
        "Watermark", "WindowSpec", "WindowedStream", "create_engine",
        "export_chrome_trace", "paper_cluster", "route_fn",
    ]


def test_stream_api_semantics():
    """The streaming API redesign: StreamPolicy resolution, the
    emit()/end_of_stream() contract, and create_engine(stream=)."""
    import dataclasses

    import pytest

    from repro import StreamOperation, StreamPolicy, create_engine

    # StreamPolicy is a frozen dataclass that validates eagerly.
    assert dataclasses.is_dataclass(StreamPolicy)
    with pytest.raises(dataclasses.FrozenInstanceError):
        StreamPolicy().shedding = "shed"
    with pytest.raises(ValueError, match="shedding"):
        StreamPolicy(shedding="drop-newest")
    with pytest.raises(ValueError, match="credit window"):
        StreamPolicy(credit_window=0)

    # Per-edge credits override the streaming default; non-streaming
    # openers keep the engine-wide flow-control window and never shed.
    policy = StreamPolicy(credit_window=4, shedding="shed",
                          edge_credits={"ingest": 2, "bulk": None})
    assert policy.window_for("ingest", streaming=True, default=16) == 2
    assert policy.window_for("bulk", streaming=True, default=16) is None
    assert policy.window_for("other", streaming=True, default=16) == 4
    assert policy.window_for("other", streaming=False, default=16) == 16
    assert policy.shedding_for(streaming=True) == "shed"
    assert policy.shedding_for(streaming=False) == "block"

    # The callback contract is part of the base class surface.
    for attr in ("emit", "end_of_stream", "on_token", "on_close"):
        assert hasattr(StreamOperation, attr)

    # Every engine kind accepts stream=; unknown options still fail.
    engine = create_engine("threaded", stream=policy)
    try:
        assert engine.stream is policy
    finally:
        engine.shutdown()
    with pytest.raises(ValueError, match="streem"):
        create_engine("sim", streem=policy)


def test_failure_and_faultpolicy_semantics():
    """The redesigned failure API: one exception type, engine-level
    fail_node, RunResult recovery fields."""
    import pytest

    from repro import (Engine, FaultPolicy, KernelFailure, RunResult,
                       ScheduleError, ThreadedEngine)

    # KernelFailure is catchable both as a schedule error (new code) and
    # as a ConnectionError (pre-redesign call sites).
    assert issubclass(KernelFailure, ScheduleError)
    assert issubclass(KernelFailure, ConnectionError)

    # Engines expose fail_node; engines without kill support say so.
    assert hasattr(Engine, "fail_node")
    with pytest.raises(NotImplementedError, match="fail_node"):
        ThreadedEngine().fail_node("node01")

    # RunResult carries the recovery outcome.
    r = RunResult(None, 0.0, 1.0)
    assert r.recovered is False and r.replayed_tokens == 0
    r = RunResult(None, 0.0, 1.0, recovered=True, replayed_tokens=7)
    assert r.recovered is True and r.replayed_tokens == 7

    # FaultPolicy is frozen and validates its spec.
    with pytest.raises(ValueError, match="kill_after"):
        FaultPolicy(kill_kernel="node01")
    assert FaultPolicy().enabled is False


def test_membership_verbs_and_policy_api():
    """The elastic-membership API: membership verbs on the Engine base,
    RunResult rebalance fields, and the frozen routing/scaling policies."""
    import dataclasses

    import pytest

    from repro import (Engine, RoutingPolicy, RunResult, ScalingPolicy,
                       ThreadedEngine)

    # Membership verbs exist on the base; engines without elastic
    # membership say which engines have it.
    for verb in ("add_kernel", "retire_kernel", "members"):
        assert hasattr(Engine, verb)
    with pytest.raises(NotImplementedError, match="add_kernel"):
        ThreadedEngine().add_kernel()
    with pytest.raises(NotImplementedError, match="retire_kernel"):
        ThreadedEngine().retire_kernel("node01")

    # RunResult carries the rebalance outcome.
    r = RunResult(None, 0.0, 1.0)
    assert r.rebalances == 0 and r.tokens_moved == 0
    r = RunResult(None, 0.0, 1.0, rebalances=2, tokens_moved=3)
    assert r.rebalances == 2 and r.tokens_moved == 3

    # Both policies are frozen dataclasses that validate eagerly.
    assert dataclasses.is_dataclass(RoutingPolicy)
    assert dataclasses.is_dataclass(ScalingPolicy)
    with pytest.raises(dataclasses.FrozenInstanceError):
        RoutingPolicy().kind = "queue_depth"
    with pytest.raises(ValueError, match="kind"):
        RoutingPolicy(kind="fastest")
    with pytest.raises(ValueError, match="max_kernels"):
        ScalingPolicy(min_kernels=4, max_kernels=2)
    assert RoutingPolicy(kind="queue_depth").adaptive is True
    assert RoutingPolicy().adaptive is False


def test_star_import_matches_all():
    ns = {}
    exec("from repro import *", ns)  # noqa: S102 - the point of the test
    exported = {n for n in ns if not n.startswith("_")}
    assert set(repro.__all__) <= exported
