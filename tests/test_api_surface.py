"""Public-API surface check: ``repro.__all__`` is the documented API.

Every exported name must import cleanly, the list must stay sorted and
duplicate-free, and the names the README/DESIGN docs rely on must be
present — so an accidental removal fails CI before it breaks a user.
"""

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, \
            f"repro.__all__ exports {name!r} but repro.{name} is missing"


def test_all_is_sorted_and_unique():
    assert list(repro.__all__) == sorted(set(repro.__all__))


def test_documented_api_present():
    documented = {
        # engines + factory (README "Engines", "Observability")
        "Engine", "SimEngine", "ThreadedEngine", "MultiprocessEngine",
        "create_engine",
        # observability layer
        "Tracer", "MetricsRegistry", "export_chrome_trace",
        # graph construction core (README quickstart)
        "Flowgraph", "FlowgraphBuilder", "FlowgraphNode", "ThreadCollection",
        "DpsThread", "SplitOperation", "LeafOperation", "MergeOperation",
        "StreamOperation", "FlowControlPolicy",
        # cluster + tokens
        "paper_cluster", "Token", "Buffer", "Application",
    }
    missing = documented - set(repro.__all__)
    assert not missing, f"documented names absent from __all__: {missing}"


def test_star_import_matches_all():
    ns = {}
    exec("from repro import *", ns)  # noqa: S102 - the point of the test
    exported = {n for n in ns if not n.startswith("_")}
    assert set(repro.__all__) <= exported
