"""Shutdown reaps every forked process — even on interrupted startup.

Regression suite for the orphaned name-server bug: a failure (or ^C)
after the name-server process forked but before the console was up used
to leak a ``dps-nameserver`` process holding its port.  Every path out
of ``_ensure_started`` must now reap the whole brood, and a GC'd engine
that was never shut down has a ``weakref.finalize`` backstop.
"""

import multiprocessing
import time

import pytest

from repro.apps.strings import StringToken, build_uppercase_graph
from repro.runtime import MultiprocessEngine, create_engine
from repro.runtime.multiprocess_engine import _reap_processes


def _graph(name):
    graph, *_ = build_uppercase_graph("node01", "node01", name=name)
    return graph


def _assert_all_dead(procs):
    for proc in procs:
        proc.join(timeout=10)
        assert not proc.is_alive(), f"{proc.name} leaked"


class _KernelForkRefused:
    """mp-context wrapper whose kernel Process() calls explode — the
    name server has already forked by then."""

    def __init__(self, real):
        self._real = real
        self.created = []

    def Process(self, *args, **kwargs):
        if kwargs.get("name", "").startswith("dps-kernel"):
            raise RuntimeError("fork refused (injected)")
        proc = self._real.Process(*args, **kwargs)
        self.created.append(proc)
        return proc

    def __getattr__(self, name):
        return getattr(self._real, name)


def test_failed_kernel_fork_reaps_name_server():
    engine = MultiprocessEngine()
    engine.register_graph(_graph("reap.fork"))
    wrapper = _KernelForkRefused(engine._mp)
    engine._mp = wrapper
    with pytest.raises(RuntimeError, match="fork refused"):
        engine.run(engine._graphs["reap.fork"], StringToken("x"))
    assert engine._ns_proc is None
    assert wrapper.created, "the name server never forked: test is vacuous"
    _assert_all_dead(wrapper.created)
    assert not engine._orphans


class _InterruptBeforeConsole(MultiprocessEngine):
    """^C arriving after every kernel process forked, before the console
    kernel exists — the worst spot for the old leak."""

    def _make_console(self, ns_address, peers):
        self.forked = list(self._orphans)
        raise KeyboardInterrupt


def test_interrupt_during_startup_reaps_all_processes():
    engine = _InterruptBeforeConsole()
    engine.register_graph(_graph("reap.sigint"))
    with pytest.raises(KeyboardInterrupt):
        engine.run(engine._graphs["reap.sigint"], StringToken("x"))
    # name server + one kernel had forked by the time the "signal" hit
    assert len(engine.forked) == 2
    _assert_all_dead(engine.forked)
    assert engine._ns_proc is None
    assert not engine._orphans


def test_shutdown_is_idempotent_and_clears_orphans():
    engine = MultiprocessEngine()
    engine.register_graph(_graph("reap.twice"))
    result = engine.run(engine._graphs["reap.twice"], StringToken("ab"))
    assert result.text == "AB"
    procs = list(engine._orphans)
    assert procs
    engine.shutdown()
    engine.shutdown()  # second call is a no-op, not an error
    _assert_all_dead(procs)
    assert not engine._orphans


def _sleep_forever():
    time.sleep(3600)


def test_reap_processes_terminates_and_swallows_errors():
    proc = multiprocessing.get_context("fork").Process(
        target=_sleep_forever, daemon=True)
    proc.start()

    class Unreapable:
        def is_alive(self):
            return True

        def terminate(self):
            raise OSError("already gone")

    # the broken handle must not prevent the real process being reaped
    _reap_processes([Unreapable(), proc])
    _assert_all_dead([proc])
    _reap_processes([proc])  # reaping the dead again is fine


def test_ns_port_is_a_multiprocess_option():
    engine = create_engine("multiprocess", ns_port=0)
    assert isinstance(engine, MultiprocessEngine)
    assert engine.ns_address is None  # not started yet
    engine.shutdown()
    with pytest.raises(ValueError, match="'ns_port' is a multiprocess"):
        create_engine("sim", ns_port=7780)


def test_ns_address_resolves_on_start():
    engine = MultiprocessEngine()
    engine.register_graph(_graph("reap.addr"))
    try:
        assert engine.run(engine._graphs["reap.addr"],
                          StringToken("hi")).text == "HI"
        host, port = engine.ns_address
        assert host == "127.0.0.1" and port > 0
    finally:
        engine.shutdown()
