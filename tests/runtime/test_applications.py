"""Tests for the Application bundle and engine registration surface."""

import pytest

from repro.apps.strings import StringToken, build_uppercase_graph
from repro.cluster import paper_cluster
from repro.runtime import Application, ScheduleError, SimEngine
from repro.simkernel import SimulationError


def test_application_exposes_graphs():
    app = Application("life-server")
    g1, *_ = build_uppercase_graph("node01", "node02", name="app-g1")
    g2, *_ = build_uppercase_graph("node01", "node02", name="app-g2")
    app.expose(g1)
    app.expose(g2, name="alias")
    assert sorted(app.graphs) == ["alias", "app-g1"]
    assert app.graphs["alias"] is g2
    assert "life-server" in repr(app)


def test_application_name_required():
    with pytest.raises(ValueError):
        Application("")


def test_application_duplicate_exposure_rejected():
    app = Application("a")
    g1, *_ = build_uppercase_graph("node01", "node02", name="dup-g")
    g2, *_ = build_uppercase_graph("node01", "node02", name="dup-g")
    app.expose(g1)
    app.expose(g1)  # same object: fine
    with pytest.raises(ValueError, match="already exposes"):
        app.expose(g2)


def test_register_app_runs_graphs_by_name():
    engine = SimEngine(paper_cluster(2))
    app = Application("svc")
    g, *_ = build_uppercase_graph("node01", "node02", name="svc.upper")
    app.expose(g)
    engine.register_app(app)
    result = engine.run("svc.upper", StringToken("via app"))
    assert result.token.text == "VIA APP"


def test_engine_rejects_conflicting_graph_names():
    engine = SimEngine(paper_cluster(2))
    g1, *_ = build_uppercase_graph("node01", "node02", name="clash")
    g2, *_ = build_uppercase_graph("node01", "node02", name="clash")
    engine.register_graph(g1)
    engine.register_graph(g1)  # idempotent for the same object
    with pytest.raises(ValueError, match="already registered"):
        engine.register_graph(g2)


def test_run_until_time_limit():
    engine = SimEngine(paper_cluster(2))
    never = engine.sim.event()

    def ticker(sim):
        while True:
            yield sim.timeout(1.0)

    engine.spawn(ticker(engine.sim))
    with pytest.raises(ScheduleError, match="time limit"):
        engine.run_until(never, limit=5.0)


def test_run_until_propagates_event_failure():
    engine = SimEngine(paper_cluster(1))
    ev = engine.sim.event()

    def failer(sim):
        yield sim.timeout(1.0)
        ev.fail(RuntimeError("boom"))

    engine.spawn(failer(engine.sim))
    with pytest.raises(RuntimeError, match="boom"):
        engine.run_until(ev)


def test_metrics_shape():
    engine = SimEngine(paper_cluster(2))
    graph, *_ = build_uppercase_graph("node01", "node02")
    engine.run(graph, StringToken("abc"))
    m = engine.stats()
    assert set(m) >= {"time", "network_bytes", "network_messages",
                      "local_messages", "nodes", "window_stalls",
                      "tokens_posted"}
    assert set(m["nodes"]) == {"node01", "node02"}
    for stats in m["nodes"].values():
        assert stats["compute_time"] >= 0
        assert 0 <= stats["cpu_utilization"] <= 1
