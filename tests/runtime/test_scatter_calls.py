"""Tests for inter-application split/merge — scatter calls (paper §6).

The paper's stated future work: "Inter-application split and merge
operations are the key to interoperable parallel program components.
They allow a server application having knowledge about the distribution
of data, to serve a request to access in parallel many data items by
performing a split operation.  The client application may then directly
process the data items in parallel and combine them into a useful
result by performing a merge operation."
"""

import pytest

from repro.cluster import paper_cluster
from repro.core import (
    ConstantRoute,
    DpsThread,
    Flowgraph,
    FlowgraphNode,
    GraphError,
    LeafOperation,
    MergeOperation,
    RoundRobinRoute,
    SplitOperation,
    ThreadCollection,
    route_fn,
)
from repro.runtime import ScheduleError, SimEngine
from repro.serial import SimpleToken


class SQuery(SimpleToken):
    def __init__(self, n=0):
        self.n = n


class SItem(SimpleToken):
    def __init__(self, value=0, shard=0):
        self.value = value
        self.shard = shard


class SAnswer(SimpleToken):
    def __init__(self, total=0, items=0):
        self.total = total
        self.items = items


class ServerThread(DpsThread):
    """Holds a shard of the server's distributed data."""

    def __init__(self):
        self.shard_data = None


class ClientThread(DpsThread):
    pass


# --- the server application: knows the data distribution -----------------

class ServerScatter(SplitOperation):
    """The server-side split: one request token per shard."""

    thread_type = ServerThread
    in_types = (SQuery,)
    out_types = (SItem,)

    n_shards = 3

    def execute(self, tok: SQuery):
        for shard in range(self.n_shards):
            self.post(SItem(shard, shard))


class ServerRead(LeafOperation):
    """Each shard owner attaches its data item."""

    thread_type = ServerThread
    in_types = (SItem,)
    out_types = (SItem,)

    def execute(self, tok: SItem):
        self.post(SItem(100 + tok.shard, tok.shard))


_ByShard = route_fn("SByShard", lambda tok, n: tok.shard % n)


def server_scatter_graph(server_threads, name, with_leaf=True):
    split = FlowgraphNode(ServerScatter, server_threads, ConstantRoute)
    if with_leaf:
        builder = split >> FlowgraphNode(ServerRead, server_threads, _ByShard)
    else:
        builder = split.as_builder()
    return Flowgraph(builder, name, scatter=True)


# --- the client application: processes and merges itself ------------------

class ClientScatterCall(SplitOperation):
    """The client split whose tokens come from the remote scatter."""

    thread_type = ClientThread
    in_types = (SQuery,)
    out_types = (SItem,)

    service = "server.scatter"

    def execute(self, tok: SQuery):
        count = yield self.call_scatter(self.service, tok)
        assert count >= 1


class ClientProcess(LeafOperation):
    thread_type = ClientThread
    in_types = (SItem,)
    out_types = (SItem,)

    def execute(self, tok: SItem):
        self.post(SItem(tok.value * 10, tok.shard))


class ClientMerge(MergeOperation):
    thread_type = ClientThread
    in_types = (SItem,)
    out_types = (SAnswer,)

    def execute(self, tok: SItem):
        total = items = 0
        while tok is not None:
            total += tok.value
            items += 1
            tok = yield self.next_token()
        yield self.post(SAnswer(total, items))


def build_world(with_leaf=True, service_name="server.scatter"):
    engine = SimEngine(paper_cluster(5))
    servers = ThreadCollection(ServerThread, f"srv-{service_name}").map(
        "node01 node02 node03"
    )
    scatter_graph = server_scatter_graph(servers, service_name, with_leaf)
    engine.register_graph(scatter_graph, app_name="server")

    clients = ThreadCollection(ClientThread, f"cli-{service_name}").map(
        "node04 node05"
    )
    call_cls = type("ClientScatterCall_" + service_name.replace(".", "_"),
                    (ClientScatterCall,), {"service": service_name})
    client_graph = Flowgraph(
        FlowgraphNode(call_cls, clients, ConstantRoute)
        >> FlowgraphNode(ClientProcess, clients, RoundRobinRoute)
        >> FlowgraphNode(ClientMerge, clients, ConstantRoute),
        f"client-{service_name}",
    )
    engine.register_graph(client_graph, app_name="client")
    return engine, client_graph


def test_scatter_graph_validation():
    servers = ThreadCollection(ServerThread, "val-srv").map("node01")
    # balanced graphs cannot be declared scatter
    class Closed(MergeOperation):
        thread_type = ServerThread
        in_types = (SItem,)
        out_types = (SAnswer,)

        def execute(self, tok):
            yield self.post(SAnswer())

    with pytest.raises(GraphError, match="exactly one open group"):
        Flowgraph(
            FlowgraphNode(ServerScatter, servers)
            >> FlowgraphNode(Closed, servers),
            "closed-scatter", scatter=True,
        )
    # scatter graph records which opener leaves the graph open
    g = server_scatter_graph(servers, "val.scatter")
    assert g.scatter
    assert g.scatter_opener == 0


def test_client_merges_server_side_split():
    engine, client_graph = build_world(service_name="sv1.scatter")
    result = engine.run(client_graph, SQuery(1), driver_node="node04")
    # server posted items 100,101,102; client processed x10 and merged
    assert result.token.items == 3
    assert result.token.total == 10 * (100 + 101 + 102)


def test_scatter_with_split_as_exit():
    engine, client_graph = build_world(with_leaf=False,
                                       service_name="sv2.scatter")
    result = engine.run(client_graph, SQuery(1), driver_node="node04")
    # without the server leaf, raw shard indices arrive (0,1,2)
    assert result.token.items == 3
    assert result.token.total == 10 * (0 + 1 + 2)


def test_scatter_graph_cannot_be_run_directly():
    engine, _ = build_world(service_name="sv3.scatter")
    with pytest.raises(ScheduleError, match="call_scatter"):
        engine.run("sv3.scatter", SQuery(1))


def test_call_scatter_on_ordinary_graph_rejected():
    engine, client_graph = build_world(service_name="sv4.scatter")

    class BadCall(ClientScatterCall):
        service = f"client-sv4.scatter"  # an ordinary, balanced graph

    clients = ThreadCollection(ClientThread, "bad-cli").map("node04")
    bad = Flowgraph(
        FlowgraphNode(BadCall, clients)
        >> FlowgraphNode(ClientProcess, clients, ConstantRoute)
        >> FlowgraphNode(ClientMerge, clients),
        "bad-client",
    )
    with pytest.raises(ScheduleError, match="not a scatter graph"):
        engine.run(bad, SQuery(1), driver_node="node04")


def test_call_scatter_from_leaf_rejected():
    class LeafCaller(LeafOperation):
        thread_type = ClientThread
        in_types = (SQuery,)
        out_types = (SAnswer,)

        def execute(self, tok):
            yield self.call_scatter("whatever", tok)

    op = LeafCaller()
    with pytest.raises(TypeError, match="split/stream"):
        op.call_scatter("whatever", SQuery())


def test_sequential_scatter_calls():
    engine, client_graph = build_world(service_name="sv5.scatter")
    r1 = engine.run(client_graph, SQuery(1), driver_node="node04")
    r2 = engine.run(client_graph, SQuery(2), driver_node="node04")
    assert r1.token.total == r2.token.total == 10 * 303


# ---------------------------------------------------------------------------
# engine parity: the same scatter code on real OS threads
# ---------------------------------------------------------------------------

def test_scatter_on_threaded_engine():
    from repro.runtime.threaded_engine import ThreadedEngine

    with ThreadedEngine() as engine:
        servers = ThreadCollection(ServerThread, "t-srv").map(
            "hostA hostB hostC"
        )
        engine.register_graph(
            server_scatter_graph(servers, "tsv.scatter")
        )
        clients = ThreadCollection(ClientThread, "t-cli").map("hostD")
        call_cls = type("ClientScatterCall_tsv", (ClientScatterCall,),
                        {"service": "tsv.scatter"})
        client_graph = Flowgraph(
            FlowgraphNode(call_cls, clients, ConstantRoute)
            >> FlowgraphNode(ClientProcess, clients, ConstantRoute)
            >> FlowgraphNode(ClientMerge, clients, ConstantRoute),
            "t-client",
        )
        result = engine.run(client_graph, SQuery(1), timeout=30)
        assert result.items == 3
        assert result.total == 10 * (100 + 101 + 102)


def test_scatter_graph_rejected_by_threaded_run():
    from repro.runtime.threaded_engine import ThreadedEngine

    with ThreadedEngine() as engine:
        servers = ThreadCollection(ServerThread, "t2-srv").map("hostA")
        g = server_scatter_graph(servers, "tsv2.scatter")
        with pytest.raises(ScheduleError, match="call_scatter"):
            engine.run(g, SQuery(1), timeout=10)
