"""ScalingPolicy: the pure grow/shrink decision, env parsing, and the
multiprocess autoscaler that drives membership from it."""

import time

import pytest

from repro.apps.ring import RingJobToken, build_ring_graph
from repro.runtime import MultiprocessEngine, ScalingPolicy


# ---------------------------------------------------------------------------
# the pure decision function
# ---------------------------------------------------------------------------

def test_decide_grows_on_high_watermark():
    p = ScalingPolicy(max_kernels=4, queue_high=8, queue_low=1, cooldown=0.0)
    assert p.decide(2, {"a": 9, "b": 0}, 0.0, 1.0) == "grow"
    # peak, not mean: one saturated kernel is enough
    assert p.decide(2, {"a": 8, "b": 0}, 0.0, 1.0) == "grow"
    assert p.decide(2, {"a": 7, "b": 7}, 0.0, 1.0) is None


def test_decide_shrinks_when_everyone_is_idle():
    p = ScalingPolicy(min_kernels=2, queue_high=8, queue_low=1, cooldown=0.0)
    assert p.decide(3, {"a": 0, "b": 1, "c": 0}, 0.0, 1.0) == "shrink"
    assert p.decide(3, {"a": 0, "b": 2, "c": 0}, 0.0, 1.0) is None


def test_decide_respects_bounds():
    p = ScalingPolicy(min_kernels=2, max_kernels=3, queue_high=8,
                      queue_low=1, cooldown=0.0)
    assert p.decide(3, {"a": 99}, 0.0, 1.0) is None   # at max
    assert p.decide(2, {"a": 0}, 0.0, 1.0) is None    # at min


def test_decide_honours_cooldown_and_missing_depths():
    p = ScalingPolicy(max_kernels=4, queue_high=8, cooldown=5.0)
    assert p.decide(2, {"a": 99}, 0.0, 1.0) is None   # in cooldown
    assert p.decide(2, {"a": 99}, 0.0, 6.0) == "grow"
    assert p.decide(2, {}, 0.0, 6.0) is None          # no observations


def test_decide_is_pure():
    p = ScalingPolicy(cooldown=0.0)
    args = (2, {"a": 9}, 0.0, 1.0)
    assert p.decide(*args) == p.decide(*args) == "grow"


def test_validation():
    with pytest.raises(ValueError, match="min_kernels"):
        ScalingPolicy(min_kernels=0)
    with pytest.raises(ValueError, match="max_kernels"):
        ScalingPolicy(min_kernels=3, max_kernels=2)
    with pytest.raises(ValueError, match="queue_high"):
        ScalingPolicy(queue_high=1, queue_low=1)
    with pytest.raises(ValueError, match="cooldown"):
        ScalingPolicy(cooldown=-1)


def test_from_env():
    env = {"REPRO_SCALING_MIN": "2", "REPRO_SCALING_MAX": "5",
           "REPRO_SCALING_HIGH": "16", "REPRO_SCALING_LOW": "2",
           "REPRO_SCALING_COOLDOWN": "0.5"}
    p = ScalingPolicy.from_env(env)
    assert p == ScalingPolicy(min_kernels=2, max_kernels=5, queue_high=16,
                              queue_low=2, cooldown=0.5)
    assert ScalingPolicy.from_env({}) == ScalingPolicy()


# ---------------------------------------------------------------------------
# the multiprocess autoscaler thread
# ---------------------------------------------------------------------------

def test_autoscaler_grows_and_shrinks_only_elastic_kernels():
    """Feed the autoscaler synthetic depth observations: sustained
    backlog must fork exactly one kernel (cooldown gates the second),
    idleness must retire that kernel and never a seed kernel."""
    nodes = ["node01", "node02"]
    graph = build_ring_graph(nodes)
    scaling = ScalingPolicy(min_kernels=2, max_kernels=3, queue_high=8,
                            queue_low=1, cooldown=0.3)
    with MultiprocessEngine(scaling=scaling, heartbeat_interval=0.05) \
            as engine:
        engine.register_graph(graph)
        engine.run(graph, RingJobToken(256, 2), timeout=60)

        depths = {"value": {n: 20 for n in nodes}}
        engine._poll_depths = lambda: dict(depths["value"])

        deadline = time.time() + 15
        while not engine._elastic_kernels and time.time() < deadline:
            time.sleep(0.05)
        assert engine._elastic_kernels, "autoscaler never grew"
        grown = list(engine._elastic_kernels)
        assert len(grown) == 1  # capped by max_kernels=3
        assert set(engine.members()) == set(nodes) | set(grown)

        depths["value"] = {n: 0 for n in engine.members()}
        deadline = time.time() + 15
        while engine._elastic_kernels and time.time() < deadline:
            time.sleep(0.05)
        assert not engine._elastic_kernels, "autoscaler never shrank"
        # only its own join retired; the seed topology is untouched
        assert set(engine.members()) == set(nodes)

        done = engine.run(graph, RingJobToken(256, 4), timeout=60)
        assert done.blocks == 4
