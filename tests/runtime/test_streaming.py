"""Engine tests for the first-class stream contract (DESIGN §5i).

Covers the callback contract (``on_token``/``on_close``/``emit``/
``end_of_stream``) on the simulated and real-thread engines, pacing via
``sleep()``, per-edge credit resolution (window=1 lock-step), the two
lossy shedding modes and their opposite starvation patterns, the
deprecated generator contract (result-identical, warns once per class),
and a hypothesis sweep checking windowed aggregation is bit-identical
across engines.
"""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import paper_cluster
from repro.core import (
    ConstantRoute,
    DpsThread,
    FlowControlPolicy,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    MergeOperation,
    SplitOperation,
    StreamOperation,
    StreamPolicy,
    ThreadCollection,
    WindowSpec,
    WindowedStream,
)
from repro.core.ops import reset_legacy_stream_warnings
from repro.core.windows import checksum_mix
from repro.runtime import SimEngine
from repro.runtime.threaded_engine import ThreadedEngine
from repro.serial import SimpleToken
from repro.trace import MetricsRegistry


class StrmJob(SimpleToken):
    def __init__(self, n=0, seed=0):
        self.n = n
        self.seed = seed


class StrmItem(SimpleToken):
    def __init__(self, seq=0, value=0):
        self.seq = seq
        self.value = value


class StrmOut(SimpleToken):
    def __init__(self, text=""):
        self.text = text


class StrmMain(DpsThread):
    pass


class StrmWork(DpsThread):
    pass


class StrmFan(SplitOperation):
    """Batch fan-out: seq i carries value seed + i."""

    in_types = (StrmJob,)
    out_types = (StrmItem,)

    def execute(self, tok):
        for i in range(tok.n):
            self.post(StrmItem(seq=i, value=tok.seed + i))


class StrmCollect(MergeOperation):
    """Order-independent fold: sorted seq:value pairs as text."""

    in_types = (StrmItem,)
    out_types = (StrmOut,)

    def execute(self, tok):
        pairs = []
        while tok is not None:
            pairs.append((tok.seq, tok.value))
            tok = yield self.next_token()
        yield self.post(StrmOut(
            ",".join(f"{s}:{v}" for s, v in sorted(pairs))))


def _graph(stage_class, *, fan=StrmFan, name="strm"):
    # the stage is a single-instance collection: a stream stage consumes
    # its whole input group, so the group cannot fan across instances
    main = ThreadCollection(StrmMain, f"{name}-main").map("node01")
    mids = ThreadCollection(StrmWork, f"{name}-mid").map("node02")
    return Flowgraph(
        FlowgraphNode(fan, main, name="fan")
        >> FlowgraphNode(stage_class, mids, ConstantRoute, name="stage")
        >> FlowgraphNode(StrmCollect, main, name="collect"),
        name,
    )


def _run_sim(graph, token, *, stream=None, metrics=None, window=8):
    engine = SimEngine(paper_cluster(4),
                       policy=FlowControlPolicy(window=window),
                       stream=stream, metrics=metrics)
    return engine, engine.run(graph, token)


def _run_threaded(graph, token, *, stream=None, window=8):
    with ThreadedEngine(policy=FlowControlPolicy(window=window),
                        stream=stream) as engine:
        return engine.run(graph, token)


# ---------------------------------------------------------------------------
# the callback contract
# ---------------------------------------------------------------------------

class FanOutStage(StreamOperation):
    """1..2 outputs per input plus a trailing flush: dynamic data rates."""

    in_types = (StrmItem,)
    out_types = (StrmItem,)

    def on_token(self, tok):
        self.emit(StrmItem(seq=2 * tok.seq, value=tok.value))
        if tok.seq % 2 == 0:
            self.emit(StrmItem(seq=2 * tok.seq + 1, value=-tok.value))

    def on_close(self):
        self.emit(StrmItem(seq=9_999, value=42))


def _fanout_expected(n, seed):
    pairs = []
    for i in range(n):
        pairs.append((2 * i, seed + i))
        if i % 2 == 0:
            pairs.append((2 * i + 1, -(seed + i)))
    pairs.append((9_999, 42))
    return ",".join(f"{s}:{v}" for s, v in sorted(pairs))


def test_callback_contract_on_sim():
    _, result = _run_sim(_graph(FanOutStage), StrmJob(n=7, seed=100))
    assert result.token.text == _fanout_expected(7, 100)


def test_callback_contract_on_threads():
    result = _run_threaded(_graph(FanOutStage, name="strm-t"),
                           StrmJob(n=7, seed=100))
    assert result.text == _fanout_expected(7, 100)


class CutoffStage(StreamOperation):
    """Stops listening after 3 inputs; the group must still terminate."""

    in_types = (StrmItem,)
    out_types = (StrmItem,)

    def on_token(self, tok):
        self.emit(StrmItem(seq=tok.seq, value=tok.value))
        if tok.seq >= 2:
            self.end_of_stream()

    def on_close(self):
        # the discarded remainder is visible for accounting
        self.emit(StrmItem(seq=500, value=self.input_discarded))


def test_end_of_stream_discards_but_terminates():
    for runner in (
        lambda g, t: _run_sim(g, t)[1].token,
        lambda g, t: _run_threaded(g, t),
    ):
        out = runner(_graph(CutoffStage, name="strm-cut"), StrmJob(n=10))
        # only seqs 0..2 processed; 7 inputs consumed after end_of_stream
        assert out.text == "0:0,1:1,2:2,500:7"


def test_emit_rejects_non_tokens():
    stage = FanOutStage()
    with pytest.raises(TypeError, match="Token"):
        stage.emit("not a token")


# ---------------------------------------------------------------------------
# sleep(): pacing without computing
# ---------------------------------------------------------------------------

class PacedFan(SplitOperation):
    streaming = True
    in_types = (StrmJob,)
    out_types = (StrmItem,)

    def execute(self, tok):
        for i in range(tok.n):
            yield self.sleep(0.25)
            yield self.post(StrmItem(seq=i, value=i))


def test_sleep_advances_virtual_time_without_cpu():
    engine, result = _run_sim(_graph(SlowRelay, fan=PacedFan,
                                     name="strm-paced"), StrmJob(n=8))
    assert result.token.text == ",".join(f"{i}:{i}" for i in range(8))
    # 8 sleeps of 0.25 virtual seconds pace the source
    assert result.makespan >= 2.0
    # idle time is not compute: the source node's CPU stays nearly free
    stats = engine.stats()
    assert stats["nodes"]["node01"]["compute_time"] < 0.1


# ---------------------------------------------------------------------------
# per-edge credits: window=1 lock-step
# ---------------------------------------------------------------------------

def test_edge_credits_lock_step():
    stream = StreamPolicy(edge_credits={"fan": 1})
    # BurstFan *yields* its posts, so a saturated window stalls the body
    graph = _graph(FanOutStage, fan=BurstFan, name="strm-lock")
    engine, result = _run_sim(graph, StrmJob(n=12), stream=stream,
                              window=64)

    def windows_named(node_name):
        return [
            w for c in engine.controllers.values()
            for (_, node_id, _), w in c.window_stats().items()
            if graph.node(node_id).name == node_name
        ]

    assert result.token.text == _fanout_expected(12, 0)
    fan_windows = windows_named("fan")
    assert fan_windows, "fan opener window not found"
    for window in fan_windows:
        assert window.window == 1          # the per-edge override applied
        assert window.stalls >= 10         # lock-step really stalled
        assert window.in_flight == 0       # and drained cleanly
    # the stage edge kept the schedule-wide window
    stage_windows = windows_named("stage")
    assert stage_windows and all(w.window == 64 for w in stage_windows)


# ---------------------------------------------------------------------------
# lossy shedding: drop-oldest starves the head, shed starves the tail
# ---------------------------------------------------------------------------

class BurstFan(SplitOperation):
    """A streaming opener that posts its whole burst instantly."""

    streaming = True
    in_types = (StrmJob,)
    out_types = (StrmItem,)

    def execute(self, tok):
        for i in range(tok.n):
            yield self.post(StrmItem(seq=i, value=i))


class SlowRelay(StreamOperation):
    in_types = (StrmItem,)
    out_types = (StrmItem,)

    def on_token(self, tok):
        self.emit(StrmItem(seq=tok.seq, value=tok.value))


def _shed_run(mode):
    metrics = MetricsRegistry()
    stream = StreamPolicy(credit_window=4, shedding=mode,
                          edge_credits={"stage": None})
    graph = _graph(SlowRelay, fan=BurstFan, name=f"strm-{mode}")
    _, result = _run_sim(graph, StrmJob(n=16), stream=stream,
                         metrics=metrics)
    survivors = sorted(int(p.split(":")[0])
                       for p in result.token.text.split(","))
    return survivors, metrics.counter("tokens_shed").value


def test_shed_keeps_the_oldest_tokens():
    survivors, shed = _shed_run("shed")
    # 4 in flight + 4 queued survive; the burst's tail is dropped
    assert shed == 8
    assert survivors == list(range(8))


def test_drop_oldest_keeps_the_freshest_tokens():
    survivors, shed = _shed_run("drop-oldest")
    # the in-flight head survives, the queue keeps only the tail
    assert shed == 8
    assert survivors == [0, 1, 2, 3, 12, 13, 14, 15]


def test_lossy_modes_starve_opposite_ends():
    shed_survivors, _ = _shed_run("shed")
    fresh_survivors, _ = _shed_run("drop-oldest")
    assert max(shed_survivors) < 8      # tail-drop: newest data lost
    assert max(fresh_survivors) == 15   # ring-buffer: newest data kept
    assert shed_survivors != fresh_survivors


def test_block_mode_loses_nothing():
    stream = StreamPolicy(credit_window=4, shedding="block",
                          edge_credits={"stage": None})
    graph = _graph(SlowRelay, fan=BurstFan, name="strm-block")
    _, result = _run_sim(graph, StrmJob(n=16), stream=stream)
    survivors = sorted(int(p.split(":")[0])
                       for p in result.token.text.split(","))
    assert survivors == list(range(16))


# ---------------------------------------------------------------------------
# deprecation shim: old generator bodies run unmodified, warn once
# ---------------------------------------------------------------------------

def test_legacy_generator_contract_is_result_identical_and_warns_once():
    reset_legacy_stream_warnings()

    class LegacyInc(StreamOperation):
        in_types = (StrmItem,)
        out_types = (StrmItem,)

        def execute(self, tok):
            while tok is not None:
                yield self.post(StrmItem(seq=tok.seq, value=tok.value + 1))
                tok = yield self.next_token()

    class NewInc(StreamOperation):
        in_types = (StrmItem,)
        out_types = (StrmItem,)

        def on_token(self, tok):
            self.emit(StrmItem(seq=tok.seq, value=tok.value + 1))

    job = StrmJob(n=9, seed=3)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        _, legacy = _run_sim(_graph(LegacyInc, name="strm-old"), job)
        LegacyInc()  # a second construction does not warn again
    deprecations = [w for w in caught
                    if issubclass(w.category, DeprecationWarning)
                    and "generator stream contract" in str(w.message)]
    assert len(deprecations) == 1
    assert "LegacyInc" in str(deprecations[0].message)
    assert "on_token" in str(deprecations[0].message)

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        _, new = _run_sim(_graph(NewInc, name="strm-new"), job)
    assert not [w for w in caught
                if issubclass(w.category, DeprecationWarning)]

    assert legacy.token.text == new.token.text

    # forgetting the class makes the next construction warn again
    reset_legacy_stream_warnings()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        LegacyInc()
    assert len(caught) == 1


# ---------------------------------------------------------------------------
# cross-engine parity of windowed aggregation
# ---------------------------------------------------------------------------

class ParityWindow(WindowedStream):
    in_types = (StrmItem,)
    out_types = (StrmItem,)
    window = WindowSpec(4)

    def seq_of(self, tok):
        return tok.seq

    def value_of(self, tok):
        return tok.value

    def make_result(self, result):
        return StrmItem(seq=result.window_id,
                        value=checksum_mix(result.count, result.checksum))


@settings(deadline=None, max_examples=5)
@given(n=st.integers(min_value=1, max_value=24),
       seed=st.integers(min_value=0, max_value=10**6))
def test_windowed_aggregation_bit_identical_across_engines(n, seed):
    job = StrmJob(n=n, seed=seed)
    graph = _graph(ParityWindow, name="strm-parity")
    _, sim = _run_sim(graph, job)
    threaded = _run_threaded(_graph(ParityWindow, name="strm-parity-t"), job)
    assert sim.token.text == threaded.text
