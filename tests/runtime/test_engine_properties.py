"""Property-based tests of the engine: correctness under random shapes.

Hypothesis drives fan-out counts, routing choices, window sizes, nesting
and payload sizes; the engine must always produce the mathematically
correct merge result, stay deterministic, and respect the flow-control
invariant.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import paper_cluster
from repro.core import (
    ConstantRoute,
    DpsThread,
    FlowControlPolicy,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    LoadBalancedRoute,
    MergeOperation,
    RoundRobinRoute,
    SplitOperation,
    ThreadCollection,
    route_fn,
)
from repro.runtime import SimEngine
from repro.serial import SimpleToken


class PJob(SimpleToken):
    def __init__(self, values=()):
        self.values = list(values)


class PItem(SimpleToken):
    def __init__(self, v=0, idx=0):
        self.v = v
        self.idx = idx


class PSum(SimpleToken):
    def __init__(self, total=0, count=0):
        self.total = total
        self.count = count


class PMain(DpsThread):
    pass


class PWork(DpsThread):
    pass


class PFan(SplitOperation):
    thread_type = PMain
    in_types = (PJob,)
    out_types = (PItem,)

    def execute(self, tok):
        for i, v in enumerate(tok.values):
            self.post(PItem(v, i))


class PDouble(LeafOperation):
    thread_type = PWork
    in_types = (PItem,)
    out_types = (PItem,)

    def execute(self, tok):
        self.post(PItem(tok.v * 2, tok.idx))

    def cost(self, tok):
        return self.charge_seconds(0.001)


class PSumUp(MergeOperation):
    thread_type = PMain
    in_types = (PItem,)
    out_types = (PSum,)

    def execute(self, tok):
        total = count = 0
        while tok is not None:
            total += tok.v
            count += 1
            tok = yield self.next_token()
        yield self.post(PSum(total, count))


ROUTES = [ConstantRoute, RoundRobinRoute, LoadBalancedRoute,
          route_fn("PByIdx", lambda tok, n: tok.idx % n)]


def build(n_nodes, route_cls, window, suffix):
    engine = SimEngine(paper_cluster(n_nodes),
                       policy=FlowControlPolicy(window=window))
    main = ThreadCollection(PMain, f"pmain{suffix}").map("node01")
    worker_nodes = " ".join(f"node{i:02d}" for i in range(1, n_nodes + 1))
    workers = ThreadCollection(PWork, f"pwork{suffix}").map(worker_nodes)
    graph = Flowgraph(
        FlowgraphNode(PFan, main)
        >> FlowgraphNode(PDouble, workers, route_cls)
        >> FlowgraphNode(PSumUp, main),
        f"prop{suffix}",
    )
    return engine, graph


_counter = [0]


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=40),
    n_nodes=st.integers(1, 5),
    route_idx=st.integers(0, len(ROUTES) - 1),
    window=st.one_of(st.none(), st.integers(1, 12)),
)
def test_fan_out_merge_always_correct(values, n_nodes, route_idx, window):
    _counter[0] += 1
    engine, graph = build(n_nodes, ROUTES[route_idx], window, _counter[0])
    result = engine.run(graph, PJob(values))
    assert result.token.total == 2 * sum(values)
    assert result.token.count == len(values)
    engine.check_quiescent()


@settings(max_examples=15, deadline=None)
@given(
    values=st.lists(st.integers(-50, 50), min_size=1, max_size=15),
    window=st.one_of(st.none(), st.integers(1, 6)),
)
def test_runs_are_deterministic(values, window):
    def once(tag):
        _counter[0] += 1
        engine, graph = build(3, RoundRobinRoute, window, _counter[0])
        r = engine.run(graph, PJob(values))
        return r.makespan, engine.stats()["network_bytes"]

    assert once("a") == once("b")


@settings(max_examples=20, deadline=None)
@given(
    values=st.lists(st.integers(0, 10), min_size=1, max_size=25),
    window=st.integers(1, 4),
)
def test_flow_control_invariant_holds_at_runtime(values, window):
    """After the run, every window must be fully drained (posted == acked)
    and must never have exceeded its bound (checked inside SplitWindow)."""
    _counter[0] += 1
    engine, graph = build(2, RoundRobinRoute, window, _counter[0])
    engine.run(graph, PJob(values))
    for controller in engine.controllers.values():
        for w in controller.window_stats().values():
            assert w.in_flight == 0
            assert w.total_posted == w.total_acked
            assert w.total_posted == len(values)
