"""End-to-end tests of the sim engine with the tutorial application."""

import pytest

from repro.apps.strings import (
    StringToken,
    build_uppercase_graph,
)
from repro.cluster import NetworkSpec, paper_cluster
from repro.core import FlowControlPolicy
from repro.runtime import ScheduleError, SimEngine


def make_engine(n_nodes=4, window=8, **kwargs):
    return SimEngine(
        paper_cluster(n_nodes),
        policy=FlowControlPolicy(window=window),
        **kwargs,
    )


def test_uppercase_roundtrip_single_node():
    engine = make_engine(1)
    graph, *_ = build_uppercase_graph("node01", "node01*2")
    result = engine.run(graph, StringToken("hello world"))
    assert result.token.text == "HELLO WORLD"
    assert result.makespan > 0


def test_uppercase_across_nodes():
    engine = make_engine(4)
    graph, *_ = build_uppercase_graph("node01", "node02 node03 node04")
    result = engine.run(graph, StringToken("dynamic parallel schedules"))
    assert result.token.text == "DYNAMIC PARALLEL SCHEDULES"


def test_remote_run_takes_longer_than_local():
    local = make_engine(1)
    g1, *_ = build_uppercase_graph("node01", "node01*2")
    t_local = local.run(g1, StringToken("abcdefgh")).makespan

    remote = make_engine(4)
    g2, *_ = build_uppercase_graph("node01", "node02 node03 node04")
    t_remote = remote.run(g2, StringToken("abcdefgh")).makespan
    assert t_remote > t_local  # network costs are visible in virtual time


def test_empty_string_rejected_as_empty_group():
    engine = make_engine(1)
    graph, *_ = build_uppercase_graph("node01", "node01")
    with pytest.raises(ScheduleError, match="posted no tokens"):
        engine.run(graph, StringToken(""))


def test_run_returns_metrics():
    engine = make_engine(2)
    graph, *_ = build_uppercase_graph("node01", "node02")
    engine.run(graph, StringToken("xyz"))
    m = engine.stats()
    assert m["network_messages"] > 0
    assert m["network_bytes"] > 0
    assert m["tokens_posted"] == 3
    assert m["time"] > 0


def test_window_one_still_completes():
    engine = make_engine(2, window=1)
    graph, *_ = build_uppercase_graph("node01", "node02")
    result = engine.run(graph, StringToken("flow control"))
    assert result.token.text == "FLOW CONTROL"


def test_window_one_slower_than_wide_window():
    def run_with(window):
        engine = make_engine(3, window=window)
        graph, *_ = build_uppercase_graph("node01", "node02 node03")
        return engine.run(graph, StringToken("a" * 64)).makespan

    assert run_with(1) > run_with(32)


def test_unbounded_window():
    engine = make_engine(2, window=None)
    graph, *_ = build_uppercase_graph("node01", "node02")
    result = engine.run(graph, StringToken("unbounded"))
    assert result.token.text == "UNBOUNDED"


def test_determinism_same_seedless_run():
    def once():
        engine = make_engine(4)
        graph, *_ = build_uppercase_graph("node01", "node02 node03 node04")
        r = engine.run(graph, StringToken("determinism"))
        return r.makespan, engine.stats()["network_bytes"]

    assert once() == once()


def test_serialization_disabled_uses_estimates():
    engine = make_engine(2, serialize_payloads=False)
    graph, *_ = build_uppercase_graph("node01", "node02")
    result = engine.run(graph, StringToken("fast path"))
    assert result.token.text == "FAST PATH"


def test_unknown_graph():
    engine = make_engine(1)
    with pytest.raises(KeyError, match="unknown graph"):
        engine.graph("nope")


def test_mapping_to_unknown_node_rejected():
    engine = make_engine(2)
    graph, *_ = build_uppercase_graph("node01", "node09")
    with pytest.raises(ScheduleError, match="not in the cluster"):
        engine.register_graph(graph)


def test_wrong_input_type_rejected():
    from repro.apps.strings import CharToken

    engine = make_engine(1)
    graph, *_ = build_uppercase_graph("node01", "node01")
    with pytest.raises(ScheduleError, match="entry accepts"):
        engine.run(graph, CharToken("a", 0))


def test_sequential_runs_share_engine():
    engine = make_engine(2)
    graph, *_ = build_uppercase_graph("node01", "node02")
    r1 = engine.run(graph, StringToken("first"))
    r2 = engine.run(graph, StringToken("second"))
    assert r1.token.text == "FIRST"
    assert r2.token.text == "SECOND"
    assert r2.started_at >= r1.finished_at


def test_launch_delay_charged_once():
    engine = make_engine(2)
    graph, *_ = build_uppercase_graph("node01", "node02")
    r1 = engine.run(graph, StringToken("warm"))
    r2 = engine.run(graph, StringToken("warm"))
    # First run pays the lazy application-launch delay on both nodes.
    assert r1.makespan > r2.makespan


def test_prelaunch_skips_launch_delay():
    cold = make_engine(2)
    g1, *_ = build_uppercase_graph("node01", "node02")
    t_cold = cold.run(g1, StringToken("x")).makespan

    warm = make_engine(2)
    g2, *_ = build_uppercase_graph("node01", "node02")
    warm.register_graph(g2)
    warm.prelaunch()
    t_warm = warm.run(g2, StringToken("x")).makespan
    assert t_warm < t_cold
