"""Tests for runtime reshaping: remapping collections with state migration."""

import numpy as np
import pytest

from repro.apps.gameoflife import DistributedGameOfLife, life_step
from repro.apps.strings import StringToken, build_uppercase_graph
from repro.cluster import paper_cluster
from repro.runtime import ScheduleError, SimEngine
from repro.trace import Tracer


def test_remap_moves_stateless_workers():
    tracer = Tracer()
    engine = SimEngine(paper_cluster(4), tracer=tracer)
    graph, main, workers = build_uppercase_graph("node01", "node02 node03")
    r1 = engine.run(graph, StringToken("before"))
    assert r1.token.text == "BEFORE"

    report = engine.remap(workers, "node03 node04")
    assert report["migrated"] == 2
    assert workers.placements == ["node03", "node04"]

    tracer.clear()
    r2 = engine.run(graph, StringToken("after"))
    assert r2.token.text == "AFTER"
    # the ops now fire on node03/node04; node02 no longer participates
    fired_on = {e.node for e in tracer.filter("token_recv")
                if e.op == "ToUpperCase"}
    assert fired_on == {"node03", "node04"}


def test_remap_migrates_distributed_state():
    """The Game of Life bands follow their threads to the new nodes."""
    rng = np.random.default_rng(4)
    world = (rng.random((24, 16)) < 0.4).astype(np.uint8)
    engine = SimEngine(paper_cluster(4))
    gol = DistributedGameOfLife(engine, world, ["node01", "node02"])
    gol.load()
    gol.step(improved=True)

    r1 = engine.remap(gol._exchange, "node03 node04")
    r2 = engine.remap(gol._compute, "node03 node04")
    assert r1["migrated"] == 2
    # band state (~12*16 bytes per worker plus ghosts) really moved
    assert r1["bytes"] > 2 * 12 * 16
    assert r1["duration"] > 0
    # compute threads hold no band: cheaper migration
    assert r2["bytes"] < r1["bytes"]

    gol.step(improved=True)
    expected = life_step(life_step(world))
    assert np.array_equal(gol.gather(), expected)


def test_remap_identity_is_noop():
    engine = SimEngine(paper_cluster(3))
    graph, main, workers = build_uppercase_graph("node01", "node02 node03")
    engine.run(graph, StringToken("x"))
    report = engine.remap(workers, "node02 node03")
    assert report["migrated"] == 0
    assert report["bytes"] == 0


def test_remap_rejects_thread_count_change():
    engine = SimEngine(paper_cluster(3))
    graph, main, workers = build_uppercase_graph("node01", "node02")
    engine.run(graph, StringToken("x"))
    with pytest.raises(ScheduleError, match="thread count"):
        engine.remap(workers, "node02 node03")
    # rolled back
    assert workers.placements == ["node02"]


def test_remap_rejects_unknown_node():
    engine = SimEngine(paper_cluster(2))
    graph, main, workers = build_uppercase_graph("node01", "node02")
    engine.run(graph, StringToken("x"))
    with pytest.raises(ScheduleError, match="unknown node"):
        engine.remap(workers, "node09")


def test_remap_of_never_instantiated_threads():
    """Threads that never received a token migrate for free (they are
    created lazily on the new node)."""
    engine = SimEngine(paper_cluster(3), tracer=Tracer())
    graph, main, workers = build_uppercase_graph("node01", "node02")
    report = engine.remap(workers, "node03")
    assert report["migrated"] == 0
    result = engine.run(graph, StringToken("lazy"))
    assert result.token.text == "LAZY"
    fired_on = {e.node for e in engine.tracer.filter("token_recv")
                if e.op == "ToUpperCase"}
    assert fired_on == {"node03"}
