"""Tests for checkpointing and node-failure recovery (paper §6)."""

import numpy as np
import pytest

from repro.apps.gameoflife import DistributedGameOfLife, life_step
from repro.cluster import paper_cluster
from repro.runtime import ScheduleError, SimEngine
from repro.runtime.checkpoint import CheckpointManager, fail_node


def make_gol(n_workers=2, rows=24, cols=16, seed=8, n_nodes=4):
    rng = np.random.default_rng(seed)
    world = (rng.random((rows, cols)) < 0.4).astype(np.uint8)
    engine = SimEngine(paper_cluster(n_nodes))
    gol = DistributedGameOfLife(
        engine, world, engine.cluster.node_names[:n_workers]
    )
    gol.load()
    return engine, gol, world


def test_checkpoint_counts_state():
    engine, gol, world = make_gol()
    mgr = CheckpointManager(engine)
    ckpt = mgr.checkpoint(gol._exchange)
    assert ckpt.thread_count == 2
    # each shard holds a ~12x16-cell band plus ghosts and headers
    assert ckpt.nbytes > 2 * 12 * 16
    assert ckpt.taken_at >= 0


def test_checkpoint_takes_virtual_time():
    engine, gol, world = make_gol()
    mgr = CheckpointManager(engine)
    t0 = engine.sim.now
    mgr.checkpoint(gol._exchange)
    assert engine.sim.now > t0  # disk writes and transfers were charged


def test_restore_rolls_state_back():
    engine, gol, world = make_gol()
    mgr = CheckpointManager(engine)
    ckpt = mgr.checkpoint(gol._exchange)

    gol.step(improved=True)
    gol.step(improved=True)
    assert not np.array_equal(gol.gather(), world)

    mgr.restore(ckpt)
    assert np.array_equal(gol.gather(), world)  # back to checkpoint state


def test_failure_recovery_end_to_end():
    """The paper's graceful-degradation story: checkpoint, lose a node,
    remap the collections, restore, replay — results stay correct."""
    engine, gol, world = make_gol(n_workers=2, n_nodes=4)
    mgr = CheckpointManager(engine, storage_nodes=["node03", "node04"])

    gol.step(improved=True)
    ckpt = mgr.checkpoint(gol._exchange, gol._compute)
    done_at_ckpt = gol.iteration

    gol.step(improved=True)  # progress that will be lost

    lost = engine.fail_node("node02")
    assert lost > 0

    # reshape away from the dead node, restore, replay
    engine.remap(gol._exchange, "node01 node03")
    engine.remap(gol._compute, "node01 node03")
    report = mgr.restore(ckpt)
    assert report["restored"] == ckpt.thread_count

    gol.step(improved=True)  # replay the lost iteration
    expected = world
    for _ in range(done_at_ckpt + 1):
        expected = life_step(expected)
    assert np.array_equal(gol.gather(), expected)


def test_fail_node_requires_quiescence_and_traces():
    engine, gol, world = make_gol()
    lost = engine.fail_node("node01")
    assert lost >= 1
    # failing an empty node is fine (0 threads lost)
    assert engine.fail_node("node04") == 0


def test_fail_node_module_shim_warns_and_delegates():
    engine, gol, world = make_gol()
    with pytest.warns(DeprecationWarning, match="engine.fail_node"):
        lost = fail_node(engine, "node01")
    assert lost >= 1


def test_checkpoint_requires_collections():
    engine, gol, world = make_gol()
    mgr = CheckpointManager(engine)
    with pytest.raises(ValueError, match="nothing to checkpoint"):
        mgr.checkpoint()


def test_unknown_storage_node_rejected():
    engine, gol, world = make_gol()
    with pytest.raises(ValueError, match="unknown storage node"):
        CheckpointManager(engine, storage_nodes=["node09"])


def test_checkpoint_skips_uninstantiated_threads():
    engine, gol, world = make_gol(n_workers=2)
    mgr = CheckpointManager(engine)
    # the compute threads only materialize during a step; before any step
    # they have no state to save
    ckpt = mgr.checkpoint(gol._compute)
    assert ckpt.thread_count == 0
