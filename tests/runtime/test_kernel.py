"""Tests for the kernel/name-server runtime environment (paper §4)."""

import pytest

from repro.apps.strings import StringToken, build_uppercase_graph
from repro.cluster import NetworkSpec
from repro.runtime.kernel import (
    KernelEnvironment,
    KernelSpec,
    NameServer,
    cluster_from_kernels,
)


# ---------------------------------------------------------------------------
# name server
# ---------------------------------------------------------------------------

def test_register_and_lookup():
    ns = NameServer()
    ns.register(KernelSpec("k1", host="pc1"))
    ns.register(KernelSpec("k2", host="pc1"))
    assert ns.lookup("k1").host == "pc1"
    assert ns.kernels() == ["k1", "k2"]
    assert ns.kernels_on("pc1") == ["k1", "k2"]
    assert len(ns) == 2


def test_duplicate_name_conflicts():
    ns = NameServer()
    ns.register(KernelSpec("k1", host="pc1"))
    ns.register(KernelSpec("k1", host="pc1"))  # idempotent re-register
    with pytest.raises(ValueError, match="already registered"):
        ns.register(KernelSpec("k1", host="pc2"))


def test_unregister_removes_node():
    ns = NameServer()
    ns.register(KernelSpec("k1"))
    ns.unregister("k1")
    ns.unregister("k1")  # idempotent
    with pytest.raises(KeyError, match="no kernel named"):
        ns.lookup("k1")


def test_kernel_spec_validation():
    with pytest.raises(ValueError):
        KernelSpec("")


# ---------------------------------------------------------------------------
# cluster construction
# ---------------------------------------------------------------------------

def test_cluster_from_kernels_hosts():
    spec = cluster_from_kernels([
        KernelSpec("k1", host="pc1"),
        KernelSpec("k2", host="pc1"),
        KernelSpec("k3", host="pc2"),
    ])
    hosts = {n.name: n.host for n in spec.nodes}
    assert hosts == {"k1": "pc1", "k2": "pc1", "k3": "pc2"}


def test_cluster_from_kernels_empty():
    with pytest.raises(ValueError):
        cluster_from_kernels([])


# ---------------------------------------------------------------------------
# kernel environment
# ---------------------------------------------------------------------------

def test_debug_environment_runs_application():
    env = KernelEnvironment.debug(3)
    graph, *_ = build_uppercase_graph(
        env.mapping_for("kernel01"),
        env.mapping_for("kernel02", "kernel03"),
    )
    result = env.engine.run(graph, StringToken("debug kernels"))
    assert result.token.text == "DEBUG KERNELS"
    # inter-kernel traffic went over loopback, not the physical wire
    assert env.engine.cluster.network.loopback_messages > 0


def test_mapping_for_rejects_unknown_kernel():
    env = KernelEnvironment.debug(2)
    with pytest.raises(KeyError, match="no kernel"):
        env.mapping_for("kernel09")


def test_loopback_faster_than_wire_but_not_free():
    """Co-hosted kernels communicate via loopback: faster than the wire,
    slower than a same-kernel pointer pass (the debugging trade-off)."""
    def run_env(kernels):
        env = KernelEnvironment(kernels)
        graph, *_ = build_uppercase_graph(
            kernels[0].name, " ".join(k.name for k in kernels[1:])
        )
        return env.engine.run(graph, StringToken("x" * 64)).makespan

    two_hosts = run_env([KernelSpec("a", host="pc1"),
                         KernelSpec("b", host="pc2")])
    one_host = run_env([KernelSpec("a", host="pc"),
                        KernelSpec("b", host="pc")])
    same_kernel = run_env([KernelSpec("a", host="pc")]) if False else None
    assert one_host < two_hosts

    # a single kernel (pointer passes only) is faster still
    env = KernelEnvironment([KernelSpec("solo", host="pc")])
    graph, *_ = build_uppercase_graph("solo", "solo")
    solo = env.engine.run(graph, StringToken("x" * 64)).makespan
    assert solo < one_host


def test_debug_environment_enforces_serialization():
    """The debugging point of multiple kernels per host: tokens really
    cross the wire format between kernels."""
    env = KernelEnvironment.debug(2)
    assert env.engine.serialize_payloads  # wire-format round trips happen
    graph, *_ = build_uppercase_graph("kernel01", "kernel02")
    result = env.engine.run(graph, StringToken("serialize me"))
    assert result.token.text == "SERIALIZE ME"


def test_environment_validation():
    with pytest.raises(ValueError):
        KernelEnvironment.debug(0)
