"""Advanced engine tests: nesting, streams, graph calls, load balancing."""

import pytest

from repro.cluster import paper_cluster
from repro.core import (
    ConstantRoute,
    DpsThread,
    FlowControlPolicy,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    LoadBalancedRoute,
    MergeOperation,
    RoundRobinRoute,
    SplitOperation,
    StreamOperation,
    ThreadCollection,
    route_fn,
)
from repro.runtime import ScheduleError, SimEngine
from repro.serial import SimpleToken


class JobToken(SimpleToken):
    def __init__(self, n=0, tag=0):
        self.n = n
        self.tag = tag


class ItemToken(SimpleToken):
    def __init__(self, value=0, worker=-1):
        self.value = value
        self.worker = worker


class SumToken(SimpleToken):
    def __init__(self, total=0):
        self.total = total


class MainThread(DpsThread):
    pass


class WorkThread(DpsThread):
    pass


class FanOut(SplitOperation):
    in_types = (JobToken,)
    out_types = (ItemToken,)

    def execute(self, tok):
        for i in range(tok.n):
            self.post(ItemToken(i))


class Square(LeafOperation):
    in_types = (ItemToken,)
    out_types = (ItemToken,)

    def execute(self, tok):
        self.post(ItemToken(tok.value**2, self.thread.index))

    def cost(self, tok):
        return self.charge_seconds(0.01)


class SumUp(MergeOperation):
    in_types = (ItemToken,)
    out_types = (SumToken,)

    def execute(self, tok):
        total = 0
        while tok is not None:
            total += tok.value
            tok = yield self.next_token()
        yield self.post(SumToken(total))


def simple_graph(n_nodes=3, route=RoundRobinRoute, window=8):
    engine = SimEngine(paper_cluster(n_nodes),
                       policy=FlowControlPolicy(window=window))
    main = ThreadCollection(MainThread, "main").map("node01")
    worker_nodes = " ".join(f"node{i + 1:02d}" for i in range(1, n_nodes)) or "node01"
    workers = ThreadCollection(WorkThread, "work").map(worker_nodes)
    g = Flowgraph(
        FlowgraphNode(FanOut, main)
        >> FlowgraphNode(Square, workers, route)
        >> FlowgraphNode(SumUp, main),
        "sum-squares",
    )
    return engine, g


def test_sum_of_squares():
    engine, g = simple_graph()
    result = engine.run(g, JobToken(10))
    assert result.token.total == sum(i**2 for i in range(10))


def test_leaf_cost_charged_in_virtual_time():
    engine, g = simple_graph(n_nodes=2)
    result = engine.run(g, JobToken(20))
    # 20 squares at 10 ms each on one worker node with 2 cpus >= 100 ms.
    assert result.makespan >= 0.1
    # 0.2 s of op cost plus a little serialization CPU time
    assert 0.2 <= engine.cluster.node("node02").compute_time <= 0.22


def test_load_balanced_route_spreads_work():
    engine, g = simple_graph(n_nodes=4, route=LoadBalancedRoute, window=None)
    result = engine.run(g, JobToken(30))
    assert result.token.total == sum(i**2 for i in range(30))
    # all three worker nodes computed something
    for name in ("node02", "node03", "node04"):
        assert engine.cluster.node(name).compute_time > 0


# ---------------------------------------------------------------------------
# nested split-merge
# ---------------------------------------------------------------------------

class OuterSplit(SplitOperation):
    in_types = (JobToken,)
    out_types = (JobToken,)

    def execute(self, tok):
        for k in range(3):
            self.post(JobToken(4, tag=k))


class InnerSplit(SplitOperation):
    in_types = (JobToken,)
    out_types = (ItemToken,)

    def execute(self, tok):
        for i in range(tok.n):
            self.post(ItemToken(1, worker=tok.tag))


class InnerMerge(MergeOperation):
    in_types = (ItemToken,)
    out_types = (ItemToken,)

    def execute(self, tok):
        count = 0
        while tok is not None:
            count += tok.value
            tok = yield self.next_token()
        yield self.post(ItemToken(count))


class OuterMerge(MergeOperation):
    in_types = (ItemToken,)
    out_types = (SumToken,)

    def execute(self, tok):
        total = 0
        while tok is not None:
            total += tok.value
            tok = yield self.next_token()
        yield self.post(SumToken(total))


def test_nested_split_merge_runs():
    engine = SimEngine(paper_cluster(3))
    main = ThreadCollection(MainThread, "main").map("node01")
    mids = ThreadCollection(WorkThread, "mid").map("node02 node03")
    # The inner merge routes by the inner job tag, so all tokens of one
    # inner group land on the same thread (the DPS routing contract).
    ByTag = route_fn("ByTag", lambda tok, n: tok.worker % n)
    g = Flowgraph(
        FlowgraphNode(OuterSplit, main)
        >> FlowgraphNode(InnerSplit, mids, RoundRobinRoute)
        >> FlowgraphNode(InnerMerge, mids, ByTag)
        >> FlowgraphNode(OuterMerge, main),
        "nested",
    )
    result = engine.run(g, JobToken(0))
    assert result.token.total == 3 * 4


# ---------------------------------------------------------------------------
# stream operations
# ---------------------------------------------------------------------------

class StreamDouble(StreamOperation):
    """Forward each item immediately, doubled — pipelining preserved."""

    in_types = (ItemToken,)
    out_types = (ItemToken,)

    def execute(self, tok):
        while tok is not None:
            yield self.post(ItemToken(tok.value * 2))
            tok = yield self.next_token()


def test_stream_operation_values():
    engine = SimEngine(paper_cluster(3))
    main = ThreadCollection(MainThread, "main").map("node01")
    workers = ThreadCollection(WorkThread, "work").map("node02 node03")
    g = Flowgraph(
        FlowgraphNode(FanOut, main)
        >> FlowgraphNode(StreamDouble, workers, ConstantRoute)
        >> FlowgraphNode(SumUp, main),
        "streamed",
    )
    result = engine.run(g, JobToken(8))
    assert result.token.total == 2 * sum(range(8))


class SlowCollectAndForward(StreamOperation):
    """Stream variant: forward as received (no barrier)."""

    in_types = (ItemToken,)
    out_types = (ItemToken,)

    def execute(self, tok):
        while tok is not None:
            yield self.post(ItemToken(tok.value))
            tok = yield self.next_token()


class BarrierCollect(MergeOperation):
    """Merge variant: forward only after the whole group arrived."""

    in_types = (ItemToken,)
    out_types = (JobToken,)

    def execute(self, tok):
        values = []
        while tok is not None:
            values.append(tok.value)
            tok = yield self.next_token()
        yield self.post(JobToken(len(values)))


class ReSplit(SplitOperation):
    in_types = (JobToken,)
    out_types = (ItemToken,)

    def execute(self, tok):
        for _ in range(tok.n):
            self.post(ItemToken(1))


class SlowSink(MergeOperation):
    in_types = (ItemToken,)
    out_types = (SumToken,)

    def execute(self, tok):
        total = 0
        while tok is not None:
            yield self.charge_seconds(0.05)  # downstream processing
            total += tok.value
            tok = yield self.next_token()
        yield self.post(SumToken(total))


class SlowSource(SplitOperation):
    in_types = (JobToken,)
    out_types = (ItemToken,)

    def execute(self, tok):
        for _ in range(tok.n):
            yield self.charge_seconds(0.05)  # upstream production
            yield self.post(ItemToken(1))


def _pipeline_time(use_stream: bool) -> float:
    """split(slow) >> [stream | merge>>split] >> merge(slow).

    Source and sink live on *different* DPS threads (a and c) so they can
    overlap; sharing one thread would serialize them regardless.
    """
    engine = SimEngine(paper_cluster(2), policy=FlowControlPolicy(window=None))
    a = ThreadCollection(MainThread, "a").map("node01")
    b = ThreadCollection(WorkThread, "b").map("node02")
    c = ThreadCollection(MainThread, "c").map("node01")
    src = FlowgraphNode(SlowSource, a)
    sink = FlowgraphNode(SlowSink, c)
    if use_stream:
        mid = FlowgraphNode(SlowCollectAndForward, b)
        g = Flowgraph(src >> mid >> sink, "with-stream")
    else:
        m = FlowgraphNode(BarrierCollect, b)
        s = FlowgraphNode(ReSplit, b)
        g = Flowgraph(src >> m >> s >> sink, "with-barrier")
    engine.register_graph(g)
    engine.prelaunch()  # steady state: exclude lazy-launch delays
    result = engine.run(g, JobToken(10))
    assert result.token.total == 10
    return result.makespan


def test_stream_pipelines_faster_than_merge_split_barrier():
    """The core claim of the stream construct (paper §3): replacing a
    merge+split barrier with a stream keeps the pipeline full."""
    t_stream = _pipeline_time(use_stream=True)
    t_barrier = _pipeline_time(use_stream=False)
    assert t_stream < t_barrier
    # Upstream and downstream 0.05 s stages overlap almost fully with the
    # stream; with the barrier they serialize: expect a gap of roughly 2x.
    assert t_barrier / t_stream > 1.5


# ---------------------------------------------------------------------------
# graph calls (parallel services)
# ---------------------------------------------------------------------------

class AskService(LeafOperation):
    in_types = (JobToken,)
    out_types = (SumToken,)

    def execute(self, tok):
        result = yield self.call_graph("sum-squares", JobToken(tok.n))
        yield self.post(SumToken(result.total))


def test_graph_call_as_leaf_operation():
    engine, service_graph = simple_graph(n_nodes=3)
    engine.register_graph(service_graph)
    client_main = ThreadCollection(MainThread, "client").map("node01")
    client_graph = Flowgraph(
        FlowgraphNode(AskService, client_main).as_builder(), "client"
    )
    result = engine.run(client_graph, JobToken(6))
    assert result.token.total == sum(i * i for i in range(6))


# ---------------------------------------------------------------------------
# error paths
# ---------------------------------------------------------------------------

class BadEarlyReturnMerge(MergeOperation):
    in_types = (ItemToken,)
    out_types = (SumToken,)

    def execute(self, tok):
        yield self.post(SumToken(0))  # returns without draining the group


def test_merge_early_return_detected():
    engine = SimEngine(paper_cluster(2))
    main = ThreadCollection(MainThread, "main").map("node01")
    work = ThreadCollection(WorkThread, "w").map("node02")
    g = Flowgraph(
        FlowgraphNode(FanOut, main)
        >> FlowgraphNode(Square, work, ConstantRoute)
        >> FlowgraphNode(BadEarlyReturnMerge, main),
        "bad-merge",
    )
    with pytest.raises(ScheduleError, match="before consuming"):
        engine.run(g, JobToken(5))


class PlainBodyMerge(MergeOperation):
    in_types = (ItemToken,)
    out_types = (SumToken,)

    def execute(self, tok):
        self.post(SumToken(0))


def test_merge_with_plain_body_rejected():
    engine = SimEngine(paper_cluster(2))
    main = ThreadCollection(MainThread, "main").map("node01")
    work = ThreadCollection(WorkThread, "w").map("node02")
    g = Flowgraph(
        FlowgraphNode(FanOut, main)
        >> FlowgraphNode(Square, work, ConstantRoute)
        >> FlowgraphNode(PlainBodyMerge, main),
        "plain-merge",
    )
    with pytest.raises(ScheduleError, match="must be a generator"):
        engine.run(g, JobToken(3))


class WrongTypePoster(LeafOperation):
    in_types = (ItemToken,)
    out_types = (ItemToken,)

    def execute(self, tok):
        self.post(SumToken(1))  # not declared


def test_undeclared_post_type_rejected():
    engine = SimEngine(paper_cluster(2))
    main = ThreadCollection(MainThread, "main").map("node01")
    work = ThreadCollection(WorkThread, "w").map("node02")
    g = Flowgraph(
        FlowgraphNode(FanOut, main)
        >> FlowgraphNode(WrongTypePoster, work, ConstantRoute)
        >> FlowgraphNode(SumUp, main),
        "bad-poster",
    )
    with pytest.raises(ScheduleError, match="declares out_types"):
        engine.run(g, JobToken(2))


class InconsistentRoute(ConstantRoute):
    """Routes tokens of one group to different instances (user bug)."""

    def route(self, token):
        return token.value % 2


def test_group_split_across_merge_instances_detected():
    engine = SimEngine(paper_cluster(3))
    main = ThreadCollection(MainThread, "main").map("node01")
    work = ThreadCollection(WorkThread, "w").map("node02")
    sinks = ThreadCollection(MainThread, "sinks").map("node01 node03")
    g = Flowgraph(
        FlowgraphNode(FanOut, main)
        >> FlowgraphNode(Square, work, ConstantRoute)
        >> FlowgraphNode(SumUp, sinks, InconsistentRoute),
        "split-brain",
    )
    with pytest.raises(ScheduleError, match="multiple merge instances|did not complete"):
        engine.run(g, JobToken(6))
