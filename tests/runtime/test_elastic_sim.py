"""Elastic membership on the simulated engine: join, retire, rebalance.

The sim engine models the same membership verbs the multiprocess engine
exposes — ``add_kernel`` / ``retire_kernel`` / ``members`` — but in
virtual time, so these tests pin the *semantics* deterministically:
placements spread onto joiners, drain off retirees, results stay
bit-identical, and the RunResult rebalance counters are truthful.
"""

import numpy as np
import pytest

from repro.apps.gameoflife import DistributedGameOfLife, life_step
from repro.apps.strings import StringToken, build_uppercase_graph
from repro.cluster import paper_cluster
from repro.runtime import RoutingPolicy, ScheduleError, SimEngine
from repro.trace import Tracer


def _stacked_engine():
    """Two uppercase workers stacked on one node: the shape where a
    joiner actually takes work (minimal-move keeps balanced spreads
    in place)."""
    engine = SimEngine(paper_cluster(2), tracer=Tracer())
    graph, main, workers = build_uppercase_graph("node01", "node02 node02")
    engine.register_graph(graph)
    return engine, graph, workers


def test_members_reflect_cluster():
    engine = SimEngine(paper_cluster(3))
    assert engine.members() == ("node01", "node02", "node03")


def test_join_spreads_stacked_placements():
    engine, graph, workers = _stacked_engine()
    r1 = engine.run(graph, StringToken("before"))
    assert r1.token.text == "BEFORE"
    assert r1.rebalances == 0 and r1.tokens_moved == 0

    name = engine.add_kernel()
    assert name == "node03"
    assert engine.members() == ("node01", "node02", "node03")
    # one of the two stacked workers moved onto the joiner
    assert sorted(workers.placements) == ["node02", "node03"]

    r2 = engine.run(graph, StringToken("after"))
    assert r2.token.text == "AFTER"
    assert r2.rebalances == 1
    assert r2.tokens_moved == 1
    fired_on = {e.node for e in engine.tracer.filter("token_recv")
                if e.op == "ToUpperCase"}
    assert "node03" in fired_on


def test_retire_drains_node():
    engine, graph, workers = _stacked_engine()
    engine.run(graph, StringToken("x"))
    engine.add_kernel()

    moved = engine.retire_kernel("node03")
    assert moved == 1
    assert engine.members() == ("node01", "node02")
    assert "node03" not in workers.placements

    r = engine.run(graph, StringToken("done"))
    assert r.token.text == "DONE"
    assert r.rebalances == 2
    assert r.tokens_moved == 2


def test_retired_node_can_rejoin():
    """Retire then re-admit: the machine stays in the cluster model."""
    engine, graph, workers = _stacked_engine()
    engine.run(graph, StringToken("x"))
    engine.add_kernel("node03")
    engine.retire_kernel("node03")
    engine.add_kernel("node03")
    assert engine.members() == ("node01", "node02", "node03")
    # the workers settled one-per-node after the retire; minimal-move
    # rightly leaves a balanced spread alone on re-join
    assert len(set(workers.placements)) == 2
    assert engine.run(graph, StringToken("again")).token.text == "AGAIN"


def test_membership_errors():
    engine = SimEngine(paper_cluster(2))
    with pytest.raises(ScheduleError, match="already a member"):
        engine.add_kernel("node02")
    with pytest.raises(ScheduleError, match="not a member"):
        engine.retire_kernel("node09")
    engine.retire_kernel("node02")
    with pytest.raises(ScheduleError, match="last member"):
        engine.retire_kernel("node01")


def test_gol_scale_up_down_is_bit_identical():
    """Scale 2 -> 3 -> 2 mid-computation; the world must match the
    single-process reference bit for bit."""
    world = (np.random.RandomState(11).rand(24, 16) < 0.4).astype(np.uint8)
    ref = world
    for _ in range(6):
        ref = life_step(ref)

    engine = SimEngine(paper_cluster(4))
    gol = DistributedGameOfLife(engine, world, ["node01", "node02"])
    gol.load()
    for _ in range(2):
        gol.step(improved=True)
    engine.add_kernel()  # node05
    for _ in range(2):
        gol.step(improved=True)
    engine.retire_kernel("node05")
    for _ in range(2):
        gol.step(improved=True)
    assert np.array_equal(gol.gather(), ref)


def test_routing_policy_is_deterministic_in_sim():
    """Same graph + cluster + policy twice => identical virtual makespan
    (adaptive routing must not leak wall-clock nondeterminism)."""
    def run_once():
        engine = SimEngine(paper_cluster(3),
                           routing=RoutingPolicy(kind="queue_depth"))
        graph, main, workers = build_uppercase_graph(
            "node01", "node02 node03")
        result = engine.run(graph, StringToken("determinism"))
        return result.token.text, result.makespan

    assert run_once() == run_once()
