"""Tests for the real-thread engine: same programming model, real blocking."""

import threading

import pytest

from repro.apps.strings import StringToken, build_uppercase_graph
from repro.core import (
    ConstantRoute,
    DpsThread,
    FlowControlPolicy,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    MergeOperation,
    RoundRobinRoute,
    SplitOperation,
    StreamOperation,
    ThreadCollection,
)
from repro.runtime import ScheduleError
from repro.runtime.threaded_engine import ThreadedEngine
from repro.serial import SimpleToken


class TJob(SimpleToken):
    def __init__(self, n=0):
        self.n = n


class TItem(SimpleToken):
    def __init__(self, value=0):
        self.value = value


class TSum(SimpleToken):
    def __init__(self, total=0):
        self.total = total


class TMain(DpsThread):
    pass


class TWork(DpsThread):
    def __init__(self):
        self.seen = 0


class TFan(SplitOperation):
    in_types = (TJob,)
    out_types = (TItem,)

    def execute(self, tok):
        for i in range(tok.n):
            self.post(TItem(i))


class TSquare(LeafOperation):
    in_types = (TItem,)
    out_types = (TItem,)

    def execute(self, tok):
        self.thread.seen += 1
        self.post(TItem(tok.value**2))


class TCollect(MergeOperation):
    in_types = (TItem,)
    out_types = (TSum,)

    def execute(self, tok):
        total = 0
        while tok is not None:
            total += tok.value
            tok = yield self.next_token()
        yield self.post(TSum(total))


def build(n_workers=3, window=8):
    engine = ThreadedEngine(policy=FlowControlPolicy(window=window))
    main = ThreadCollection(TMain, "tmain").map("hostA")
    workers = ThreadCollection(TWork, "twork").map(
        " ".join(f"host{c}" for c in "BCD"[:n_workers])
    )
    g = Flowgraph(
        FlowgraphNode(TFan, main)
        >> FlowgraphNode(TSquare, workers, RoundRobinRoute)
        >> FlowgraphNode(TCollect, main),
        "tsum",
    )
    return engine, g


def test_uppercase_on_real_threads():
    with ThreadedEngine() as engine:
        graph, *_ = build_uppercase_graph("hostA", "hostB hostC")
        result = engine.run(graph, StringToken("threaded engine"))
        assert result.text == "THREADED ENGINE"


def test_sum_of_squares_threaded():
    engine, g = build()
    with engine:
        result = engine.run(g, TJob(25))
        assert result.total == sum(i * i for i in range(25))


def test_sequential_runs_and_thread_state_persist():
    engine, g = build(n_workers=1)
    with engine:
        engine.run(g, TJob(4))
        engine.run(g, TJob(4))
        worker = next(
            w for w in engine._workers.values() if isinstance(w.thread_obj, TWork)
        )
        # thread-local state persists across runs (distributed data idiom)
        assert worker.thread_obj.seen == 8


def test_flow_control_window_one_completes():
    engine, g = build(window=1)
    with engine:
        result = engine.run(g, TJob(10))
        assert result.total == sum(i * i for i in range(10))


def test_concurrent_runs_from_multiple_client_threads():
    engine, g = build(window=None)
    results = {}

    def client(n):
        results[n] = engine.run(g, TJob(n)).total

    with engine:
        threads = [threading.Thread(target=client, args=(n,)) for n in (5, 8, 13)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
    for n, total in results.items():
        assert total == sum(i * i for i in range(n))


def test_stream_operation_threaded():
    class TStream(StreamOperation):
        in_types = (TItem,)
        out_types = (TItem,)

        def execute(self, tok):
            while tok is not None:
                yield self.post(TItem(tok.value + 1))
                tok = yield self.next_token()

    engine = ThreadedEngine()
    main = ThreadCollection(TMain, "smain").map("hostA")
    mid = ThreadCollection(TWork, "smid").map("hostB")
    g = Flowgraph(
        FlowgraphNode(TFan, main)
        >> FlowgraphNode(TStream, mid, ConstantRoute)
        >> FlowgraphNode(TCollect, main),
        "tstream",
    )
    with engine:
        result = engine.run(g, TJob(6))
        assert result.total == sum(i + 1 for i in range(6))


def test_graph_call_between_graphs_threaded():
    class TAsk(LeafOperation):
        in_types = (TJob,)
        out_types = (TSum,)

        def execute(self, tok):
            res = yield self.call_graph("tsum", TJob(tok.n))
            yield self.post(TSum(res.total))

    engine, service = build()
    with engine:
        engine.register_graph(service)
        client_main = ThreadCollection(TMain, "tclient").map("hostA")
        client = Flowgraph(FlowgraphNode(TAsk, client_main).as_builder(), "tclient")
        result = engine.run(client, TJob(7))
        assert result.total == sum(i * i for i in range(7))


def test_worker_exception_propagates_to_caller():
    class TBoom(LeafOperation):
        in_types = (TItem,)
        out_types = (TItem,)

        def execute(self, tok):
            raise ValueError("kaboom")

    engine = ThreadedEngine()
    main = ThreadCollection(TMain, "bmain").map("hostA")
    work = ThreadCollection(TWork, "bwork").map("hostB")
    g = Flowgraph(
        FlowgraphNode(TFan, main)
        >> FlowgraphNode(TBoom, work, ConstantRoute)
        >> FlowgraphNode(TCollect, main),
        "tboom",
    )
    with engine:
        with pytest.raises(ValueError, match="kaboom"):
            engine.run(g, TJob(3), timeout=10)


def test_tokens_serialized_across_logical_nodes():
    """Crossing hostA→hostB must round-trip the wire format, so the
    receiver gets a *copy*, not the producer's object (paper's debugging
    kernels behaviour)."""
    captured = []

    class TCapture(LeafOperation):
        in_types = (TItem,)
        out_types = (TItem,)

        def execute(self, tok):
            captured.append(tok)
            self.post(TItem(tok.value))

    engine = ThreadedEngine()
    main = ThreadCollection(TMain, "cmain").map("hostA")
    work = ThreadCollection(TWork, "cwork").map("hostB")
    g = Flowgraph(
        FlowgraphNode(TFan, main)
        >> FlowgraphNode(TCapture, work, ConstantRoute)
        >> FlowgraphNode(TCollect, main),
        "tcapture",
    )
    sent = TJob(1)
    with engine:
        engine.run(g, sent)
    assert len(captured) == 1
    assert captured[0] is not sent


def test_shutdown_is_idempotent():
    engine, g = build()
    engine.run(g, TJob(2))
    engine.shutdown()
    engine.shutdown()


def test_failed_engine_fails_fast_on_next_run():
    """After a worker dies, subsequent run() calls must raise immediately
    instead of hanging until the timeout (satellite of the multiprocess
    dead-kernel path)."""
    class TBoom2(LeafOperation):
        in_types = (TItem,)
        out_types = (TItem,)

        def execute(self, tok):
            raise ValueError("first failure")

    engine = ThreadedEngine()
    main = ThreadCollection(TMain, "ffmain").map("hostA")
    work = ThreadCollection(TWork, "ffwork").map("hostB")
    g = Flowgraph(
        FlowgraphNode(TFan, main)
        >> FlowgraphNode(TBoom2, work, ConstantRoute)
        >> FlowgraphNode(TCollect, main),
        "tfailfast",
    )
    with engine:
        with pytest.raises(ValueError, match="first failure"):
            engine.run(g, TJob(2), timeout=10)
        import time
        t0 = time.monotonic()
        with pytest.raises(ScheduleError, match="engine has failed"):
            engine.run(g, TJob(2), timeout=30)
        # fail-fast: no waiting on the 30s timeout
        assert time.monotonic() - t0 < 5
