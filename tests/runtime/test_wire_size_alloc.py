"""The engine's wire-size cost model must never materialize payloads.

``SimEngine._wire_size`` prices a token for the network model.  With the
size-only ``measure`` visitor it is pure arithmetic: sizing a token that
carries a multi-megabyte Buffer must allocate O(1) bytes, not a copy of
the payload.
"""

import tracemalloc

import numpy as np

from repro.cluster import paper_cluster
from repro.runtime.sim_engine import SimEngine
from repro.serial import Buffer, ComplexToken

PAYLOAD_BYTES = 4 * 1024 * 1024  # 4 MB
ALLOC_CEILING = 16 * 1024        # "O(1)" budget, generous vs. 4 MB


class BigPayloadToken(ComplexToken):
    def __init__(self, block=None):
        self.block = Buffer(block if block is not None else [])


def _traced_wire_size(engine, tok):
    engine._wire_size(tok)  # warm caches (registry name bytes, interning)
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        nbytes = engine._wire_size(tok)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return nbytes, peak - before


def test_wire_size_allocates_o1_for_large_buffer():
    engine = SimEngine(paper_cluster(2))
    tok = BigPayloadToken(np.zeros(PAYLOAD_BYTES // 8, dtype=np.float64))
    nbytes, allocated = _traced_wire_size(engine, tok)
    assert nbytes > PAYLOAD_BYTES  # prices the full payload ...
    assert allocated < ALLOC_CEILING  # ... without materializing it


def test_wire_size_o1_without_serialization():
    engine = SimEngine(paper_cluster(2), serialize_payloads=False)
    tok = BigPayloadToken(np.zeros(PAYLOAD_BYTES // 8, dtype=np.float64))
    nbytes, allocated = _traced_wire_size(engine, tok)
    assert nbytes >= PAYLOAD_BYTES
    assert allocated < ALLOC_CEILING
