"""create_engine(): uniform options, helpful rejection of the rest."""

import pytest

from repro.core import FlowControlPolicy
from repro.net import TransportPolicy
from repro.net.recovery import FaultPolicy
from repro.runtime import (
    MultiprocessEngine,
    SimEngine,
    ThreadedEngine,
    create_engine,
)


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown engine kind"):
        create_engine("cloud")


def test_common_options_accepted_by_every_kind():
    policy = FlowControlPolicy(window=2)
    for kind, cls in (("sim", SimEngine), ("threaded", ThreadedEngine),
                      ("multiprocess", MultiprocessEngine)):
        engine = create_engine(kind, policy=policy, nodes=3,
                               transport=None, faults=None)
        assert isinstance(engine, cls)
        assert engine.policy.window == 2
        engine.shutdown()


def test_unknown_option_names_owning_engines():
    with pytest.raises(ValueError) as exc:
        create_engine("threaded", recover=True)
    # The message teaches where the option belongs...
    assert "'recover' is a multiprocess option" in str(exc.value)
    # ...and lists what this kind does accept.
    assert "serialize_transfers" in str(exc.value)


def test_option_that_no_engine_accepts():
    with pytest.raises(ValueError, match="'retries' is not an engine option"):
        create_engine("sim", retries=3)


def test_non_none_transport_rejected_outside_multiprocess():
    with pytest.raises(ValueError, match="only honoured by the multiprocess"):
        create_engine("sim", transport=TransportPolicy())
    with pytest.raises(ValueError, match="no wire"):
        create_engine("threaded", transport=TransportPolicy())


def test_non_none_faults_rejected_outside_multiprocess():
    faults = FaultPolicy(drop_rate=0.1)
    with pytest.raises(ValueError, match="no kernel processes"):
        create_engine("threaded", faults=faults)


def test_multiprocess_accepts_recovery_options():
    engine = create_engine("multiprocess", recover=True,
                           faults=FaultPolicy(delay_ms=1.0),
                           heartbeat_interval=0.5, heartbeat_miss_limit=2)
    try:
        assert engine.recover is True
        assert engine.faults.delay_ms == 1.0
        assert engine.heartbeat_interval == 0.5
    finally:
        engine.shutdown()


def test_sim_specific_options_still_work():
    engine = create_engine("sim", nodes=2, serialize_payloads=False)
    assert len(engine.cluster.node_names) == 2


def test_routing_is_a_common_option():
    from repro.runtime import RoutingPolicy
    for kind in ("sim", "threaded", "multiprocess"):
        engine = create_engine(kind, routing=RoutingPolicy(
            kind="queue_depth"))
        try:
            assert engine.routing.adaptive is True
        finally:
            engine.shutdown()


def test_scaling_is_multiprocess_only():
    from repro.runtime import ScalingPolicy
    with pytest.raises(ValueError) as exc:
        create_engine("sim", scaling=ScalingPolicy())
    assert "'scaling' is a multiprocess option" in str(exc.value)
    engine = create_engine("multiprocess",
                           scaling=ScalingPolicy(max_kernels=3))
    try:
        assert engine.scaling.max_kernels == 3
    finally:
        engine.shutdown()


def test_routing_defaults_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_ROUTING", "queue_depth")
    engine = create_engine("sim")
    assert engine.routing.adaptive is True
    monkeypatch.delenv("REPRO_ROUTING")
    engine = create_engine("sim")
    assert engine.routing.adaptive is False


def test_scaling_defaults_from_env(monkeypatch):
    """The autoscaler only arms itself when REPRO_SCALING_* is present —
    an unconfigured engine must not fork kernels on its own."""
    engine = create_engine("multiprocess")
    try:
        assert engine.scaling is None
    finally:
        engine.shutdown()
    monkeypatch.setenv("REPRO_SCALING_MAX", "4")
    engine = create_engine("multiprocess")
    try:
        assert engine.scaling is not None
        assert engine.scaling.max_kernels == 4
    finally:
        engine.shutdown()
