"""Unit tests for the tracer and timeline reports."""

from repro.apps.strings import StringToken, build_uppercase_graph
from repro.cluster import paper_cluster
from repro.runtime import SimEngine
from repro.trace import Tracer, activity_timeline, message_summary, op_summary


def traced_run():
    tracer = Tracer()
    engine = SimEngine(paper_cluster(3), tracer=tracer)
    graph, *_ = build_uppercase_graph("node01", "node02 node03")
    engine.run(graph, StringToken("trace me please"))
    return tracer


def test_tracer_records_events():
    tracer = traced_run()
    assert len(tracer) > 0
    assert tracer.count("activation_start") == 1
    assert tracer.count("activation_done") == 1
    assert tracer.count("token_recv") >= 15  # one per char plus split/merge
    assert tracer.count("token_send") > 0


def test_tracer_filter_and_span():
    tracer = traced_run()
    ops = tracer.filter("token_recv")
    assert all(ev.kind == "token_recv" for ev in ops)
    merges = tracer.filter("token_recv", predicate=lambda e: e.op == "MergeString")
    assert len(merges) >= 1
    start, end = tracer.span()
    assert 0 <= start <= end


def test_tracer_attribute_access():
    tracer = traced_run()
    ev = tracer.filter("token_send")[0]
    assert ev.nbytes > 0
    assert isinstance(ev.src, str)


def test_tracer_capacity_bound():
    tracer = Tracer(capacity=5)
    for i in range(12):
        tracer.emit(float(i), "x", i=i)
    assert len(tracer) == 5
    assert tracer.dropped == 7
    assert tracer.events[0].fields["i"] == 7


def test_activity_timeline_renders():
    tracer = traced_run()
    text = activity_timeline(tracer, width=40)
    assert "node01" in text
    assert "|" in text
    assert "timeline" in text


def test_op_summary_renders():
    tracer = traced_run()
    text = op_summary(tracer)
    assert "ToUpperCase" in text
    assert "MergeString" in text


def test_message_summary_renders():
    tracer = traced_run()
    text = message_summary(tracer)
    assert "node01" in text
    assert "bytes" in text


def test_empty_trace_reports():
    empty = Tracer()
    assert "no op events" in activity_timeline(empty)
    assert "no op events" in op_summary(empty)
    assert "no messages" in message_summary(empty)


def test_clear():
    tracer = traced_run()
    tracer.clear()
    assert len(tracer) == 0


def test_op_durations_report():
    from repro.trace import op_durations

    tracer = traced_run()
    text = op_durations(tracer)
    assert "MergeString" in text
    assert "bodies" in text and "mean [ms]" in text


def test_op_end_events_have_durations():
    tracer = traced_run()
    dones = tracer.filter("op_end")
    assert dones, "op_end events should be traced"
    assert all(ev.duration >= 0 for ev in dones)
    merge = [ev for ev in dones if ev.op == "MergeString"]
    split = [ev for ev in dones if ev.op == "SplitString"]
    assert merge and split
    # the merge spans the whole gather phase: longer than the split body
    assert merge[0].duration > split[0].duration


def test_utilization_report():
    from repro.cluster import paper_cluster
    from repro.runtime import SimEngine
    from repro.trace import utilization_report
    from repro.apps.strings import StringToken, build_uppercase_graph

    engine = SimEngine(paper_cluster(2))
    assert "no virtual time" in utilization_report(engine)
    graph, *_ = build_uppercase_graph("node01", "node02")
    engine.run(graph, StringToken("measure me"))
    text = utilization_report(engine)
    assert "node01" in text and "node02" in text
    assert "nic tx" in text and "%" in text
