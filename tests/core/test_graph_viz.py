"""Tests for the flow-graph visualization helpers."""

from repro.apps.strings import build_uppercase_graph
from repro.apps.video import (
    VideoFinalMerge,
    VideoProcessFrame,
    VideoReadPart,
    VideoRecomposeStream,
    VideoSplitRequests,
    VideoDiskThread,
    VideoMainThread,
    VideoProcThread,
)
from repro.core import ConstantRoute, Flowgraph, FlowgraphNode, ThreadCollection


def stream_graph():
    main = ThreadCollection(VideoMainThread, "vmain").map("n1")
    disks = ThreadCollection(VideoDiskThread, "vdisks").map("n2")
    procs = ThreadCollection(VideoProcThread, "vprocs").map("n3")
    return Flowgraph(
        FlowgraphNode(VideoSplitRequests, main)
        >> FlowgraphNode(VideoReadPart, disks, ConstantRoute)
        >> FlowgraphNode(VideoRecomposeStream, main)
        >> FlowgraphNode(VideoProcessFrame, procs, ConstantRoute)
        >> FlowgraphNode(VideoFinalMerge, main),
        "viz-video",
    )


def test_to_dot_structure():
    graph, *_ = build_uppercase_graph("n1", "n2")
    dot = graph.to_dot()
    assert dot.startswith('digraph "uppercase"')
    assert dot.rstrip().endswith("}")
    assert "SplitString" in dot and "MergeString" in dot
    assert "trapezium" in dot          # split shape
    assert "invtrapezium" in dot       # merge shape
    assert "n0 -> n1;" in dot and "n1 -> n2;" in dot
    assert dot.count("->") == 2


def test_to_dot_stream_shape():
    dot = stream_graph().to_dot()
    assert "hexagon" in dot            # stream op
    assert dot.count("->") == 4


def test_describe_lists_all_ops_and_groups():
    graph, *_ = build_uppercase_graph("n1", "n2")
    text = graph.describe()
    assert "flow graph 'uppercase'" in text
    assert "[split ]" in text and "[leaf  ]" in text and "[merge ]" in text
    assert "entry=SplitString" in text
    assert "exit=MergeString" in text
    assert "group: SplitString ... closed by MergeString" in text


def test_describe_shows_nesting_depth():
    text = stream_graph().describe()
    # ops inside the split-merge construct are indented one level
    assert "[stream]" in text
    assert "group: VideoSplitRequests ... closed by VideoRecomposeStream" in text
    assert "group: VideoRecomposeStream ... closed by VideoFinalMerge" in text
