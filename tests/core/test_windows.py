"""Unit tests for watermarks and windowed aggregation (DESIGN §5i).

Everything here is engine-free: the properties that make windowed
streaming results bit-identical across engines (order-independence of
the watermark and the accumulator checksum) are checked directly.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.windows import (
    CHECKSUM_MOD,
    Watermark,
    WindowAccumulator,
    WindowSpec,
    checksum_mix,
)


# ---------------------------------------------------------------------------
# WindowSpec geometry
# ---------------------------------------------------------------------------

def test_spec_validation():
    with pytest.raises(ValueError, match="size"):
        WindowSpec(0)
    with pytest.raises(ValueError, match="slide"):
        WindowSpec(4, slide=0)
    with pytest.raises(ValueError, match="slide"):
        WindowSpec(4, slide=5)  # gapped sampling would orphan sequences
    assert WindowSpec(4).tumbling
    assert WindowSpec(4, slide=4).tumbling
    assert not WindowSpec(4, slide=2).tumbling


def test_tumbling_bounds_and_membership():
    spec = WindowSpec(4)
    assert spec.bounds(0) == (0, 4)
    assert spec.bounds(3) == (12, 16)
    for seq in range(32):
        assert spec.windows_of(seq) == (seq // 4,)


def test_sliding_membership_covers_every_sequence():
    spec = WindowSpec(6, slide=2)
    for seq in range(40):
        wids = spec.windows_of(seq)
        # every covering window really covers it, ascending, no gaps
        assert list(wids) == sorted(wids)
        for wid in wids:
            start, end = spec.bounds(wid)
            assert start <= seq < end
        # and no non-listed window covers it
        for wid in range(0, max(wids) + 3):
            start, end = spec.bounds(wid)
            assert (start <= seq < end) == (wid in wids)


def test_windows_of_rejects_negative():
    with pytest.raises(ValueError, match="0-based"):
        WindowSpec(4).windows_of(-1)


# ---------------------------------------------------------------------------
# Watermark: pure function of the observed *set*
# ---------------------------------------------------------------------------

def test_watermark_in_order():
    wm = Watermark()
    assert wm.value == -1
    for seq in range(5):
        assert wm.observe(seq) == seq
    assert not wm.seen(5)
    assert wm.seen(3)


def test_watermark_out_of_order_and_duplicates():
    wm = Watermark()
    wm.observe(2)
    wm.observe(0)
    assert wm.value == 0  # 1 is still missing
    wm.observe(2)  # duplicate: no effect
    assert wm.value == 0
    wm.observe(1)
    assert wm.value == 2  # hole filled, frontier drained


@settings(deadline=None, max_examples=30)
@given(st.permutations(list(range(12))))
def test_watermark_is_order_independent(order):
    wm = Watermark()
    for seq in order:
        wm.observe(seq)
    assert wm.value == 11
    assert not wm._frontier  # fully contiguous: nothing held back


# ---------------------------------------------------------------------------
# WindowAccumulator: commutative fold
# ---------------------------------------------------------------------------

def test_accumulator_order_independent():
    items = [(seq, seq * 977 + 13) for seq in range(16)]
    reference = WindowAccumulator()
    for seq, value in items:
        reference.add(seq, value)

    rng = random.Random(42)
    for _ in range(5):
        shuffled = items[:]
        rng.shuffle(shuffled)
        acc = WindowAccumulator()
        for seq, value in shuffled:
            acc.add(seq, value)
        assert acc.checksum == reference.checksum
        assert acc.count == reference.count
        assert (acc.lo, acc.hi) == (0, 15)


def test_checksum_mix_is_deterministic_and_bounded():
    assert checksum_mix(3, 7) == checksum_mix(3, 7)
    assert checksum_mix(3, 7) != checksum_mix(7, 3)  # seq and value differ
    assert 0 <= checksum_mix(10**9, 10**18) < CHECKSUM_MOD
    # value is reduced mod the Mersenne prime before mixing
    assert checksum_mix(1, 5) == checksum_mix(1, 5 + CHECKSUM_MOD)
