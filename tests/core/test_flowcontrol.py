"""Unit tests for the split-merge flow-control window bookkeeping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FlowControlPolicy, SplitWindow


def test_policy_validation():
    assert FlowControlPolicy().window == 8
    assert FlowControlPolicy(window=None).window is None
    with pytest.raises(ValueError):
        FlowControlPolicy(window=0)


def test_window_gates_sends():
    w = SplitWindow(2)
    assert w.can_send
    w.on_post(0)
    assert w.can_send
    w.on_post(1)
    assert not w.can_send
    w.on_ack(0)
    assert w.can_send


def test_window_one_is_lockstep():
    w = SplitWindow(1)
    w.on_post(0)
    assert not w.can_send
    w.on_ack(0)
    assert w.can_send


def test_unbounded_window():
    w = SplitWindow(None)
    for i in range(1000):
        w.on_post(i % 3)
    assert w.can_send
    assert w.in_flight == 1000


def test_post_while_full_is_programming_error():
    w = SplitWindow(1)
    w.on_post(0)
    with pytest.raises(RuntimeError, match="window full"):
        w.on_post(0)


def test_ack_more_than_in_flight_rejected():
    w = SplitWindow(4)
    w.on_post(0)
    with pytest.raises(RuntimeError, match="exceeds"):
        w.on_ack(0, count=2)


def test_ack_wrong_instance_rejected():
    w = SplitWindow(4)
    w.on_post(0)
    with pytest.raises(RuntimeError, match="holds only"):
        w.on_ack(1)


def test_per_instance_outstanding_feeds_load_balancing():
    w = SplitWindow(None)
    w.on_post(0)
    w.on_post(0)
    w.on_post(1)
    assert w.outstanding(0) == 2
    assert w.outstanding(1) == 1
    assert w.outstanding(7) == 0
    w.on_ack(0)
    assert w.outstanding(0) == 1


def test_stall_counter():
    w = SplitWindow(1)
    w.on_post(0)
    w.on_stall()
    w.on_stall()
    assert w.stalls == 2


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 3)), max_size=80),
       st.integers(1, 5))
def test_window_invariant_never_exceeded(ops, window):
    """Property: in_flight never exceeds the window and never goes negative."""
    w = SplitWindow(window)
    outstanding = []
    for is_post, instance in ops:
        if is_post:
            if w.can_send:
                w.on_post(instance)
                outstanding.append(instance)
        else:
            if outstanding:
                inst = outstanding.pop(0)
                w.on_ack(inst)
        assert 0 <= w.in_flight <= window
        assert w.in_flight == len(outstanding)
        assert all(w.outstanding(i) >= 0 for i in range(4))
