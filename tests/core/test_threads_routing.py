"""Unit tests for thread collections, mapping strings and routing."""

import pytest

from repro.core import (
    ConstantRoute,
    DpsThread,
    LoadBalancedRoute,
    RoundRobinRoute,
    RoutingContext,
    ThreadCollection,
    parse_mapping,
    route_fn,
)
from repro.serial import SimpleToken


class PosToken(SimpleToken):
    def __init__(self, pos=0):
        self.pos = pos


# ---------------------------------------------------------------------------
# mapping strings
# ---------------------------------------------------------------------------

def test_parse_mapping_paper_example():
    assert parse_mapping("nodeA*2 nodeB") == ["nodeA", "nodeA", "nodeB"]


def test_parse_mapping_single():
    assert parse_mapping("n1") == ["n1"]


def test_parse_mapping_whitespace():
    assert parse_mapping("  a   b*3 ") == ["a", "b", "b", "b"]


@pytest.mark.parametrize("bad", ["", "a*0", "a**2", "a*x", "*3"])
def test_parse_mapping_rejects(bad):
    with pytest.raises(ValueError):
        parse_mapping(bad)


# ---------------------------------------------------------------------------
# thread collections
# ---------------------------------------------------------------------------

class ComputeThread(DpsThread):
    def __init__(self):
        self.member = 0


def test_collection_map_and_properties():
    tc = ThreadCollection(ComputeThread, "proc").map("nodeA*2 nodeB")
    assert tc.thread_count == 3
    assert tc.placements == ["nodeA", "nodeA", "nodeB"]
    assert tc.node_of(2) == "nodeB"


def test_collection_map_nodes():
    tc = ThreadCollection(ComputeThread).map_nodes(["x", "y"])
    assert tc.thread_count == 2
    assert tc.name == "ComputeThread"


def test_collection_unmapped_raises():
    tc = ThreadCollection(ComputeThread)
    assert not tc.is_mapped
    with pytest.raises(RuntimeError, match="not mapped"):
        tc.thread_count


def test_collection_make_thread_sets_runtime_fields():
    tc = ThreadCollection(ComputeThread, "proc").map("a b")
    t = tc.make_thread(1)
    assert isinstance(t, ComputeThread)
    assert t.index == 1
    assert t.node_name == "b"
    assert t.collection_name == "proc"
    assert t.member == 0


def test_collection_node_of_range():
    tc = ThreadCollection(ComputeThread).map("a")
    with pytest.raises(IndexError):
        tc.node_of(5)


def test_collection_requires_thread_subclass():
    with pytest.raises(TypeError):
        ThreadCollection(int)


def test_collection_remap_is_dynamic():
    tc = ThreadCollection(ComputeThread).map("a")
    assert tc.thread_count == 1
    tc.map("a*4 b*4")  # runtime reshaping, no rebuild needed
    assert tc.thread_count == 8


# ---------------------------------------------------------------------------
# routes
# ---------------------------------------------------------------------------

def make_ctx(n, outstanding=None):
    tc = ThreadCollection(DpsThread).map_nodes([f"n{i}" for i in range(n)])
    return RoutingContext(tc, outstanding)


def test_constant_route():
    r = ConstantRoute(2).bind(make_ctx(4))
    assert r(PosToken()) == 2


def test_round_robin_route_cycles():
    r = RoundRobinRoute().bind(make_ctx(3))
    got = [r(PosToken()) for _ in range(7)]
    assert got == [0, 1, 2, 0, 1, 2, 0]


def test_route_fn_macro_paper_example():
    # ROUTE(RoundRobinRoute, ComputeThread, CharToken, pos % threadCount())
    ModRoute = route_fn("ModRoute", lambda tok, n: tok.pos % n)
    r = ModRoute().bind(make_ctx(4))
    assert r(PosToken(5)) == 1
    assert r(PosToken(8)) == 0


def test_route_out_of_range_rejected():
    Bad = route_fn("Bad", lambda tok, n: n)  # one past the end
    r = Bad().bind(make_ctx(2))
    with pytest.raises(ValueError, match="must be an int"):
        r(PosToken())


def test_route_unbound_raises():
    with pytest.raises(RuntimeError, match="before bind"):
        ConstantRoute()(PosToken())


def test_load_balanced_route_prefers_least_loaded():
    loads = {0: 5, 1: 2, 2: 4}
    r = LoadBalancedRoute().bind(make_ctx(3, outstanding=lambda i: loads[i]))
    assert r(PosToken()) == 1
    loads[1] = 9
    assert r(PosToken()) == 2


def test_load_balanced_route_tie_breaks_low_index():
    r = LoadBalancedRoute().bind(make_ctx(3, outstanding=lambda i: 1))
    assert r(PosToken()) == 0


def test_load_balanced_without_feedback_defaults_to_zero():
    r = LoadBalancedRoute().bind(make_ctx(3))
    assert r(PosToken()) == 0


def test_queue_depth_route_prefers_shallowest_inbox():
    from repro.core import QueueDepthRoute
    depths = {0: 4, 1: 1, 2: 3}
    tc = ThreadCollection(DpsThread).map_nodes(["n0", "n1", "n2"])
    ctx = RoutingContext(tc, depth=lambda i: depths[i])
    r = QueueDepthRoute().bind(ctx)
    assert r(PosToken()) == 1
    depths[1] = 9
    assert r(PosToken()) == 2  # re-reads the feed on every emission


def test_queue_depth_route_tie_breaks_low_index():
    from repro.core import QueueDepthRoute
    r = QueueDepthRoute().bind(make_ctx(3))
    # no depth feed: outstanding stands in (all zero) -> deterministic 0
    assert r(PosToken()) == 0


def test_routing_context_depth_falls_back_to_outstanding():
    loads = {0: 2, 1: 0}
    ctx = make_ctx(2, outstanding=lambda i: loads[i])
    assert ctx.depth(0) == 2 and ctx.depth(1) == 0


def test_routing_policy_substitutes_only_load_spreading_routes():
    from repro.core import QueueDepthRoute, RoutingPolicy
    ModRoute = route_fn("ModRoute", lambda tok, n: tok.pos % n)
    adaptive = RoutingPolicy(kind="queue_depth")
    assert adaptive.route_class_for(RoundRobinRoute) is QueueDepthRoute
    assert adaptive.route_class_for(LoadBalancedRoute) is QueueDepthRoute
    # content-addressed routes encode merge affinity: never overridden
    assert adaptive.route_class_for(ConstantRoute) is ConstantRoute
    assert adaptive.route_class_for(ModRoute) is ModRoute
    default = RoutingPolicy()
    assert default.route_class_for(RoundRobinRoute) is RoundRobinRoute


def test_routing_policy_from_env():
    from repro.core import RoutingPolicy
    assert RoutingPolicy.from_env({}).kind == "round_robin"
    assert RoutingPolicy.from_env(
        {"REPRO_ROUTING": "queue_depth"}).adaptive is True
    with pytest.raises(ValueError, match="kind"):
        RoutingPolicy.from_env({"REPRO_ROUTING": "bogus"})
