"""Property-based tests of flow-graph validation.

Hypothesis generates random linear op-kind sequences; the validator must
accept exactly the well-parenthesized ones (split/stream/merge nesting)
and reject the rest — never crash, never mis-accept.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConstantRoute,
    DpsThread,
    Flowgraph,
    FlowgraphNode,
    GraphError,
    LeafOperation,
    MergeOperation,
    SplitOperation,
    StreamOperation,
    ThreadCollection,
)
from repro.serial import SimpleToken


class GToken(SimpleToken):
    def __init__(self, v=0):
        self.v = v


class GLeaf(LeafOperation):
    in_types = (GToken,)
    out_types = (GToken,)

    def execute(self, tok):
        self.post(GToken(tok.v))


class GSplit(SplitOperation):
    in_types = (GToken,)
    out_types = (GToken,)

    def execute(self, tok):
        self.post(GToken(tok.v))


class GMerge(MergeOperation):
    in_types = (GToken,)
    out_types = (GToken,)

    def execute(self, tok):
        while tok is not None:
            tok = yield self.next_token()
        yield self.post(GToken())


class GStream(StreamOperation):
    in_types = (GToken,)
    out_types = (GToken,)

    def execute(self, tok):
        while tok is not None:
            yield self.post(GToken(tok.v))
            tok = yield self.next_token()


KINDS = {"L": GLeaf, "S": GSplit, "M": GMerge, "T": GStream}


def chain_is_valid(kinds: str) -> bool:
    """Reference implementation of the nesting rule for linear chains."""
    depth = 0
    for k in kinds:
        if k == "S":
            depth += 1
        elif k == "M":
            if depth == 0:
                return False
            depth -= 1
        elif k == "T":
            if depth == 0:
                return False
            # pop + push: depth unchanged
    return depth == 0


def build_chain(kinds: str):
    tc = ThreadCollection(DpsThread, "g").map("n1")
    nodes = [FlowgraphNode(KINDS[k], tc, ConstantRoute) for k in kinds]
    builder = nodes[0].as_builder()
    for node in nodes[1:]:
        builder = builder >> node
    return Flowgraph(builder, "prop-chain")


@settings(max_examples=300, deadline=None)
@given(st.text(alphabet="LSMT", min_size=1, max_size=12))
def test_linear_chain_validation_matches_reference(kinds):
    should_pass = chain_is_valid(kinds)
    try:
        graph = build_chain(kinds)
        built = True
    except GraphError:
        built = False
    assert built == should_pass, kinds
    if built:
        # every opener has a recorded closer, depths are consistent
        for i, k in enumerate(kinds):
            if k in "ST" and i != len(kinds) - 1:
                closer = graph.matching_merge(i)
                assert kinds[closer] in "MT"
                assert closer > i


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 6))
def test_nested_splits_match_inside_out(depth):
    kinds = "S" * depth + "L" + "M" * depth
    graph = build_chain(kinds)
    for i in range(depth):
        # opener i matches closer at mirrored position
        assert graph.matching_merge(i) == len(kinds) - 1 - i
        assert graph.group_depth(i) == i
