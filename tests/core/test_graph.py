"""Unit tests for flow-graph construction and build-time validation."""

import pytest

from repro.core import (
    ConstantRoute,
    DpsThread,
    Flowgraph,
    FlowgraphNode,
    GraphError,
    LeafOperation,
    MergeOperation,
    RoundRobinRoute,
    SplitOperation,
    StreamOperation,
    ThreadCollection,
)
from repro.serial import SimpleToken


class AToken(SimpleToken):
    pass


class BToken(SimpleToken):
    pass


class CToken(SimpleToken):
    pass


class SplitAB(SplitOperation):
    in_types = (AToken,)
    out_types = (BToken,)

    def execute(self, tok):
        self.post(BToken())


class LeafBB(LeafOperation):
    in_types = (BToken,)
    out_types = (BToken,)

    def execute(self, tok):
        self.post(BToken())


class LeafBC(LeafOperation):
    in_types = (BToken,)
    out_types = (CToken,)

    def execute(self, tok):
        self.post(CToken())


class LeafCC(LeafOperation):
    in_types = (CToken,)
    out_types = (CToken,)

    def execute(self, tok):
        self.post(CToken())


class MergeBA(MergeOperation):
    in_types = (BToken,)
    out_types = (AToken,)

    def execute(self, tok):
        while tok is not None:
            tok = yield self.next_token()
        yield self.post(AToken())


class MergeCA(MergeOperation):
    in_types = (CToken,)
    out_types = (AToken,)

    def execute(self, tok):
        while tok is not None:
            tok = yield self.next_token()
        yield self.post(AToken())


class StreamBB(StreamOperation):
    in_types = (BToken,)
    out_types = (BToken,)

    def execute(self, tok):
        while tok is not None:
            yield self.post(BToken())
            tok = yield self.next_token()


@pytest.fixture
def tc():
    return ThreadCollection(DpsThread, "main").map("n1")


def node(op, tc, route=ConstantRoute):
    return FlowgraphNode(op, tc, route)


def test_simple_split_compute_merge(tc):
    g = Flowgraph(node(SplitAB, tc) >> node(LeafBB, tc) >> node(MergeBA, tc), "g")
    assert len(g.node_ids) == 3
    assert g.entry == 0 and g.exit == 2
    assert g.successors(0) == [1]
    assert g.matching_merge(0) == 2


def test_graph_direct_split_merge(tc):
    g = Flowgraph(node(SplitAB, tc) >> node(MergeBA, tc))
    assert g.matching_merge(0) == 1


def test_group_depth(tc):
    g = Flowgraph(node(SplitAB, tc) >> node(LeafBB, tc) >> node(MergeBA, tc))
    assert g.group_depth(0) == 0
    assert g.group_depth(1) == 1
    assert g.group_depth(2) == 1


def test_two_paths_type_dispatch(tc):
    """The paper's Figure 3: path selected by the posted token type."""

    class SplitABorC(SplitOperation):
        in_types = (AToken,)
        out_types = (BToken, CToken)

        def execute(self, tok):
            pass

    class MergeBCA(MergeOperation):
        in_types = (BToken, CToken)
        out_types = (AToken,)

        def execute(self, tok):
            yield self.post(AToken())

    s = node(SplitABorC, tc)
    op1 = node(LeafBB, tc)
    op2 = node(LeafCC, tc)
    m = node(MergeBCA, tc)
    builder = s >> op1 >> m
    builder += s >> op2 >> m
    g = Flowgraph(builder, "two-paths")
    # ids follow first appearance: s=0, op1=1, m=2, op2=3
    assert g.dispatch(g.entry, BToken) == 1
    assert g.dispatch(g.entry, CToken) == 3
    assert g.matching_merge(g.entry) == 2
    assert g.exit == 2


def test_ambiguous_dispatch_rejected(tc):
    s = node(SplitAB, tc)
    op1 = node(LeafBB, tc)
    op2 = FlowgraphNode(LeafBB, tc, ConstantRoute)  # second B-accepting path
    m = node(MergeBA, tc)
    builder = s >> op1 >> m
    builder += s >> op2 >> m
    with pytest.raises(GraphError, match="ambiguous"):
        Flowgraph(builder)


def test_type_mismatch_rejected(tc):
    # LeafCC cannot follow SplitAB (B outputs vs C inputs)
    with pytest.raises(GraphError, match="type mismatch|no successor"):
        Flowgraph(node(SplitAB, tc) >> node(LeafCC, tc) >> node(MergeCA, tc))


def test_dropped_out_type_rejected(tc):
    class SplitBoth(SplitOperation):
        in_types = (AToken,)
        out_types = (BToken, CToken)

        def execute(self, tok):
            pass

    class MergeB(MergeOperation):
        in_types = (BToken,)
        out_types = (AToken,)

        def execute(self, tok):
            yield self.post(AToken())

    # CToken posted by the split has nowhere to go
    with pytest.raises(GraphError, match="no successor accepts"):
        Flowgraph(node(SplitBoth, tc) >> node(MergeB, tc))


def test_cycle_rejected(tc):
    a = node(LeafBB, tc)
    b = node(LeafBB, tc)
    builder = a >> b
    with pytest.raises(GraphError, match="cycle|entry"):
        builder += b >> a
        Flowgraph(builder)


def test_self_loop_rejected(tc):
    a = node(LeafBB, tc)
    with pytest.raises(GraphError, match="self-loop"):
        a >> a


def test_merge_without_split_rejected(tc):
    with pytest.raises(GraphError, match="no enclosing split"):
        Flowgraph(node(LeafBB, tc) >> node(MergeBA, tc))


def test_unmerged_split_rejected(tc):
    with pytest.raises(GraphError, match="never merged"):
        Flowgraph(node(SplitAB, tc) >> node(LeafBB, tc))


def test_nested_split_merge(tc):
    class SplitBB(SplitOperation):
        in_types = (BToken,)
        out_types = (BToken,)

        def execute(self, tok):
            pass

    class MergeBB(MergeOperation):
        in_types = (BToken,)
        out_types = (BToken,)

        def execute(self, tok):
            yield self.post(BToken())

    outer_s = node(SplitAB, tc)
    inner_s = node(SplitBB, tc)
    inner_m = node(MergeBB, tc)
    outer_m = node(MergeBA, tc)
    g = Flowgraph(outer_s >> inner_s >> inner_m >> outer_m, "nested")
    assert g.matching_merge(0) == 3
    assert g.matching_merge(1) == 2
    assert g.group_depth(2) == 2


def test_stream_pops_and_pushes(tc):
    """split >> stream >> merge: stream closes the split's group and
    opens its own, closed by the final merge."""
    s = node(SplitAB, tc)
    st = node(StreamBB, tc)
    m = node(MergeBA, tc)
    g = Flowgraph(s >> st >> m, "pipeline")
    assert g.matching_merge(0) == 1  # split matched by the stream
    assert g.matching_merge(1) == 2  # stream's group closed by the merge


def test_stream_chain(tc):
    s = node(SplitAB, tc)
    st1 = node(StreamBB, tc)
    st2 = node(StreamBB, tc)
    m = node(MergeBA, tc)
    g = Flowgraph(s >> st1 >> st2 >> m)
    assert g.matching_merge(0) == 1
    assert g.matching_merge(1) == 2
    assert g.matching_merge(2) == 3


def test_multiple_entries_rejected(tc):
    a = node(SplitAB, tc)
    b = node(SplitAB, tc)
    m = node(MergeBA, tc)
    builder = a >> m
    builder += b >> m
    with pytest.raises(GraphError, match="exactly one entry"):
        Flowgraph(builder)


def test_split_matching_two_merges_rejected(tc):
    class SplitBoth(SplitOperation):
        in_types = (AToken,)
        out_types = (BToken, CToken)

        def execute(self, tok):
            pass

    class MergeCB(MergeOperation):
        in_types = (CToken,)
        out_types = (BToken,)

        def execute(self, tok):
            yield self.post(BToken())

    s = node(SplitBoth, tc)
    m1 = node(MergeBA, tc)  # consumes B, posts A... both would be exits
    m2 = node(MergeCB, tc)
    lb = node(LeafBB, tc)
    builder = s >> m1
    builder += s >> m2 >> lb >> m1
    with pytest.raises(GraphError):
        Flowgraph(builder)


def test_empty_builder_rejected():
    with pytest.raises(GraphError, match="empty"):
        Flowgraph(FlowgraphBuilder := __import__(
            "repro.core", fromlist=["FlowgraphBuilder"]).FlowgraphBuilder())


def test_collections_listed(tc):
    other = ThreadCollection(DpsThread, "workers").map("n1*2")
    g = Flowgraph(
        node(SplitAB, tc)
        >> FlowgraphNode(LeafBB, other, RoundRobinRoute)
        >> node(MergeBA, tc)
    )
    assert g.collections() == [tc, other]


def test_dynamic_graph_growth_like_lu(tc):
    """+= appends repeated graph segments — the LU construction idiom."""
    class SplitBB2(SplitOperation):
        in_types = (BToken,)
        out_types = (BToken,)

        def execute(self, tok):
            pass

    class MergeBB2(MergeOperation):
        in_types = (BToken,)
        out_types = (BToken,)

        def execute(self, tok):
            yield self.post(BToken())

    head = node(SplitAB, tc)
    tail = node(MergeBA, tc)
    stages = []
    for _ in range(3):
        stages.append((node(SplitBB2, tc), node(MergeBB2, tc)))
    builder = head.as_builder()
    prev = head
    for s, m in stages:
        builder += prev >> s >> m
        prev = m
    builder += prev >> tail
    g = Flowgraph(builder, "lu-like")
    assert len(g.node_ids) == 2 + 2 * 3
    # nesting: outer split matched by the final merge
    assert g.matching_merge(0) == g.exit
