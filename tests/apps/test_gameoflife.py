"""Tests for the distributed Game of Life (Fig. 7–9 application)."""

import numpy as np
import pytest

from repro.apps.gameoflife import DistributedGameOfLife, life_step
from repro.cluster import paper_cluster
from repro.runtime import SimEngine


def random_world(rows, cols, seed=3, density=0.35):
    rng = np.random.default_rng(seed)
    return (rng.random((rows, cols)) < density).astype(np.uint8)


def make_gol(world, n_workers, n_nodes=None):
    n_nodes = n_nodes or n_workers
    engine = SimEngine(paper_cluster(n_nodes))
    nodes = engine.cluster.node_names[:n_workers]
    gol = DistributedGameOfLife(engine, world, nodes)
    return engine, gol


# ---------------------------------------------------------------------------
# reference stencil
# ---------------------------------------------------------------------------

def test_life_step_blinker():
    world = np.zeros((5, 5), np.uint8)
    world[2, 1:4] = 1  # horizontal blinker
    stepped = life_step(world)
    expected = np.zeros((5, 5), np.uint8)
    expected[1:4, 2] = 1  # vertical blinker
    assert np.array_equal(stepped, expected)


def test_life_step_block_still_life():
    world = np.zeros((4, 4), np.uint8)
    world[1:3, 1:3] = 1
    assert np.array_equal(life_step(world), world)


def test_life_step_dead_world_stays_dead():
    world = np.zeros((8, 8), np.uint8)
    assert life_step(world).sum() == 0


def test_life_step_borders_are_dead():
    world = np.ones((3, 3), np.uint8)
    stepped = life_step(world)
    # corners have 3 neighbours -> alive; centre has 8 -> dies
    assert stepped[1, 1] == 0


# ---------------------------------------------------------------------------
# distributed equivalence with the reference
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n_workers", [1, 2, 3, 4])
@pytest.mark.parametrize("improved", [False, True])
def test_distributed_matches_reference(n_workers, improved):
    world = random_world(24, 16)
    engine, gol = make_gol(world, n_workers)
    gol.load()
    expected = world
    for _ in range(3):
        gol.step(improved=improved)
        expected = life_step(expected)
    assert np.array_equal(gol.gather(), expected)


def test_uneven_band_sizes():
    world = random_world(25, 10)  # 25 rows over 3 workers: 9/8/8
    engine, gol = make_gol(world, 3)
    gol.load()
    gol.step(improved=True)
    assert np.array_equal(gol.gather(), life_step(world))


def test_two_row_bands():
    world = random_world(8, 12)
    engine, gol = make_gol(world, 4)  # 2 rows per band: no interior
    gol.load()
    gol.step(improved=True)
    assert np.array_equal(gol.gather(), life_step(world))


def test_variants_agree_with_each_other():
    world = random_world(20, 20, seed=11)
    engine1, gol1 = make_gol(world, 2)
    engine2, gol2 = make_gol(world, 2)
    gol1.load()
    gol2.load()
    for _ in range(4):
        gol1.step(improved=False)
        gol2.step(improved=True)
    assert np.array_equal(gol1.gather(), gol2.gather())


# ---------------------------------------------------------------------------
# guard rails
# ---------------------------------------------------------------------------

def test_world_too_small_rejected():
    with pytest.raises(ValueError, match="too small"):
        make_gol(random_world(4, 8), 4)


def test_step_before_load_rejected():
    engine, gol = make_gol(random_world(16, 8), 2)
    with pytest.raises(RuntimeError, match="load"):
        gol.step()
    with pytest.raises(RuntimeError, match="load"):
        gol.gather()


def test_non_2d_world_rejected():
    engine = SimEngine(paper_cluster(1))
    with pytest.raises(ValueError, match="2-D"):
        DistributedGameOfLife(engine, np.zeros(10, np.uint8), ["node01"])


# ---------------------------------------------------------------------------
# performance shape (the Fig. 9 mechanism)
# ---------------------------------------------------------------------------

def time_per_iteration(world, n_workers, improved, iters=2):
    engine, gol = make_gol(world, n_workers, n_nodes=max(n_workers, 1))
    gol.load()
    gol.step(improved=improved)  # warm-up (launch delays)
    total = 0.0
    for _ in range(iters):
        total += gol.step(improved=improved).makespan
    return total / iters


def test_improved_graph_faster_than_standard_on_multiple_nodes():
    world = random_world(120, 400, seed=5)
    t_std = time_per_iteration(world, 4, improved=False)
    t_imp = time_per_iteration(world, 4, improved=True)
    assert t_imp < t_std


def test_more_nodes_speed_up_iterations():
    world = random_world(240, 400, seed=6)
    t1 = time_per_iteration(world, 1, improved=True)
    t4 = time_per_iteration(world, 4, improved=True)
    assert t4 < t1
    assert t1 / t4 > 2.0  # decent scaling on a compute-heavy world
