"""Tests for the distributed block LU factorization (Fig. 11–15)."""

import numpy as np
import pytest
import scipy.linalg

from repro.apps.lu import DistributedLU, factor_panel
from repro.cluster import paper_cluster
from repro.runtime import SimEngine


def rand_matrix(n, seed=17):
    rng = np.random.default_rng(seed)
    # diagonally dominated enough to stay well-conditioned
    return rng.standard_normal((n, n)) + n * np.eye(n)


def run_lu(n, s, p, pipelined=True, scale=1.0, seed=17):
    a = rand_matrix(n, seed)
    engine = SimEngine(paper_cluster(max(p, 1)))
    lu = DistributedLU(engine, a, s, engine.cluster.node_names[:p],
                       pipelined=pipelined, scale=scale)
    lu.load()
    result = lu.run()
    return lu, result


# ---------------------------------------------------------------------------
# the panel kernel
# ---------------------------------------------------------------------------

def test_factor_panel_square_matches_scipy():
    a = rand_matrix(16, seed=1)
    panel = a.copy()
    pivots = factor_panel(panel)
    p, l, u = scipy.linalg.lu(a)
    # verify via reconstruction: apply recorded swaps to the original
    order = np.arange(16)
    for c, piv in enumerate(pivots):
        piv = int(piv)
        if piv != c:
            order[[c, piv]] = order[[piv, c]]
    l_mine = np.tril(panel, -1) + np.eye(16)
    u_mine = np.triu(panel)
    assert np.allclose(a[order], l_mine @ u_mine)


def test_factor_panel_tall():
    a = rand_matrix(24, seed=2)[:, :8].copy()
    orig = a.copy()
    pivots = factor_panel(a)
    order = np.arange(24)
    for c, piv in enumerate(pivots):
        piv = int(piv)
        if piv != c:
            order[[c, piv]] = order[[piv, c]]
    l = np.tril(a, -1)[:, :8] + np.eye(24)[:, :8]
    u = np.triu(a[:8])
    assert np.allclose(orig[order], l @ u)


def test_factor_panel_wide_rejected():
    with pytest.raises(ValueError):
        factor_panel(np.zeros((4, 8)))


def test_factor_panel_singular_rejected():
    with pytest.raises(ZeroDivisionError):
        factor_panel(np.zeros((4, 4)))


# ---------------------------------------------------------------------------
# distributed correctness: P A = L U
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("pipelined", [True, False])
@pytest.mark.parametrize("n,s,p", [
    (32, 2, 1),
    (32, 4, 2),
    (48, 4, 3),
    (64, 8, 4),
])
def test_distributed_lu_correct(n, s, p, pipelined):
    lu, _result = run_lu(n, s, p, pipelined=pipelined)
    assert lu.check()


def test_lu_matches_scipy_factorization_value():
    n = 32
    a = rand_matrix(n)
    engine = SimEngine(paper_cluster(2))
    lu = DistributedLU(engine, a, 4, engine.cluster.node_names[:2])
    lu.load()
    lu.run()
    order, l, u = lu.factors()
    # solve a linear system through the factors and compare with scipy
    rng = np.random.default_rng(0)
    b = rng.standard_normal(n)
    y = scipy.linalg.solve_triangular(l, b[order], lower=True,
                                      unit_diagonal=True)
    x = scipy.linalg.solve_triangular(u, y)
    assert np.allclose(a @ x, b)


def test_lu_more_workers_than_columns():
    # p > s: extra workers stay idle but everything still works
    lu, _ = run_lu(32, 2, 4)
    assert lu.check()


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------

def test_lu_rejects_bad_inputs():
    engine = SimEngine(paper_cluster(2))
    nodes = engine.cluster.node_names
    with pytest.raises(ValueError, match="square"):
        DistributedLU(engine, np.zeros((4, 6)), 2, nodes)
    with pytest.raises(ValueError, match="s >= 2"):
        DistributedLU(engine, np.eye(4), 1, nodes)
    with pytest.raises(ValueError, match="divisible"):
        DistributedLU(engine, np.eye(10), 4, nodes)
    with pytest.raises(ValueError, match="worker"):
        DistributedLU(engine, np.eye(4), 2, [])


def test_run_before_load_rejected():
    engine = SimEngine(paper_cluster(1))
    lu = DistributedLU(engine, rand_matrix(16), 2, ["node01"])
    with pytest.raises(RuntimeError, match="load"):
        lu.run()


# ---------------------------------------------------------------------------
# performance shape (the Fig. 15 mechanism)
# ---------------------------------------------------------------------------

def test_pipelined_faster_than_barrier():
    _, r_pipe = run_lu(64, 8, 4, pipelined=True)
    _, r_barrier = run_lu(64, 8, 4, pipelined=False)
    assert r_pipe.makespan < r_barrier.makespan


def test_more_nodes_speed_up_lu():
    # scale=32 prices the 64² run like a 2048² one: compute-dominated,
    # so extra nodes must pay off (tiny unscaled runs are comm-bound).
    _, r1 = run_lu(64, 8, 1, scale=32.0)
    _, r4 = run_lu(64, 8, 4, scale=32.0)
    assert r4.makespan < r1.makespan
    assert r1.makespan / r4.makespan > 1.8


def test_scale_increases_virtual_time_only():
    lu1, r1 = run_lu(32, 4, 2, scale=1.0)
    lu4, r4 = run_lu(32, 4, 2, scale=4.0)
    assert lu4.check()  # numerics unaffected
    # costs grow superlinearly in the virtual size (mix of bytes ~ scale²
    # and flops ~ scale³ over fixed per-message overheads)
    assert r4.makespan > 2 * r1.makespan
