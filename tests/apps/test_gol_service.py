"""Tests for the Game of Life parallel service (Fig. 10 / Table 2)."""

import numpy as np
import pytest

from repro.apps.gameoflife import life_step
from repro.apps.gol_service import GameOfLifeService, GolReadRequest
from repro.cluster import paper_cluster
from repro.core import (
    ConstantRoute,
    DpsThread,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    ThreadCollection,
)
from repro.runtime import SimEngine
from repro.serial import ComplexToken, SimpleToken


def make_service(rows=40, cols=40, n_workers=4, seed=9):
    rng = np.random.default_rng(seed)
    world = (rng.random((rows, cols)) < 0.3).astype(np.uint8)
    engine = SimEngine(paper_cluster(n_workers))
    svc = GameOfLifeService(engine, world, engine.cluster.node_names[:n_workers])
    svc.load()
    return engine, svc, world


def test_read_whole_world():
    engine, svc, world = make_service()
    block = svc.read_block(0, 0, 40, 40)
    assert np.array_equal(block, world)


def test_read_block_single_band():
    engine, svc, world = make_service()
    block = svc.read_block(2, 5, 4, 10)  # inside worker 0's band
    assert np.array_equal(block, world[2:6, 5:15])


def test_read_block_spanning_bands():
    engine, svc, world = make_service()
    block = svc.read_block(8, 0, 20, 40)  # spans several 10-row bands
    assert np.array_equal(block, world[8:28, :])


def test_read_after_steps_sees_current_state():
    engine, svc, world = make_service()
    svc.step(improved=True)
    svc.step(improved=True)
    expected = life_step(life_step(world))
    assert np.array_equal(svc.read_block(0, 0, 40, 40), expected)


def test_read_out_of_range_rejected():
    engine, svc, world = make_service()
    with pytest.raises(Exception, match="outside world"):
        svc.read_block(35, 0, 10, 5)


def test_concurrent_reads_while_iterating():
    """A client reads blocks while the simulation iterates — the Table 2
    scenario, with the client as a driver process."""
    engine, svc, world = make_service(rows=48, cols=48, n_workers=4)
    call_times = []

    def client(sim):
        for i in range(6):
            start = sim.now
            result = yield svc.start_read(4 * i, 0, 8, 24)
            call_times.append(sim.now - start)
            assert result.token.data.shape == (8, 24)

    engine.spawn(client(engine.sim), name="viz-client")
    for _ in range(3):
        svc.step(improved=True)
    engine.run_to_completion()
    assert len(call_times) == 6
    assert all(t > 0 for t in call_times)


def test_graph_call_from_another_application():
    """A separate DPS application calls the exposed read graph (Fig. 10)."""
    engine, svc, world = make_service()

    class VizRequest(SimpleToken):
        def __init__(self, row=0):
            self.row = row

    class VizFrame(ComplexToken):
        def __init__(self, data=None):
            self.data = data

    read_graph_name = svc.read_graph_name

    class FetchBlock(LeafOperation):
        in_types = (VizRequest,)
        out_types = (VizFrame,)

        def execute(self, tok):
            block = yield self.call_graph(
                read_graph_name, GolReadRequest(tok.row, 0, 4, 40)
            )
            yield self.post(VizFrame(block.data.array))

    viz_main = ThreadCollection(DpsThread, "viz").map("node02")
    client = Flowgraph(
        FlowgraphNode(FetchBlock, viz_main, ConstantRoute).as_builder(),
        "viz-client-graph",
    )
    result = engine.run(client, VizRequest(12), driver_node="node02")
    assert np.array_equal(result.token.data, world[12:16, :])
