"""Tests for the radio listening-rates application (paper ref. [21])."""

import numpy as np
import pytest

from repro.apps.radio import (
    compute_listening_rates,
    generate_survey,
    reference_rates,
)
from repro.cluster import paper_cluster
from repro.core import LoadBalancedRoute, RoundRobinRoute


def test_survey_generation_shapes():
    survey = generate_survey(n_participants=50, n_stations=5, n_slots=12,
                             seed=1)
    assert len(survey.diaries) == 50
    assert survey.total_minutes >= 50 * 4
    for diary in survey.diaries:
        assert diary.shape[1] == 2
        assert diary[:, 0].min() >= 0 and diary[:, 0].max() < 12
        assert diary[:, 1].min() >= -1 and diary[:, 1].max() < 5


def test_reference_rates_manual_case():
    from repro.apps.radio import RadioSurvey

    diary = np.array([[0, 1], [0, 1], [3, 0], [5, -1]], dtype=np.int32)
    survey = RadioSurvey(2, 6, [diary])
    counts = reference_rates(survey)
    assert counts[1, 0] == 2
    assert counts[0, 3] == 1
    assert counts.sum() == 3  # the -1 minute is "no station"


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_distributed_matches_reference(n_workers):
    survey = generate_survey(n_participants=120, seed=3)
    run = compute_listening_rates(
        paper_cluster(n_workers + 1), survey, n_workers
    )
    assert np.array_equal(run.counts, reference_rates(survey))
    assert run.total_minutes == survey.total_minutes


def test_rates_normalization():
    survey = generate_survey(n_participants=60, seed=5)
    run = compute_listening_rates(paper_cluster(3), survey, 2)
    rates = run.rates()
    assert rates.max() <= 1.0
    assert np.allclose(rates * survey.total_minutes, run.counts)


def test_worker_minutes_accounting():
    survey = generate_survey(n_participants=100, seed=7)
    run = compute_listening_rates(paper_cluster(4), survey, 3)
    assert sum(run.worker_minutes) == survey.total_minutes
    assert all(m > 0 for m in run.worker_minutes)


def test_load_balanced_beats_round_robin_on_skewed_batches():
    """The skewed diary lengths make blind round-robin uneven; the
    ack-feedback route adapts (the paper's load-balancing mechanism)."""
    survey = generate_survey(n_participants=300, seed=11)
    lb = compute_listening_rates(
        paper_cluster(4), survey, 3, batch_size=10,
        route_class=LoadBalancedRoute, window=6,
    )
    rr = compute_listening_rates(
        paper_cluster(4), survey, 3, batch_size=10,
        route_class=RoundRobinRoute, window=6,
    )
    assert np.array_equal(lb.counts, rr.counts)  # same answer
    # never meaningfully worse in time ...
    assert lb.makespan <= 1.05 * rr.makespan
    # ... and the feedback route spreads the skewed work far more evenly
    assert np.std(lb.worker_minutes) < 0.7 * np.std(rr.worker_minutes)


def test_worker_count_validation():
    survey = generate_survey(n_participants=10)
    with pytest.raises(ValueError, match="workers"):
        compute_listening_rates(paper_cluster(2), survey, 5)
