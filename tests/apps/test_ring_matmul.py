"""Tests for the ring (Fig. 6) and matmul (Table 1) applications."""

import numpy as np
import pytest

from repro.apps.matmul import block_multiply, build_matmul_graph
from repro.apps.ring import (
    RingResult,
    build_ring_graph,
    run_dps_ring,
    run_socket_ring,
)
from repro.cluster import NetworkSpec, paper_cluster


SPEC4 = paper_cluster(4)


# ---------------------------------------------------------------------------
# ring
# ---------------------------------------------------------------------------

def test_socket_ring_throughput_positive():
    r = run_socket_ring(SPEC4, block_bytes=100_000, total_bytes=2_000_000)
    assert 0 < r.throughput_mb < SPEC4.network.bandwidth / 1e6 * 1.01


def test_socket_ring_small_blocks_slower():
    small = run_socket_ring(SPEC4, 1_000, 1_000_000)
    big = run_socket_ring(SPEC4, 1_000_000, 10_000_000)
    assert big.throughput > 2 * small.throughput


def test_socket_ring_throughput_approaches_bandwidth():
    r = run_socket_ring(SPEC4, 1_000_000, 50_000_000)
    # Large blocks amortize overheads: within 20% of the NIC rate.
    assert r.throughput > 0.8 * SPEC4.network.bandwidth


def test_dps_ring_delivers_all_blocks():
    r = run_dps_ring(SPEC4, block_bytes=65536, total_bytes=1_048_576)
    assert r.total_bytes == 1_048_576
    assert r.throughput > 0


def test_dps_slower_than_sockets_at_small_blocks():
    """Figure 6's core observation: DPS overhead bites on small transfers."""
    sock = run_socket_ring(SPEC4, 1_000, 500_000)
    dps = run_dps_ring(SPEC4, 1_000, 500_000)
    assert dps.throughput < sock.throughput


def test_dps_converges_to_sockets_at_large_blocks():
    sock = run_socket_ring(SPEC4, 1_000_000, 20_000_000)
    dps = run_dps_ring(SPEC4, 1_000_000, 20_000_000)
    assert dps.throughput > 0.85 * sock.throughput


def test_ring_graph_requires_two_nodes():
    with pytest.raises(ValueError):
        build_ring_graph(["only-one"])


def test_ring_rejects_bad_sizes():
    with pytest.raises(ValueError):
        run_socket_ring(SPEC4, 0, 100)
    with pytest.raises(ValueError):
        run_dps_ring(SPEC4, -5, 100)


# ---------------------------------------------------------------------------
# matmul
# ---------------------------------------------------------------------------

def rng_matrices(n, seed=7):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)), rng.standard_normal((n, n))


@pytest.mark.parametrize("s", [2, 4, 8])
def test_block_multiply_correct(s):
    a, b = rng_matrices(64)
    run = block_multiply(paper_cluster(3), a, b, s=s, n_workers=2)
    assert run.check(a, b)


def test_block_multiply_single_worker():
    a, b = rng_matrices(32)
    run = block_multiply(paper_cluster(2), a, b, s=4, n_workers=1)
    assert run.check(a, b)


def test_block_multiply_bad_split():
    a, b = rng_matrices(30)
    with pytest.raises(ValueError, match="not divisible"):
        block_multiply(paper_cluster(2), a, b, s=4, n_workers=1)


def test_block_multiply_worker_count_validation():
    a, b = rng_matrices(16)
    with pytest.raises(ValueError, match="workers"):
        block_multiply(paper_cluster(2), a, b, s=2, n_workers=5)


def test_more_workers_is_faster():
    a, b = rng_matrices(128)
    t1 = block_multiply(paper_cluster(5), a, b, s=4, n_workers=1).makespan
    t4 = block_multiply(paper_cluster(5), a, b, s=4, n_workers=4).makespan
    assert t4 < t1


def test_overlap_beats_lockstep():
    """The Table 1 mechanism: wide window (overlapped) beats a one-task-
    per-worker window (send/compute/return lock-step)."""
    a, b = rng_matrices(128)
    spec = paper_cluster(3)
    t_overlap = block_multiply(spec, a, b, s=8, n_workers=2,
                               window=6).makespan
    t_lockstep = block_multiply(spec, a, b, s=8, n_workers=2,
                                window=2).makespan
    assert t_overlap < t_lockstep


def test_comm_accounting():
    a, b = rng_matrices(64)
    run = block_multiply(paper_cluster(2), a, b, s=2, n_workers=1)
    # 4 tasks (2 blocks each of A row and B col => 2*2*32*32*8 bytes) + results
    expected_task_bytes = 4 * (2 * 2 * 32 * 32 * 8)
    assert run.comm_bytes > expected_task_bytes  # plus results and headers
    assert run.comm_messages >= 8
