"""Tests for the video recomposition pipeline (Figure 4)."""

import pytest

from repro.apps.video import VideoJob, run_video_pipeline
from repro.cluster import paper_cluster

SPEC = paper_cluster(6)
DISKS = ["node01", "node02", "node03", "node04"]
PROCS = ["node05", "node06"]


def run(use_stream, job=None):
    return run_video_pipeline(
        SPEC, job or VideoJob(n_frames=12, frame_bytes=1 << 18, n_parts=4),
        DISKS, PROCS, use_stream=use_stream,
    )


def test_stream_and_barrier_produce_identical_results():
    a = run(True)
    b = run(False)
    assert a.frames == b.frames == 12
    assert a.checksum == b.checksum


def test_stream_processes_first_frame_earlier():
    """The whole point of Figure 4: complete frames are processed as soon
    as they are ready, not after all partial frames have been read."""
    a = run(True)
    b = run(False)
    # the first frame starts processing after ~its own parts are read
    # instead of after the entire read phase
    assert a.first_frame_latency < 0.8 * b.first_frame_latency


def test_stream_finishes_sooner():
    a = run(True)
    b = run(False)
    assert a.makespan < b.makespan


def test_single_part_frames():
    stats = run_video_pipeline(
        SPEC, VideoJob(n_frames=4, frame_bytes=1 << 16, n_parts=1),
        DISKS, PROCS, use_stream=True,
    )
    assert stats.frames == 4


def test_disk_bandwidth_limits_throughput():
    small = run(True, VideoJob(n_frames=8, frame_bytes=1 << 16, n_parts=4))
    large = run(True, VideoJob(n_frames=8, frame_bytes=1 << 20, n_parts=4))
    assert large.makespan > small.makespan
