"""Unit tests for the tutorial application module (paper §3)."""

import pytest

from repro.apps.strings import (
    CharToken,
    MergeString,
    RoundRobinByPos,
    SplitString,
    StringToken,
    ToUpperCase,
    build_uppercase_graph,
)
from repro.cluster import paper_cluster
from repro.core import OpKind
from repro.runtime import SimEngine
from repro.serial import decode, encode


def test_tokens_roundtrip_the_wire():
    assert decode(encode(StringToken("abc"))).text == "abc"
    c = decode(encode(CharToken("x", 3, 9)))
    assert (c.chr, c.pos, c.total) == ("x", 3, 9)


def test_op_signatures():
    assert SplitString.kind == OpKind.SPLIT
    assert ToUpperCase.kind == OpKind.LEAF
    assert MergeString.kind == OpKind.MERGE
    assert SplitString.accepts(StringToken)
    assert not SplitString.accepts(CharToken)


def test_route_macro_matches_paper_semantics():
    # ROUTE(RoundRobinRoute, ComputeThread, CharToken, pos % threadCount())
    from repro.core import RoutingContext, ThreadCollection, DpsThread

    ctx = RoutingContext(
        ThreadCollection(DpsThread).map_nodes(["a", "b", "c"])
    )
    route = RoundRobinByPos().bind(ctx)
    assert [route(CharToken("x", p)) for p in range(6)] == [0, 1, 2, 0, 1, 2]


def test_build_graph_shape():
    graph, main, workers = build_uppercase_graph("node01", "node02*2")
    assert graph.entry == 0 and graph.exit == 2
    assert graph.matching_merge(0) == 2
    assert main.thread_count == 1
    assert workers.thread_count == 2


@pytest.mark.parametrize("text", [
    "a",
    "MiXeD CaSe 123 !?",
    "ünïcödé strings tøø",
    "x" * 200,
])
def test_uppercase_various_inputs(text):
    engine = SimEngine(paper_cluster(2))
    graph, *_ = build_uppercase_graph("node01", "node01 node02")
    result = engine.run(graph, StringToken(text))
    assert result.token.text == text.upper()


def test_many_workers_on_one_node():
    engine = SimEngine(paper_cluster(1))
    graph, *_ = build_uppercase_graph("node01", "node01*8")
    result = engine.run(graph, StringToken("eight local threads"))
    assert result.token.text == "EIGHT LOCAL THREADS"
