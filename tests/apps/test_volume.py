"""Tests for the 3-D volume slice server (first-generation DPS workload)."""

import numpy as np
import pytest

from repro.apps.volume import DistributedVolume
from repro.cluster import paper_cluster
from repro.runtime import SimEngine


def make_volume(depth=20, rows=12, cols=10, n_nodes=4, seed=13):
    rng = np.random.default_rng(seed)
    volume = rng.integers(0, 256, size=(depth, rows, cols), dtype=np.uint8)
    engine = SimEngine(paper_cluster(n_nodes))
    vol = DistributedVolume(engine, volume,
                            engine.cluster.node_names[:n_nodes])
    vol.load()
    return engine, vol, volume


def test_axis0_slice_single_extent():
    engine, vol, volume = make_volume()
    for z in (0, 7, 19):
        assert np.array_equal(vol.read_slice(0, z), volume[z])


def test_axis1_slice_crosses_all_extents():
    engine, vol, volume = make_volume()
    got = vol.read_slice(1, 5)
    assert np.array_equal(got, volume[:, 5, :])


def test_axis2_slice_crosses_all_extents():
    engine, vol, volume = make_volume()
    got = vol.read_slice(2, 3)
    assert np.array_equal(got, volume[:, :, 3])


def test_single_storage_node():
    engine, vol, volume = make_volume(n_nodes=1)
    assert np.array_equal(vol.read_slice(1, 2), volume[:, 2, :])


def test_uneven_extents():
    engine, vol, volume = make_volume(depth=23, n_nodes=4)
    assert np.array_equal(vol.read_slice(1, 0), volume[:, 0, :])
    assert np.array_equal(vol.read_slice(0, 22), volume[22])


def test_out_of_range_rejected():
    engine, vol, volume = make_volume()
    with pytest.raises(Exception, match="outside axis"):
        vol.read_slice(0, 99)
    with pytest.raises(Exception, match="axis must be"):
        vol.read_slice(5, 0)


def test_requires_load_first():
    engine = SimEngine(paper_cluster(2))
    vol = DistributedVolume(engine, np.zeros((8, 4, 4), np.uint8),
                            ["node01", "node02"])
    with pytest.raises(RuntimeError, match="load"):
        vol.read_slice(0, 0)


def test_validation():
    engine = SimEngine(paper_cluster(2))
    with pytest.raises(ValueError, match="3-D"):
        DistributedVolume(engine, np.zeros((4, 4), np.uint8), ["node01"])
    with pytest.raises(ValueError, match="storage node"):
        DistributedVolume(engine, np.zeros((4, 4, 4), np.uint8), [])
    with pytest.raises(ValueError, match="depth"):
        DistributedVolume(engine, np.zeros((1, 4, 4), np.uint8),
                          ["node01", "node02"])


def test_streaming_client_pipelines_slices():
    """The beating-heart pattern: a client streams slice requests while
    earlier ones are still in flight."""
    engine, vol, volume = make_volume(depth=32, rows=24, cols=24)
    received = []

    def client(sim):
        pending = [vol.start_slice(1, i) for i in range(6)]
        for i, ev in enumerate(pending):
            result = yield ev
            received.append((i, result.token.data.array))

    engine.spawn(client(engine.sim), name="heart-viewer")
    engine.run_to_completion()
    assert len(received) == 6
    for i, data in received:
        assert np.array_equal(data, volume[:, i, :])


def test_cross_application_graph_call():
    """Another DPS application calls the slice service by name."""
    from repro.core import (
        ConstantRoute, DpsThread, Flowgraph, FlowgraphNode, LeafOperation,
        ThreadCollection,
    )
    from repro.apps.volume import VolSliceRequest
    from repro.serial import Buffer, ComplexToken, SimpleToken

    engine, vol, volume = make_volume()

    class ViewRequest(SimpleToken):
        def __init__(self, index=0):
            self.index = index

    class ViewFrame(ComplexToken):
        def __init__(self, data=None):
            self.data = Buffer(data if data is not None else [])

    service = vol.slice_graph_name

    class FetchSlice(LeafOperation):
        in_types = (ViewRequest,)
        out_types = (ViewFrame,)

        def execute(self, tok):
            result = yield self.call_graph(service, VolSliceRequest(1, tok.index))
            yield self.post(ViewFrame(result.data.array))

    viewer = ThreadCollection(DpsThread, "vol-viewer").map("node02")
    graph = Flowgraph(
        FlowgraphNode(FetchSlice, viewer, ConstantRoute).as_builder(),
        "vol-viewer-graph",
    )
    result = engine.run(graph, ViewRequest(4), driver_node="node02")
    assert np.array_equal(result.token.data.array, volume[:, 4, :])


def test_wide_slices_cost_more_virtual_time():
    engine1, vol1, _ = make_volume(depth=16, rows=8, cols=8)
    engine2, vol2, _ = make_volume(depth=16, rows=64, cols=64)
    vol1.read_slice(1, 0)
    t1 = engine1.sim.now
    vol2.read_slice(1, 0)
    t2 = engine2.sim.now
    # bigger volumes take longer to load AND to slice; compare slice part
    r1 = engine1.run(vol1.slice_graph,
                     __import__("repro.apps.volume", fromlist=["VolSliceRequest"]).VolSliceRequest(1, 1)).makespan
    r2 = engine2.run(vol2.slice_graph,
                     __import__("repro.apps.volume", fromlist=["VolSliceRequest"]).VolSliceRequest(1, 1)).makespan
    assert r2 > r1
