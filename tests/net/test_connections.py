"""Peer-connection transport behaviour: coalesced flushes, counted drops
after a peer failure, the lock-free pool hot path, and TransportPolicy
resolution."""

import socket
import threading
import time

import pytest

from repro.net import (
    ConnectionPool,
    FrameReader,
    NameServer,
    NameServerClient,
    PeerConnection,
    TransportPolicy,
    recv_message,
)
from repro.net.protocol import MSG_HELLO, decode_message
from repro.trace import MetricsRegistry


@pytest.fixture
def ns():
    server = NameServer().start()
    yield server
    server.stop()


def client(server):
    return NameServerClient(server.address)


def _wait_for(predicate, timeout=5.0, what="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {what}"
        time.sleep(0.01)


# ---------------------------------------------------------------------------
# TransportPolicy
# ---------------------------------------------------------------------------

def test_policy_defaults_enable_everything():
    policy = TransportPolicy()
    assert policy.coalescing and policy.ack_aggregation and policy.shm_enabled


def test_policy_unbatched_disables_everything():
    policy = TransportPolicy.unbatched()
    assert not policy.coalescing
    assert not policy.ack_aggregation
    assert not policy.shm_enabled


def test_policy_ack_aggregation_requires_limit_and_window():
    assert not TransportPolicy(ack_batch_limit=1).ack_aggregation
    assert not TransportPolicy(ack_flush_window=0.0).ack_aggregation
    assert TransportPolicy(ack_batch_limit=2,
                           ack_flush_window=0.01).ack_aggregation


def test_policy_from_env():
    assert TransportPolicy.from_env({}) == TransportPolicy()
    off = TransportPolicy.from_env({"REPRO_TRANSPORT_BATCH": "0"})
    assert not off.coalescing and not off.ack_aggregation
    assert off.shm_enabled  # shm is a separate knob
    no_shm = TransportPolicy.from_env({"REPRO_SHM": "0"})
    assert no_shm.coalescing and not no_shm.shm_enabled
    tuned = TransportPolicy.from_env({"REPRO_SHM": "1",
                                      "REPRO_SHM_THRESHOLD": "4096"})
    assert tuned.shm_enabled and tuned.shm_threshold == 4096


# ---------------------------------------------------------------------------
# PeerConnection
# ---------------------------------------------------------------------------

def test_peer_connection_coalesces_queued_messages(ns):
    """Messages queued before the writer connects arrive in order through
    one vectored flush, and the frames-per-syscall histogram records the
    amortization."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    metrics = MetricsRegistry()
    errors = []
    with client(ns) as owner, client(ns) as c:
        owner.register("sink", *listener.getsockname()[:2])
        conn = PeerConnection(
            "sink", c, hello_from="src",
            on_error=lambda peer, exc: errors.append((peer, exc)),
            transport=TransportPolicy(shm_enabled=False),
            metrics=metrics)
        payloads = [b"%03d" % i * 10 for i in range(20)]
        for p in payloads:
            conn.send([bytearray(p)])
        accepted, _ = listener.accept()
        kind, name = decode_message(recv_message(accepted), {})
        assert (kind, name) == (MSG_HELLO, "src")
        reader = FrameReader(accepted)
        received = []
        while len(received) < len(payloads):
            batch = reader.recv_batch()
            assert batch is not None
            received.extend(bytes(b) for b in batch)
        assert received == payloads
        conn.close()
        accepted.close()
    listener.close()
    assert not errors
    hist = metrics.histogram("frames_per_syscall")
    assert hist.count >= 1 and hist.max > 1.0  # at least one real batch


def test_failed_peer_drops_are_counted_and_traced(ns):
    """After a peer becomes unreachable the connection keeps accepting
    messages (the engine must not block) but every dropped message is
    counted and traced — ISSUE 4's silent-drop fix."""
    metrics = MetricsRegistry()
    events = []
    errors = []
    failed = threading.Event()

    def on_error(peer, exc):
        errors.append((peer, exc))
        failed.set()

    with client(ns) as c:
        conn = PeerConnection(
            "ghost", c, hello_from="src", on_error=on_error,
            dial_deadline=0.2, metrics=metrics,
            trace=lambda kind, **fields: events.append((kind, fields)))
        conn.send([bytearray(b"first")])  # triggers the failing dial
        assert failed.wait(timeout=10)
        for _ in range(3):
            conn.send([bytearray(b"late")])
        _wait_for(lambda: metrics.counter("token_drops").value >= 3,
                  what="token_drops")
        conn.close()
    assert len(errors) == 1 and errors[0][0] == "ghost"
    assert metrics.counter("token_drops").value == 3
    drop_events = [f for kind, f in events if kind == "token_drop"]
    assert drop_events and sum(f["dropped"] for f in drop_events) == 3
    assert all(f["peer"] == "ghost" for f in drop_events)


# ---------------------------------------------------------------------------
# ConnectionPool
# ---------------------------------------------------------------------------

class _StubConn:
    def __init__(self):
        self.sent = []

    def send(self, segments):
        self.sent.append(segments)

    def close(self, flush_timeout=5.0):
        pass


def test_pool_send_hot_path_does_not_take_the_lock(ns):
    """Once a peer connection exists, ``send`` must not touch the pool
    lock — the engine calls it with its own lock held, and PR 2 paid a
    lock acquire per token here."""
    with client(ns) as c:
        pool = ConnectionPool(c, hello_from="src",
                              on_error=lambda peer, exc: None)
        stub = _StubConn()
        pool._peers["peer"] = stub
        done = threading.Event()

        def hot_send():
            pool.send("peer", [bytearray(b"x")])
            done.set()

        with pool._lock:  # a slow first-dial in another thread
            worker = threading.Thread(target=hot_send)
            worker.start()
            assert done.wait(timeout=2), \
                "pool.send blocked on the pool lock for a cached peer"
        worker.join()
        assert stub.sent == [[bytearray(b"x")]]


def test_pool_creates_peer_once_then_caches(ns):
    with client(ns) as c:
        pool = ConnectionPool(c, hello_from="src",
                              on_error=lambda peer, exc: None,
                              dial_deadline=0.1)
        stub = _StubConn()
        pool._peers["peer"] = stub
        assert pool.peer("peer") is stub
        pool.send("peer", [b"a"])
        pool.send("peer", [b"b"])
        assert stub.sent == [[b"a"], [b"b"]]
        assert pool.peer_names() == ["peer"]
        pool.close_all()
        assert pool.peer_names() == []
