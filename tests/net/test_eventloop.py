"""The selectors I/O core: vectored partial-write resumption, loop
wakeups, readiness-driven reads, event-loop peers, and the thread-census
reduction that motivates the whole module (ISSUE 6).

The hypothesis suite drives :class:`~repro.net.eventloop.VectoredSender`
against a mock socket whose ``sendmsg`` accepts an arbitrary byte count
per call (or raises ``EAGAIN``): whatever the kernel does to our writes,
the byte stream must stay bit-identical to the blocking sender's — frame
boundaries, FIFO order and payload bytes all survive.
"""

import socket
import threading
import time
import tracemalloc

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net import (
    EventLoopPeer,
    FrameReader,
    IOLoop,
    NameServer,
    NameServerClient,
    TransportPolicy,
    VectoredSender,
    eventloop_supported,
    recv_message,
    send_message,
)
from repro.net.protocol import MSG_HELLO, decode_message
from repro.serial import WireError, frame, gather
from repro.trace import MetricsRegistry


@pytest.fixture
def ns():
    server = NameServer().start()
    yield server
    server.stop()


def client(server):
    return NameServerClient(server.address)


def _wait_for(predicate, timeout=5.0, what="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {what}"
        time.sleep(0.01)


def test_eventloop_supported_on_this_platform():
    # CI and every dev box we target have epoll/kqueue + socketpair; the
    # fallback exists for platforms we cannot test here.
    assert eventloop_supported()


# ---------------------------------------------------------------------------
# VectoredSender: partial-write resumption (hypothesis)
# ---------------------------------------------------------------------------

class _FlakySocket:
    """A ``sendmsg`` that accepts an arbitrary byte count per call.

    Each entry of *decisions* scripts one call: ``0`` raises
    ``BlockingIOError`` (EAGAIN), ``n > 0`` accepts at most ``n`` bytes.
    Once the script runs out the socket accepts everything, so a pump
    loop always terminates.
    """

    def __init__(self, decisions):
        self.received = bytearray()
        self._decisions = list(decisions)
        self.syscalls = 0
        self.eagains = 0

    def sendmsg(self, iov):
        self.syscalls += 1
        cap = self._decisions.pop(0) if self._decisions else None
        if cap == 0:
            self.eagains += 1
            raise BlockingIOError
        total = sum(v.nbytes for v in iov)
        take = total if cap is None else min(cap, total)
        left = take
        for v in iov:
            if left <= 0:
                break
            chunk = v if v.nbytes <= left else v[:left]
            self.received += chunk
            left -= chunk.nbytes
        return take


_message = st.lists(st.binary(max_size=200), max_size=3)
_decisions = st.lists(st.integers(min_value=0, max_value=300), max_size=60)


@settings(deadline=None, max_examples=60,
          suppress_health_check=[HealthCheck.data_too_large])
@given(st.lists(_message, min_size=1, max_size=10), _decisions,
       st.booleans())
def test_vectored_sender_stream_is_bit_identical_under_partial_writes(
        messages, decisions, coalescing):
    """Random short writes and EAGAINs never corrupt or reorder the
    frame stream: the accepted bytes equal the blocking sender's output
    byte for byte."""
    expected = bytearray()
    sender = VectoredSender(coalescing=coalescing, max_batch_bytes=512)
    for message in messages:
        expected += gather(frame([bytearray(s) for s in message]))
        sender.push([bytearray(s) for s in message])
    sock = _FlakySocket(decisions)
    rounds = 0
    while not sender.pump(sock):
        rounds += 1
        assert rounds < 10_000, "pump never drained"
    assert bytes(sock.received) == bytes(expected)
    assert sender.pending_frames == 0
    assert sender.pending_bytes == 0
    # Every EAGAIN and every short sendmsg is a partial write.
    assert sender.partial_writes >= sock.eagains


@settings(deadline=None, max_examples=30)
@given(st.lists(_message, min_size=1, max_size=6), _decisions)
def test_vectored_sender_frames_survive_reframing(messages, decisions):
    """The accepted stream re-parses into the original payloads in FIFO
    order (frame-boundary integrity, not just byte equality)."""
    sender = VectoredSender(coalescing=True)
    for message in messages:
        sender.push([bytearray(s) for s in message])
    sock = _FlakySocket(decisions)
    while not sender.pump(sock):
        pass
    out_sock, in_sock = socket.socketpair()
    out_sock.sendall(sock.received)
    out_sock.close()
    reader = FrameReader(in_sock, recv_bytes=256)
    received = []
    while True:
        batch = reader.recv_batch()
        if batch is None:
            break
        received.extend(batch)
    in_sock.close()
    assert [bytes(r) for r in received] == \
        [b"".join(message) for message in messages]


def test_vectored_sender_unbatched_mode_is_frame_per_syscall():
    sender = VectoredSender(coalescing=False)
    for i in range(5):
        sender.push([bytearray(b"%d" % i * 10)])
    sock = _FlakySocket([])
    assert sender.pump(sock)
    assert sock.syscalls == 5
    frames, syscalls = sender.take_episode()
    assert (frames, syscalls) == (5, 5)


def test_vectored_sender_coalesces_into_one_syscall():
    sender = VectoredSender(coalescing=True)
    for i in range(20):
        sender.push([bytearray(b"%02d" % i * 8)])
    sock = _FlakySocket([])
    assert sender.pump(sock)
    assert sock.syscalls == 1
    frames, syscalls = sender.take_episode()
    assert frames == 20 and syscalls == 1


# ---------------------------------------------------------------------------
# FrameReader: non-blocking reads + staging-buffer reuse
# ---------------------------------------------------------------------------

def test_recv_ready_drains_only_what_is_there():
    out_sock, in_sock = socket.socketpair()
    in_sock.setblocking(False)
    reader = FrameReader(in_sock, recv_bytes=256)
    assert reader.recv_ready() == ([], False)  # nothing yet, no block
    payloads = [b"a" * 10, b"b" * 2000, b"c" * 3]  # middle one oversized
    for p in payloads:
        send_message(out_sock, [bytearray(p)])
    received = []
    _wait_for(lambda: (received.extend(reader.recv_ready()[0]) or
                       len(received) == len(payloads)),
              what="all frames")
    assert [bytes(r) for r in received] == payloads
    out_sock.close()
    _wait_for(lambda: reader.recv_ready()[1], what="eof")
    in_sock.close()


def test_recv_ready_raises_on_eof_mid_frame():
    out_sock, in_sock = socket.socketpair()
    in_sock.setblocking(False)
    wire = bytes(gather(frame(b"x" * 100)))
    out_sock.sendall(wire[:-5])
    out_sock.close()
    reader = FrameReader(in_sock, recv_bytes=64)
    with pytest.raises(WireError, match="closed"):
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            reader.recv_ready()
            time.sleep(0.01)
    in_sock.close()


def test_framereader_oversized_path_no_per_call_allocation_growth():
    """ISSUE 6 satellite: the reader must reuse its staging buffer across
    oversized frames instead of growing per call (tracemalloc-verified)."""
    out_sock, in_sock = socket.socketpair()
    payload = bytearray(b"z" * (32 * 1024))  # one buffer, sent repeatedly
    warm, measured = 5, 40

    def sender():
        for _ in range(warm + measured):
            send_message(out_sock, [payload])
        out_sock.close()

    thread = threading.Thread(target=sender)
    thread.start()
    reader = FrameReader(in_sock, recv_bytes=1024)
    try:
        for _ in range(warm):
            assert reader.recv_batch()
        staging = reader._staging
        tracemalloc.start()
        base = tracemalloc.get_traced_memory()[0]
        for _ in range(measured):
            batch = reader.recv_batch()
            assert batch and len(batch[0]) == len(payload)
            del batch
        assert reader.recv_batch() is None  # clean EOF; sender is done
        grown = tracemalloc.get_traced_memory()[0] - base
        tracemalloc.stop()
        # A leaked/grown buffer per call would be ~32 KiB/call here;
        # steady state must stay flat (allow noise well below one frame).
        assert grown < len(payload) // 2, f"reader grew {grown} bytes"
        assert reader._staging is staging  # same buffer, never reallocated
    finally:
        thread.join()
        in_sock.close()


# ---------------------------------------------------------------------------
# IOLoop
# ---------------------------------------------------------------------------

def test_ioloop_call_runs_on_loop_thread_and_counts_wakeups():
    metrics = MetricsRegistry()
    loop = IOLoop("unit", metrics=metrics).start()
    try:
        seen = []
        done = threading.Event()

        def record():
            seen.append(threading.current_thread().name)
            done.set()

        loop.call(record)
        assert done.wait(timeout=5)
        assert seen == ["dps-io:unit"]
        assert metrics.counter("io_loop_wakeups").value >= 1
    finally:
        loop.close()
    assert loop.closed


def test_ioloop_call_after_close_runs_inline():
    loop = IOLoop("dead").start()
    loop.close()
    ran = []
    loop.call(lambda: ran.append(threading.current_thread().name))
    assert ran == [threading.current_thread().name]


def test_ioloop_no_lost_wakeup_under_reentrant_calls():
    """Regression: a call() made from inside a loop callback sends a
    wake byte that the same pass's self-pipe drain consumes.  If the
    wake-pending flag survives that pass, the next call() from another
    thread skips its wake and the loop blocks in select() over queued
    work — observed as a multiprocess dial whose attach callback sat
    queued for an entire 60s run timeout."""
    loop = IOLoop("wakeup").start()
    try:
        for _ in range(200):
            fired = threading.Event()

            def outer():
                # Mid-pass re-entrant call: byte sent now, consumed by
                # this very pass's _on_wake.
                loop.call(lambda: None)

            loop.call(outer)
            # The racing external call must still wake the loop.
            loop.call(fired.set)
            assert fired.wait(timeout=5), "loop lost a wakeup"
    finally:
        loop.close()


def test_ioloop_add_connection_delivers_frames_then_eof():
    loop = IOLoop("rx").start()
    out_sock, in_sock = socket.socketpair()
    got, closed = [], []
    finished = threading.Event()
    loop.add_connection(
        in_sock, recv_bytes=256,
        on_frames=lambda frames: got.extend(frames),
        on_close=lambda exc: (closed.append(exc), finished.set()))
    payloads = [b"a" * 10, b"b" * 4000, b"c" * 2]  # middle one oversized
    for p in payloads:
        send_message(out_sock, [bytearray(p)])
    out_sock.close()
    assert finished.wait(timeout=5)
    assert [bytes(g) for g in got] == payloads
    assert closed == [None]
    loop.close()


def test_ioloop_add_connection_reports_broken_stream():
    loop = IOLoop("rx-err").start()
    out_sock, in_sock = socket.socketpair()
    closed = []
    finished = threading.Event()
    loop.add_connection(
        in_sock, recv_bytes=256,
        on_frames=lambda frames: None,
        on_close=lambda exc: (closed.append(exc), finished.set()))
    wire = bytes(gather(frame(b"y" * 50)))
    out_sock.sendall(wire[:-3])  # die mid-payload
    out_sock.close()
    assert finished.wait(timeout=5)
    assert len(closed) == 1 and isinstance(closed[0], WireError)
    loop.close()


# ---------------------------------------------------------------------------
# EventLoopPeer
# ---------------------------------------------------------------------------

def test_eventloop_peer_coalesces_queued_messages(ns):
    """Mirror of the PeerConnection coalescing test: messages queued
    before the dial lands arrive in order, amortized over few syscalls."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    metrics = MetricsRegistry()
    errors = []
    loop = IOLoop("peer-test", metrics=metrics).start()
    with client(ns) as owner, client(ns) as c:
        conn = EventLoopPeer(
            "sink", c, loop=loop, hello_from="src",
            on_error=lambda peer, exc: errors.append((peer, exc)),
            transport=TransportPolicy(shm_enabled=False),
            metrics=metrics)
        payloads = [b"%03d" % i * 10 for i in range(20)]
        for p in payloads:
            conn.send([bytearray(p)])
        # Register only now: the dial retry loop guarantees every message
        # above is still queued when the connection lands, so they all
        # drain through one coalesced flush.
        owner.register("sink", *listener.getsockname()[:2])
        accepted, _ = listener.accept()
        kind, name = decode_message(recv_message(accepted), {})
        assert (kind, name) == (MSG_HELLO, "src")
        reader = FrameReader(accepted)
        received = []
        while len(received) < len(payloads):
            batch = reader.recv_batch()
            assert batch is not None
            received.extend(bytes(b) for b in batch)
        assert received == payloads
        conn.close()
        accepted.close()
    listener.close()
    loop.close()
    assert not errors
    hist = metrics.histogram("frames_per_syscall")
    assert hist.count >= 1 and hist.max > 1.0  # at least one real batch


def test_eventloop_peer_failure_counts_drops_and_reports_once(ns):
    """An unreachable peer fails exactly once through on_error (the
    handle_kernel_down entry point) and every queued/subsequent message
    is a counted, traced drop — never a silent loss or a block."""
    metrics = MetricsRegistry()
    events = []
    errors = []
    failed = threading.Event()
    loop = IOLoop("ghost-test", metrics=metrics).start()

    def on_error(peer, exc):
        errors.append((peer, exc))
        failed.set()

    with client(ns) as c:
        conn = EventLoopPeer(
            "ghost", c, loop=loop, hello_from="src", on_error=on_error,
            dial_deadline=0.2, metrics=metrics,
            trace=lambda kind, **fields: events.append((kind, fields)))
        conn.send([bytearray(b"first")])  # triggers the failing dial
        assert failed.wait(timeout=10)
        for _ in range(3):
            conn.send([bytearray(b"late")])
        _wait_for(lambda: metrics.counter("token_drops").value >= 4,
                  what="token_drops")
        conn.close()
    loop.close()
    assert len(errors) == 1 and errors[0][0] == "ghost"
    # "first" was still undelivered at failure time: it drops too.
    assert metrics.counter("token_drops").value == 4
    drop_events = [f for kind, f in events if kind == "token_drop"]
    assert drop_events and sum(f["dropped"] for f in drop_events) == 4
    assert all(f["peer"] == "ghost" for f in drop_events)


def test_eventloop_peer_broken_pipe_reaches_on_error(ns):
    """Writer-side BrokenPipeError propagates through on_error — the
    hook DistributedKernel routes into idempotent handle_kernel_down."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    errors = []
    failed = threading.Event()
    metrics = MetricsRegistry()
    loop = IOLoop("pipe-test").start()
    with client(ns) as owner, client(ns) as c:
        owner.register("dying", *listener.getsockname()[:2])
        conn = EventLoopPeer(
            "dying", c, loop=loop, hello_from="src",
            on_error=lambda peer, exc: (errors.append((peer, exc)),
                                        failed.set()),
            transport=TransportPolicy(shm_enabled=False), metrics=metrics)
        conn.send([bytearray(b"hello")])
        accepted, _ = listener.accept()
        assert recv_message(accepted) is not None  # HELLO
        # Kill the receiving side outright; subsequent writes must fail.
        accepted.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            b"\x01\x00\x00\x00\x00\x00\x00\x00")
        accepted.close()
        deadline = time.monotonic() + 10
        while not failed.is_set() and time.monotonic() < deadline:
            conn.send([bytearray(b"x" * 4096)])
            time.sleep(0.01)
        assert failed.wait(timeout=1)
        assert errors and errors[0][0] == "dying"
        assert isinstance(errors[0][1], OSError)
        conn.close()
    listener.close()
    loop.close()
