"""The adaptive event-loop flush window (ISSUE 9).

Data frames queued inside ``TransportPolicy.flush_delay_us`` share one
vectored write; control frames (acks, heartbeats, results — anything
whose protocol kind byte is not ``MSG_DATA``) bypass the window and
flush everything queued ahead of them.  The window also adapts itself
away: consecutive single-frame expiries disable it until a multi-frame
backlog proves coalescing pays again.
"""

import socket
import threading
import time

import pytest

from repro.net import (
    EventLoopPeer,
    FrameReader,
    IOLoop,
    NameServer,
    NameServerClient,
    TransportPolicy,
    recv_message,
)
from repro.net.eventloop import _WINDOW_MISS_LIMIT
from repro.net.protocol import MSG_ACK, MSG_DATA
from repro.trace import MetricsRegistry


@pytest.fixture
def ns():
    server = NameServer().start()
    yield server
    server.stop()


def _wait_for(predicate, timeout=5.0, what="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {what}"
        time.sleep(0.005)


def _data_frame(i):
    return [bytearray([MSG_DATA]) + b"payload-%03d" % i]


def _control_frame():
    # Acks stand in for the whole control class (heartbeat-style lease
    # frames, results, barriers): anything whose kind is not MSG_DATA.
    return [bytearray([MSG_ACK]) + b"ack"]


class _Sink:
    """An accepting endpoint that records frame arrival times."""

    def __init__(self):
        self.listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(1)
        self.address = self.listener.getsockname()[:2]
        self.frames = []
        self.arrivals = []
        self._accepted = None
        self._thread = None

    def run(self):
        self._accepted, _ = self.listener.accept()
        assert recv_message(self._accepted) is not None  # HELLO
        reader = FrameReader(self._accepted)
        while True:
            batch = reader.recv_batch()
            if batch is None:
                return
            now = time.monotonic()
            for frame_bytes in batch:
                self.frames.append(bytes(frame_bytes))
                self.arrivals.append(now)

    def start(self):
        self._thread = threading.Thread(target=self.run, daemon=True)
        self._thread.start()
        return self

    def close(self):
        if self._accepted is not None:
            self._accepted.close()
        self.listener.close()
        if self._thread is not None:
            self._thread.join(timeout=5)


def _peer(ns, sink, name, flush_delay_us, metrics=None, trace=None):
    owner = NameServerClient(ns.address)
    owner.register(name, *sink.address)
    loop = IOLoop(f"flush-{name}", metrics=metrics).start()
    conn = EventLoopPeer(
        name, NameServerClient(ns.address), loop=loop, hello_from="src",
        on_error=lambda peer, exc: None,
        transport=TransportPolicy(shm_enabled=False,
                                  flush_delay_us=flush_delay_us),
        metrics=metrics, trace=trace)
    return owner, loop, conn


def test_window_coalesces_data_frames(ns):
    """Frames sent inside the window arrive together after it expires,
    and the hit is counted and traced."""
    metrics = MetricsRegistry()
    events = []
    sink = _Sink().start()
    owner, loop, conn = _peer(
        ns, sink, "coalesce", flush_delay_us=30_000, metrics=metrics,
        trace=lambda kind, **fields: events.append((kind, fields)))
    try:
        conn.send(_data_frame(0))
        # Wait for the dial to land (first frame flushes eagerly: the
        # sender had no backlog when the window armed is fine — what
        # matters is the steady state below).
        _wait_for(lambda: len(sink.frames) >= 1, what="dial + first frame")
        n = 6
        for i in range(1, n + 1):
            conn.send(_data_frame(i))
            time.sleep(0.002)  # all inside the 30ms window
        _wait_for(lambda: len(sink.frames) >= n + 1, what="windowed frames")
        assert sink.frames == [bytes(_data_frame(i)[0]) for i in range(n + 1)]
        hits = [f for kind, f in events if kind == "flush_window"]
        assert hits and hits[0]["peer"] == "coalesce"
        assert any(f["frames"] >= 2 for f in hits)
        assert metrics.counter("flush_window_hits").value >= 1
        # The coalesced flush must land as fewer syscalls than frames.
        spread = max(sink.arrivals[1:]) - min(sink.arrivals[1:])
        assert spread < 5.0  # sanity; real assertion is the hit above
    finally:
        conn.close()
        loop.close()
        sink.close()
        owner.close()


def test_control_frames_bypass_window(ns):
    """Regression (ISSUE 9 satellite): heartbeat/ack RTT must not grow
    with flush_delay_us.  With a full-second window, a control frame
    still arrives in milliseconds."""
    sink = _Sink().start()
    owner, loop, conn = _peer(ns, sink, "bypass", flush_delay_us=1_000_000)
    try:
        conn.send(_control_frame())  # rides the dial
        _wait_for(lambda: len(sink.frames) >= 1, what="dial + hello")
        t0 = time.monotonic()
        conn.send(_control_frame())
        _wait_for(lambda: len(sink.frames) >= 2, what="bypassed heartbeat")
        elapsed = time.monotonic() - t0
        assert elapsed < 0.5, (
            f"control frame took {elapsed:.3f}s — it sat in the "
            f"1s flush window instead of bypassing it")
    finally:
        conn.close()
        loop.close()
        sink.close()
        owner.close()


def test_control_frame_flushes_queued_data_ahead_of_it(ns):
    """FIFO holds: a data frame parked in the window is flushed along
    with (and before) the control frame that bypasses it."""
    sink = _Sink().start()
    owner, loop, conn = _peer(ns, sink, "fifo", flush_delay_us=1_000_000)
    try:
        conn.send(_data_frame(0))
        _wait_for(lambda: len(sink.frames) >= 1, what="dial")
        conn.send(_data_frame(1))  # parks in the window
        time.sleep(0.05)
        assert len(sink.frames) == 1  # still held
        conn.send(_control_frame())  # must flush both, in order
        _wait_for(lambda: len(sink.frames) >= 3, what="flush-through")
        assert sink.frames[1] == bytes(_data_frame(1)[0])
        assert sink.frames[2] == bytes(_control_frame()[0])
    finally:
        conn.close()
        loop.close()
        sink.close()
        owner.close()


def test_window_disables_after_single_frame_misses_and_rearms(ns):
    """Adaptivity: _WINDOW_MISS_LIMIT single-frame expiries switch the
    window off (request/response traffic should not pay the delay); a
    multi-frame backlog at an eager flush re-arms it."""
    sink = _Sink().start()
    owner, loop, conn = _peer(ns, sink, "adapt", flush_delay_us=10_000)
    try:
        conn.send(_data_frame(0))
        _wait_for(lambda: len(sink.frames) >= 1, what="dial")
        # Lone frames, each given time for its window to expire alone.
        sent = 1
        for _ in range(_WINDOW_MISS_LIMIT):
            conn.send(_data_frame(sent))
            sent += 1
            _wait_for(lambda: len(sink.frames) >= sent, what="lone frame")
            time.sleep(0.02)
        _wait_for(lambda: not conn._window_active, what="window disable")
        # Disabled: a lone data frame now flushes eagerly (no 10ms stall).
        t0 = time.monotonic()
        conn.send(_data_frame(sent))
        sent += 1
        _wait_for(lambda: len(sink.frames) >= sent, what="eager frame")
        assert time.monotonic() - t0 < 0.01 + 0.2
        # A burst creates a multi-frame backlog in one eager flush,
        # which re-arms the window for subsequent passes.
        for _ in range(12):
            conn.send(_data_frame(sent))
            sent += 1
        _wait_for(lambda: len(sink.frames) >= sent, what="burst")
        _wait_for(lambda: conn._window_active, what="window re-arm")
    finally:
        conn.close()
        loop.close()
        sink.close()
        owner.close()


def test_zero_delay_disables_window(ns):
    sink = _Sink().start()
    owner, loop, conn = _peer(ns, sink, "zero", flush_delay_us=0)
    try:
        assert not conn._window_active
        assert conn._flush_delay == 0
        for i in range(5):
            conn.send(_data_frame(i))
        _wait_for(lambda: len(sink.frames) >= 5, what="unwindowed frames")
        assert conn._flush_timer is None
    finally:
        conn.close()
        loop.close()
        sink.close()
        owner.close()


def test_zero_delay_still_coalesces_at_quiescence(ns):
    """flush_delay_us=0 disables the *timer*, not coalescing: frames
    queued within one loop burst share a flush at the quiescent point,
    so a burst of sends lands as one multi-frame syscall episode."""
    metrics = MetricsRegistry()
    sink = _Sink().start()
    owner, loop, conn = _peer(ns, sink, "quiesce", flush_delay_us=0,
                              metrics=metrics)
    try:
        conn.send(_data_frame(0))
        _wait_for(lambda: len(sink.frames) >= 1, what="dial")
        n = 8
        # All sends happen inside one loop callback, so their pumps
        # drain in the same burst and the pass-end flush sees them all.
        loop.call(lambda: [conn.send(_data_frame(i))
                           for i in range(1, n + 1)])
        _wait_for(lambda: len(sink.frames) >= n + 1, what="burst frames")
        assert sink.frames == [bytes(_data_frame(i)[0])
                               for i in range(n + 1)]
        fps = metrics.histogram("frames_per_syscall")
        assert fps.count and fps.total / fps.count > 1.0, (
            "a same-burst send batch should share a vectored flush")
    finally:
        conn.close()
        loop.close()
        sink.close()
        owner.close()


def test_close_cancels_pending_window_timer(ns):
    """A peer closed with a parked frame flushes it (close implies
    urgency) and leaves no timer behind."""
    sink = _Sink().start()
    owner, loop, conn = _peer(ns, sink, "closer", flush_delay_us=1_000_000)
    try:
        conn.send(_data_frame(0))
        _wait_for(lambda: len(sink.frames) >= 1, what="dial")
        conn.send(_data_frame(1))  # parks in the 1s window
        time.sleep(0.05)
        conn.close(flush_timeout=5.0)  # must not wait the full second
        _wait_for(lambda: len(sink.frames) >= 2, what="flush on close")
        assert conn._flush_timer is None
    finally:
        loop.close()
        sink.close()
        owner.close()


# ---------------------------------------------------------------------------
# IOLoop.at_pass_end / call_later
# ---------------------------------------------------------------------------

def test_at_pass_end_runs_after_burst_and_dedups():
    """Pass-end hooks are carried across back-to-back zero-timeout
    passes and run once, last registration per key winning, right
    before the loop blocks."""
    loop = IOLoop("passend").start()
    order = []
    done = threading.Event()
    try:
        def chain(i):
            order.append(f"c{i}")
            loop.at_pass_end("k", lambda: order.append("stale"))
            loop.at_pass_end("k", lambda: (order.append("flush"),
                                           done.set()))
            if i < 2:
                loop.call(lambda: chain(i + 1))

        loop.call(lambda: chain(0))
        assert done.wait(timeout=5)
        assert order == ["c0", "c1", "c2", "flush"]
    finally:
        loop.close()

def test_call_later_fires_in_order():
    loop = IOLoop("timers").start()
    fired = []
    done = threading.Event()
    try:
        def arm():
            loop.call_later(0.05, lambda: (fired.append("b"), done.set()))
            loop.call_later(0.01, lambda: fired.append("a"))

        loop.call(arm)
        assert done.wait(timeout=5)
        assert fired == ["a", "b"]
    finally:
        loop.close()


def test_call_later_cancel_is_a_noop_fire():
    loop = IOLoop("cancel").start()
    fired = []
    done = threading.Event()
    try:
        def arm():
            t = loop.call_later(0.01, lambda: fired.append("cancelled"))
            t.cancel()
            loop.call_later(0.05, lambda: (fired.append("kept"), done.set()))

        loop.call(arm)
        assert done.wait(timeout=5)
        assert fired == ["kept"]
    finally:
        loop.close()
