"""MultiprocessEngine behaviour beyond the cross-engine contract:
scatter calls between applications in different processes, dead-kernel
detection, lifecycle rules and thread-state persistence."""

import os
import threading
import time

import pytest

from repro.core import (
    ConstantRoute,
    DpsThread,
    FlowControlPolicy,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    MergeOperation,
    RoundRobinRoute,
    SplitOperation,
    ThreadCollection,
)
from repro.net.connections import TransportPolicy
from repro.runtime import MultiprocessEngine, ScheduleError
from repro.serial import SimpleToken

from tests.runtime.test_scatter_calls import (
    ClientMerge,
    ClientProcess,
    ClientScatterCall,
    ClientThread,
    SQuery,
    ServerThread,
    server_scatter_graph,
)


def test_scatter_call_across_processes():
    """Inter-application split/merge (paper §6) with the server shards
    and the client pipeline in different OS processes."""
    servers = ThreadCollection(ServerThread, "mp-srv").map(
        "node01 node02 node03")
    scatter_graph = server_scatter_graph(servers, "mpsv.scatter")

    clients = ThreadCollection(ClientThread, "mp-cli").map("node04 node05")
    call_cls = type("ClientScatterCall_mp", (ClientScatterCall,),
                    {"service": "mpsv.scatter"})
    client_graph = Flowgraph(
        FlowgraphNode(call_cls, clients, ConstantRoute)
        >> FlowgraphNode(ClientProcess, clients, RoundRobinRoute)
        >> FlowgraphNode(ClientMerge, clients, ConstantRoute),
        "client-mpsv",
    )
    with MultiprocessEngine() as engine:
        engine.register_graph(scatter_graph)
        engine.register_graph(client_graph)
        assert len(engine.kernel_names) == 5
        answer = engine.run(client_graph, SQuery(1), timeout=60)
    # shards 0..2 produce values 100..102, client multiplies by 10
    assert answer.items == 3
    assert answer.total == (1000 + 1010 + 1020)


class MpJob(SimpleToken):
    def __init__(self, n=0):
        self.n = n


class MpItem(SimpleToken):
    def __init__(self, value=0):
        self.value = value


class MpSum(SimpleToken):
    def __init__(self, total=0):
        self.total = total


class MpMain(DpsThread):
    pass


class MpWork(DpsThread):
    def __init__(self):
        self.seen = 0


class MpFan(SplitOperation):
    thread_type = MpMain
    in_types = (MpJob,)
    out_types = (MpItem,)

    def execute(self, tok):
        for i in range(tok.n):
            self.post(MpItem(i))


class MpCount(LeafOperation):
    """Echoes the worker's cumulative token count — state probe."""

    thread_type = MpWork
    in_types = (MpItem,)
    out_types = (MpItem,)

    def execute(self, tok):
        self.thread.seen += 1
        self.post(MpItem(self.thread.seen))


class MpCollect(MergeOperation):
    thread_type = MpMain
    in_types = (MpItem,)
    out_types = (MpSum,)

    def execute(self, tok):
        total = 0
        while tok is not None:
            total += tok.value
            tok = yield self.next_token()
        yield self.post(MpSum(total))


def counting_graph(name, worker_mapping="node02"):
    main = ThreadCollection(MpMain, f"{name}-main").map("node01")
    work = ThreadCollection(MpWork, f"{name}-work").map(worker_mapping)
    return Flowgraph(
        FlowgraphNode(MpFan, main)
        >> FlowgraphNode(MpCount, work, ConstantRoute)
        >> FlowgraphNode(MpCollect, main),
        name,
    )


def test_eventloop_mode_thread_census():
    """The point of the I/O core: after a run in the default eventloop
    mode, the console kernel owns one ``dps-io:`` loop thread and zero
    per-peer ``dps-send:`` / per-connection ``dps-recv:`` threads."""
    g = counting_graph("census-ev")
    with MultiprocessEngine() as engine:
        engine.register_graph(g)
        assert engine.run(g, MpJob(2), timeout=60).total == 1 + 2
        names = [t.name for t in threading.enumerate()]
        assert any(n.startswith("dps-io:") for n in names)
        assert not any(n.startswith("dps-send:") for n in names)
        assert not any(n.startswith("dps-recv:") for n in names)


def test_threads_mode_thread_census():
    """The PR 4 fallback shape survives behind io_mode="threads": writer
    threads per peer, no loop thread."""
    g = counting_graph("census-th")
    transport = TransportPolicy(io_mode="threads")
    with MultiprocessEngine(transport=transport) as engine:
        engine.register_graph(g)
        assert engine.run(g, MpJob(2), timeout=60).total == 1 + 2
        names = [t.name for t in threading.enumerate()]
        assert any(n.startswith("dps-send:") for n in names)
        assert not any(n.startswith("dps-io:") for n in names)


def test_thread_state_persists_across_runs():
    """DPS thread state lives in the kernel process and must survive
    successive activations (distributed data structures, paper §2)."""
    g = counting_graph("persist")
    with MultiprocessEngine() as engine:
        engine.register_graph(g)
        assert engine.run(g, MpJob(3), timeout=60).total == 1 + 2 + 3
        # same worker process, counter keeps growing
        assert engine.run(g, MpJob(3), timeout=60).total == 4 + 5 + 6


def test_register_after_start_rejected():
    g1 = counting_graph("early")
    g2 = counting_graph("late")
    with MultiprocessEngine() as engine:
        engine.register_graph(g1)
        engine.run(g1, MpJob(1), timeout=60)
        with pytest.raises(ScheduleError, match="before the first run"):
            engine.register_graph(g2)


def test_run_after_shutdown_rejected():
    g = counting_graph("closed")
    engine = MultiprocessEngine()
    engine.register_graph(g)
    engine.run(g, MpJob(1), timeout=60)
    engine.shutdown()
    with pytest.raises(ScheduleError, match="shut down"):
        engine.run(g, MpJob(1), timeout=60)


def test_kernel_names_cover_all_mappings():
    engine = MultiprocessEngine()
    engine.register_graph(counting_graph("names", "node02 node03"))
    assert engine.kernel_names == ["node01", "node02", "node03"]


class MpDie(LeafOperation):
    """Kills the whole kernel process — not just the worker thread."""

    thread_type = MpWork
    in_types = (MpItem,)
    out_types = (MpItem,)

    def execute(self, tok):
        os._exit(17)


def test_dead_kernel_process_fails_caller():
    """A kernel process dying mid-run must surface as an error on the
    console's run() instead of hanging until the timeout."""
    main = ThreadCollection(MpMain, "die-main").map("node01")
    work = ThreadCollection(MpWork, "die-work").map("node02")
    g = Flowgraph(
        FlowgraphNode(MpFan, main)
        >> FlowgraphNode(MpDie, work, ConstantRoute)
        >> FlowgraphNode(MpCollect, main),
        "die",
    )
    with MultiprocessEngine() as engine:
        engine.register_graph(g)
        t0 = time.monotonic()
        with pytest.raises((ScheduleError, ConnectionError),
                           match="node02|died"):
            engine.run(g, MpJob(2), timeout=60)
        assert time.monotonic() - t0 < 30  # detected, not timed out
