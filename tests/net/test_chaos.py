"""End-to-end failure recovery on the multiprocess engine.

The acceptance scenario of the fault-tolerance work: run a real
application, kill one kernel process mid-phase with a deterministic
:class:`~repro.net.recovery.FaultPolicy`, and require the run to finish
with results **bit-identical** to the fault-free run — the journal
replays exactly the lost tokens, the merge-side dedup drops exactly the
duplicated ones.

Both applications are chosen so the dead kernel hosts only stateless
leaf instances (the documented recovery contract):

- ring: ``node03`` hosts one forwarding hop; split and merge live on
  ``node01``.
- Game of Life: the stateless compute threads are mapped onto a
  dedicated ``node05`` kernel via ``compute_nodes=``; the band-owning
  exchange threads stay on the surviving workers.
"""

import numpy as np
import pytest

from repro.apps.gameoflife import DistributedGameOfLife, life_step
from repro.apps.ring import RingJobToken, build_ring_graph
from repro.net.connections import TransportPolicy
from repro.net.recovery import FaultPolicy
from repro.runtime import MultiprocessEngine

RING_NODES = ["node01", "node02", "node03", "node04"]
BLOCK_BYTES = 2048
N_BLOCKS = 24


def _run_ring(faults=None, recover=False, io_mode="eventloop"):
    """One complete ring run on a fresh engine; returns (done, result)."""
    graph = build_ring_graph(RING_NODES)
    transport = TransportPolicy(io_mode=io_mode)
    with MultiprocessEngine(recover=recover, faults=faults,
                            transport=transport) as engine:
        engine.register_graph(graph)
        done = engine.run(graph, RingJobToken(BLOCK_BYTES, N_BLOCKS),
                          timeout=120)
        result = engine.last_result
    return done, result


@pytest.mark.parametrize("io_mode", ["eventloop", "threads"])
def test_ring_survives_kernel_kill_bit_identical(io_mode):
    """Kill the node03 hop before its 5th block: the journal at the
    node01 split must replay the lost blocks onto the remapped hop and
    the sink must still count each block exactly once.

    Runs in both I/O modes: the split-boundary replay guarantee must
    hold whether the broken pipe to the dead kernel is first seen by a
    writer thread or by the event loop's non-blocking pump.
    """
    baseline, base_result = _run_ring(io_mode=io_mode)
    assert base_result.recovered is False
    assert base_result.replayed_tokens == 0

    faults = FaultPolicy(kill_kernel="node03", kill_after_messages=5)
    done, result = _run_ring(faults=faults, recover=True, io_mode=io_mode)

    assert (done.blocks, done.received_bytes) == \
        (baseline.blocks, baseline.received_bytes)
    assert done.blocks == N_BLOCKS
    assert done.received_bytes == N_BLOCKS * BLOCK_BYTES
    assert result.recovered is True
    assert result.replayed_tokens > 0


def test_ring_fault_free_run_reports_no_recovery():
    """With recovery armed but no fault injected, the journal/dedup
    machinery must be invisible in the result."""
    done, result = _run_ring(recover=True)
    assert done.blocks == N_BLOCKS
    assert result.recovered is False
    assert result.replayed_tokens == 0


GOL_STEPS = 4


def _gol_world():
    rng = np.random.RandomState(42)
    return (rng.rand(24, 16) < 0.35).astype(np.uint8)


def _reference_world(world, steps):
    for _ in range(steps):
        world = life_step(world)
    return world


def _run_gol(faults=None, recover=False):
    """Four improved-graph iterations; returns (final_world, result)."""
    with MultiprocessEngine(recover=recover, faults=faults) as engine:
        game = DistributedGameOfLife(
            engine, _gol_world(), ["node01", "node02"],
            compute_nodes=["node05"])
        game.load()
        for _ in range(GOL_STEPS):
            game.step(improved=True)
        final = game.gather()
        result = engine.last_result
    return final, result


def test_gameoflife_survives_compute_kernel_kill():
    """Kill the dedicated compute kernel mid-step-2 (it has processed 2
    center commands, dies before the 3rd).  The exchange threads' merges
    are mid-group at that point; replay must re-drive only the lost
    center computation and the final world must match the sequential
    reference bit for bit."""
    reference = _reference_world(_gol_world(), GOL_STEPS)

    faults = FaultPolicy(kill_kernel="node05", kill_after_messages=3)
    final, result = _run_gol(faults=faults, recover=True)

    assert np.array_equal(final, reference)
    assert result.recovered is True
    assert result.replayed_tokens > 0


def test_gameoflife_fault_free_matches_reference_with_recovery_on():
    reference = _reference_world(_gol_world(), GOL_STEPS)
    final, result = _run_gol(recover=True)
    assert np.array_equal(final, reference)
    assert result.recovered is False
    assert result.replayed_tokens == 0
