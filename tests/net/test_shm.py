"""Shared-memory lane: arena allocator, descriptor rewrite, reassembly.

Everything here exercises a sender/receiver *pair inside one process* —
the memory model (flag byte handshake, FIFO ring reclaim) is identical
across processes because ``multiprocessing.shared_memory`` maps the same
pages; the cross-process path is covered by the multiprocess smoke and
cross-engine integration tests.
"""

import pytest

from repro.net import ShmReceiver, ShmSender, host_fingerprint
from repro.net import protocol as P
from repro.serial import gather
from repro.trace import MetricsRegistry


def _pair(arena_bytes=1 << 16, threshold=256, metrics=None):
    sender = ShmSender(arena_bytes=arena_bytes, threshold=threshold,
                       metrics=metrics)
    receiver = ShmReceiver(sender.name, sender.size)
    return sender, receiver


@pytest.fixture
def lane():
    sender, receiver = _pair()
    yield sender, receiver
    receiver.close()
    sender.destroy()


def test_host_fingerprint_stable_and_nonempty():
    fp = host_fingerprint()
    assert fp and fp == host_fingerprint()
    assert ":" in fp  # hostname:boot_id


def test_place_and_reassemble_roundtrip(lane):
    sender, receiver = lane
    payload = bytes(range(256)) * 4
    placed = sender.place(memoryview(payload))
    assert placed is not None
    block, n = placed
    assert n == len(payload)
    out = receiver.reassemble([("shm", block, n)])
    assert bytes(out) == payload


def test_reassemble_clears_flag_and_sender_reclaims(lane):
    sender, receiver = lane
    placed = sender.place(memoryview(b"x" * 512))
    assert len(sender._pending) == 1
    receiver.reassemble([("shm", placed[0], placed[1])])
    sender._reclaim()
    assert not sender._pending  # block handed back


def test_arena_full_returns_none_until_consumed(lane):
    sender, receiver = lane
    # Fill the arena with blocks the receiver has not consumed yet.
    blocks = []
    while True:
        placed = sender.place(memoryview(b"y" * 4096))
        if placed is None:
            break
        blocks.append(placed)
    assert len(blocks) >= 2
    # Consuming from the tail frees space; two blocks guarantee a fit
    # even with the allocator's strict head≠tail inequalities.
    receiver.reassemble([("shm",) + blocks[0]])
    receiver.reassemble([("shm",) + blocks[1]])
    assert sender.place(memoryview(b"z" * 4096)) is not None


def test_ring_wraps_without_corrupting_in_flight_blocks(lane):
    sender, receiver = lane
    import random
    rng = random.Random(7)
    outstanding = []
    for round_no in range(200):
        payload = bytes([rng.randrange(256)]) * rng.randrange(300, 3000)
        placed = sender.place(memoryview(payload))
        if placed is None:
            # Drain the oldest block and retry; FIFO order mirrors the
            # real receiver consuming descriptor frames in order.
            block, expect = outstanding.pop(0)
            assert bytes(receiver.reassemble([("shm",) + block])) == expect
            placed = sender.place(memoryview(payload))
            assert placed is not None
        outstanding.append((placed, payload))
        while len(outstanding) > 3:
            block, expect = outstanding.pop(0)
            assert bytes(receiver.reassemble([("shm",) + block])) == expect
    for block, expect in outstanding:
        assert bytes(receiver.reassemble([("shm",) + block])) == expect


def test_rewrite_below_threshold_is_identity(lane):
    sender, _ = lane
    segments = [bytearray(b"abc"), memoryview(b"d" * 255)]
    assert sender.rewrite(segments) is segments


def test_rewrite_roundtrip_through_codec(lane):
    sender, receiver = lane
    head = bytearray(b"\x01header")
    big_a = bytes(range(256)) * 8
    small = bytearray(b"mid")
    big_b = b"\xaa" * 1024
    segs = sender.rewrite([head, memoryview(big_a), small, bytearray(big_b)])
    kind, parts = P.decode_message(bytearray(gather(segs)), {})
    assert kind == P.MSG_SHM
    tags = [p[0] for p in parts]
    assert tags == ["inline", "shm", "inline", "shm"]
    rebuilt = receiver.reassemble(parts)
    assert bytes(rebuilt) == bytes(head) + big_a + bytes(small) + big_b


def test_rewrite_falls_back_inline_when_arena_full():
    sender, receiver = _pair(arena_bytes=4096)
    try:
        big = b"q" * 2048
        first = sender.rewrite([bytearray(big)])
        kind, parts = P.decode_message(bytearray(gather(first)), {})
        assert kind == P.MSG_SHM
        # Arena now too full for another 2 KiB block: the segment must
        # still be delivered, inline over TCP.
        overflow = [bytearray(big), bytearray(big)]
        assert sender.rewrite(overflow) is overflow
        assert bytes(receiver.reassemble(parts)) == big
    finally:
        receiver.close()
        sender.destroy()


def test_rewrite_counts_bypassed_bytes():
    metrics = MetricsRegistry()
    sender, receiver = _pair(metrics=metrics)
    try:
        sender.rewrite([bytearray(b"w" * 1000), bytearray(b"t" * 10)])
        assert metrics.counter("shm_bytes_bypassed").value == 1000
    finally:
        receiver.close()
        sender.destroy()


def test_receiver_rejects_undersized_arena(lane):
    sender, _ = lane
    with pytest.raises(ValueError, match="smaller than announced"):
        ShmReceiver(sender.name, sender.size + (1 << 20))


def test_reclaim_all_recovers_slots_leaked_by_dead_peer():
    """A peer that dies mid-MSG_SHM handoff never clears its blocks'
    state flags; because reclamation is FIFO, those blocks would pin the
    ring tail forever.  reclaim_all (called at connection teardown) must
    restore the full arena."""
    sender, receiver = _pair(arena_bytes=1 << 14)
    try:
        # Descriptors "sent" but the peer dies before consuming them.
        leaked = [sender.place(memoryview(b"L" * 4096)) for _ in range(3)]
        assert all(p is not None for p in leaked)
        # The un-cleared flags block the whole ring: a full-size block no
        # longer fits even though nothing will ever be consumed.
        assert sender.place(memoryview(b"f" * 8192)) is None
        sender._reclaim()
        assert len(sender._pending) == 3  # nothing reclaimable via FIFO

        sender.reclaim_all()
        assert not sender._pending
        # Full capacity is back: the large block fits again.
        placed = sender.place(memoryview(b"f" * 8192))
        assert placed is not None
        assert bytes(receiver.reassemble([("shm",) + placed])) == b"f" * 8192
    finally:
        receiver.close()
        sender.destroy()
