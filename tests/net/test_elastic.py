"""Elastic membership on the multiprocess engine.

The acceptance scenario of the elasticity work: kernels join and retire
**mid-run** while real applications keep producing results bit-identical
to a static cluster — the member barrier ships live thread state to the
new owners, retirees drain before exiting (no replay storm), and the
RunResult counters report what moved.

The lease edge cases ride along: admission deferred while a barrier is
in flight, a joiner whose lease dies before it acknowledges the remap,
and a retire racing the liveness loop's heartbeat-expiry observation.
"""

import socket
import threading

import numpy as np
import pytest

from repro.apps.gameoflife import DistributedGameOfLife, life_step
from repro.apps.ring import RingJobToken, build_ring_graph
from repro.net.kernel import CONSOLE_KERNEL
from repro.net.nameserver import NameServerClient
from repro.runtime import KernelFailure, MultiprocessEngine

RING_NODES = ["node01", "node02", "node03", "node04"]
BLOCK_BYTES = 1024
N_BLOCKS = 16
GOL_STEPS_PER_PHASE = 2


def _gol_world():
    return (np.random.RandomState(3).rand(24, 16) < 0.35).astype(np.uint8)


def _gol_reference(steps):
    world = _gol_world()
    for _ in range(steps):
        world = life_step(world)
    return world


def test_gol_scale_up_down_bit_identical():
    """Grow 3 -> 4 kernels mid-run, then retire the joiner: every phase
    must keep the world bit-identical to the sequential reference, and
    the run result must count both rebalances and the moved instances."""
    reference = _gol_reference(3 * GOL_STEPS_PER_PHASE)

    with MultiprocessEngine(startup_timeout=60) as engine:
        game = DistributedGameOfLife(engine, _gol_world(),
                                     ["node01", "node02"],
                                     compute_nodes=["node05"])
        game.load()
        for _ in range(GOL_STEPS_PER_PHASE):
            game.step(improved=True)

        joiner = engine.add_kernel()
        assert joiner in engine.members()
        for _ in range(GOL_STEPS_PER_PHASE):
            game.step(improved=True)

        moved = engine.retire_kernel(joiner)
        assert moved >= 1
        assert joiner not in engine.members()
        for _ in range(GOL_STEPS_PER_PHASE):
            game.step(improved=True)

        final = game.gather()
        result = engine.last_result

    assert np.array_equal(final, reference)
    assert result.rebalances == 2
    assert result.tokens_moved >= 2


def test_ring_join_and_retire_bit_identical():
    """The ring's forwarding hops are pinned single-instance
    collections: a join moves nothing (minimal-move), retiring a
    hop-hosting kernel must evacuate its hop — and every run still
    counts each block exactly once."""
    graph = build_ring_graph(RING_NODES)
    with MultiprocessEngine() as engine:
        engine.register_graph(graph)
        baseline = engine.run(graph, RingJobToken(BLOCK_BYTES, N_BLOCKS),
                              timeout=120)

        engine.add_kernel()  # joins, but the pinned hops stay put
        grown = engine.run(graph, RingJobToken(BLOCK_BYTES, N_BLOCKS),
                           timeout=120)

        moved = engine.retire_kernel("node03")
        assert moved >= 1  # the node03 hop had to move off
        shrunk = engine.run(graph, RingJobToken(BLOCK_BYTES, N_BLOCKS),
                            timeout=120)
        result = engine.last_result

    for done in (baseline, grown, shrunk):
        assert done.blocks == N_BLOCKS
        assert done.received_bytes == N_BLOCKS * BLOCK_BYTES
    assert result.rebalances == 2
    assert result.tokens_moved >= 1
    assert result.recovered is False  # drain, not a replay storm


def test_membership_argument_errors():
    graph = build_ring_graph(["node01", "node02"])
    with MultiprocessEngine() as engine:
        engine.register_graph(graph)
        engine.run(graph, RingJobToken(256, 2), timeout=60)
        with pytest.raises(ValueError, match="already a member"):
            engine.add_kernel("node01")
        with pytest.raises(ValueError, match="unknown kernel"):
            engine.retire_kernel("node99")


# ---------------------------------------------------------------------------
# lease edge cases
# ---------------------------------------------------------------------------

class _GhostKernel:
    """A name-server registration with a listener that never speaks the
    kernel protocol: the shape of a joiner that wedges (or dies) between
    registering and acknowledging the member barrier."""

    def __init__(self, ns_address, name="ghost"):
        self.name = name
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(4)
        self._accepted = []
        self._thread = threading.Thread(target=self._accept_loop,
                                        daemon=True)
        self._thread.start()
        self._ns = NameServerClient(ns_address)
        host, port = self._listener.getsockname()
        self._ns.register(name, host, port, meta={"kernel": True})

    def _accept_loop(self):
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            self._accepted.append(conn)  # accept, then stay silent

    def close(self):
        try:
            self._ns.close()  # drop the lease
        except Exception:
            pass
        try:
            self._listener.close()
        except Exception:
            pass
        for conn in self._accepted:
            try:
                conn.close()
            except Exception:
                pass


def test_admission_deferred_while_barrier_in_flight():
    """A kernel registering while a rebalance (or recovery) barrier is
    in flight must not be admitted on that tick — admission retries on
    the next liveness pass once the barrier clears."""
    graph = build_ring_graph(["node01", "node02"])
    # heartbeat_interval=0: no liveness thread, the test drives
    # _admit_external by hand with a recorded rebalance.
    with MultiprocessEngine(heartbeat_interval=0) as engine:
        engine.register_graph(graph)
        engine.run(graph, RingJobToken(256, 2), timeout=60)
        console = engine._console
        ghost = _GhostKernel(engine.ns_address)
        try:
            calls = []
            console.rebalance = lambda **kw: calls.append(kw) or 0

            console._rebalancing = True
            engine._admit_external(console)
            assert calls == []
            assert ghost.name not in engine._external_kernels

            console._rebalancing = False
            engine._admit_external(console)
            assert [c["joined"] for c in calls] == [[ghost.name]]
            assert ghost.name in engine._external_kernels

            # an admitted member is not a stranger: no double admission
            engine._admit_external(console)
            assert len(calls) == 1
        finally:
            del console.rebalance  # restore the real method
            engine._retired.add(ghost.name)  # keep teardown quiet
            ghost.close()


def test_joiner_that_never_acks_fails_the_barrier_not_the_cluster():
    """A joiner whose lease registers but who never answers
    ``MSG_MEMBER`` (died before ``MSG_REMAP_OK``) must fail the
    admission with :class:`KernelFailure` after the barrier timeout —
    and leave the cluster fully operational, placements unchanged."""
    graph = build_ring_graph(["node01", "node02"])
    with MultiprocessEngine(heartbeat_interval=0) as engine:
        engine.register_graph(graph)
        engine.run(graph, RingJobToken(256, 2), timeout=60)
        console = engine._console
        ghost = _GhostKernel(engine.ns_address)
        try:
            with pytest.raises(KernelFailure, match="barrier timed out"):
                console.rebalance(joined=[ghost.name], timeout=2.0)
        finally:
            ghost.close()
        # the failed admission must not poison the survivors
        done = engine.run(graph, RingJobToken(256, 4), timeout=60)
        assert done.blocks == 4
        assert engine.last_result.recovered is False


def test_retire_racing_heartbeat_miss_does_not_trigger_recovery():
    """The liveness loop may observe a retiree's lease expiring after
    the drain already completed; the stale observation must be a no-op
    (``_retired_peers`` guard), not a recovery storm."""
    graph = build_ring_graph(RING_NODES)
    with MultiprocessEngine() as engine:
        engine.register_graph(graph)
        engine.run(graph, RingJobToken(256, 4), timeout=60)
        console = engine._console
        engine.retire_kernel("node04")

        # the race, delivered by hand: a heartbeat-expiry observation
        # for the kernel that just retired gracefully
        console.handle_kernel_down("node04", "heartbeat lease expired")

        assert "node04" not in console._dead_kernels
        done = engine.run(graph, RingJobToken(256, 4), timeout=60)
        result = engine.last_result
        assert done.blocks == 4
    assert result.recovered is False
    assert result.replayed_tokens == 0
