"""Unit and property tests for the recovery primitives.

:class:`TokenJournal` + :class:`ReplayDedup` implement an at-least-once
wire (journal, resend, replay) squeezed back to exactly-once at the
consumer (dedup).  The hypothesis properties drive the pair through
random drop/replay interleavings and assert the two invariants the
engine relies on: every token is admitted exactly once per consumer,
and both structures stay bounded (journal by un-acked tokens, dedup by
its FIFO cap).
"""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.recovery import (
    FaultPolicy,
    ReplayDedup,
    TokenJournal,
    plan_rebalance,
    plan_remap,
)


def _env(group_id, index):
    return SimpleNamespace(
        frames=[SimpleNamespace(group_id=group_id, index=index)])


# ----------------------------------------------------------------------
# TokenJournal
# ----------------------------------------------------------------------

def test_journal_record_prune_roundtrip():
    j = TokenJournal()
    envs = [_env(7, i) for i in range(4)]
    for i, env in enumerate(envs):
        j.record(env, now=float(i))
    assert len(j) == 4
    j.prune(7, 1)
    j.prune(7, 3)
    j.prune(7, 99)  # unknown: no-op
    assert [e.frames[-1].index for e in j.replay_all(10.0)] == [0, 2]


def test_journal_stale_scan_stops_at_first_fresh_entry():
    j = TokenJournal()
    j.record(_env(1, 0), now=0.0)
    j.record(_env(1, 1), now=5.0)
    # Only the entry older than 2s at t=6 is stale; insertion order
    # guarantees the scan may stop at the first fresh one.
    stale = j.stale(older_than=2.0, now=6.0)
    assert [e.frames[-1].index for e in stale] == [0]
    # The scan refreshed its timestamp: not stale again right away.
    assert j.stale(older_than=2.0, now=6.5) == []


def test_journal_replay_refreshes_timestamps():
    j = TokenJournal()
    j.record(_env(1, 0), now=0.0)
    assert len(j.replay_all(now=100.0)) == 1
    assert j.stale(older_than=50.0, now=101.0) == []


# ----------------------------------------------------------------------
# ReplayDedup
# ----------------------------------------------------------------------

def test_dedup_admits_once_per_consumer():
    d = ReplayDedup()
    assert d.fresh("merge", 1, 0) is True
    assert d.fresh("merge", 1, 0) is False
    # The same frame at a *different* consumer is legitimate traffic
    # (a split consumes it, then a downstream merge's completion token
    # carries the popped-back frame to the next merge).
    assert d.fresh("split", 1, 0) is True
    assert d.fresh("merge", 1, 1) is True


def test_dedup_remembers_completed_groups():
    """Entries survive group completion: a stale resend arriving after
    the merge finished must not recreate the group."""
    d = ReplayDedup()
    for i in range(5):
        assert d.fresh("m", 3, i)
    for i in range(5):
        assert d.fresh("m", 3, i) is False


def test_dedup_fifo_cap_bounds_memory():
    d = ReplayDedup(cap=8)
    for i in range(100):
        assert d.fresh("m", i, 0)
    assert len(d) == 8


# ----------------------------------------------------------------------
# properties: random drop/replay interleavings
# ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.data())
def test_drop_replay_interleavings_deliver_exactly_once(data):
    """An adversarial wire drops deliveries at will; the replay loop
    re-sends whatever is still journaled.  However the interleaving
    plays out, the consumer admits every token exactly once, and the
    journal drains to empty once everything is acked."""
    n_tokens = data.draw(st.integers(1, 30), label="n_tokens")
    journal = TokenJournal()
    dedup = ReplayDedup()
    for i in range(n_tokens):
        journal.record(_env(1, i), now=0.0)

    admitted = []
    rounds = 0
    while len(journal) and rounds < 200:
        rounds += 1
        for env in journal.replay_all(now=float(rounds)):
            frame = env.frames[-1]
            if data.draw(st.booleans(), label=f"deliver r{rounds}"):
                continue  # dropped on the wire; stays journaled
            if dedup.fresh("merge", frame.group_id, frame.index):
                admitted.append(frame.index)
            # Merge consumption acks the opener, which prunes — even
            # when the delivery was a duplicate (acks re-send too).
            journal.prune(frame.group_id, frame.index)
        # Journal never exceeds the number of un-acked emissions.
        assert len(journal) <= n_tokens

    assert len(journal) == 0, "dropped tokens must stay journaled until acked"
    assert sorted(admitted) == list(range(n_tokens))
    assert len(admitted) == n_tokens, "a token was admitted twice"


@settings(max_examples=60, deadline=None)
@given(
    n_tokens=st.integers(1, 50),
    duplicates=st.integers(1, 5),
    cap=st.integers(4, 64),
)
def test_dedup_stays_bounded_under_duplicate_storms(n_tokens, duplicates,
                                                    cap):
    """Memory is capped no matter how many duplicates the wire
    produces, and within one journal-window of traffic (<= cap un-acked
    tokens) admission stays exactly-once."""
    dedup = ReplayDedup(cap=cap)
    admitted = 0
    for i in range(n_tokens):
        for _ in range(duplicates):
            if dedup.fresh("merge", 1, i):
                admitted += 1
        assert len(dedup) <= cap
    # Every index was admitted at least once; exactly-once holds for the
    # last `cap` indices (older entries may have been evicted — the
    # engine's prune-on-ack keeps real traffic inside that window).
    assert admitted >= n_tokens
    assert admitted <= n_tokens + max(0, n_tokens - cap)


# ----------------------------------------------------------------------
# FaultPolicy / remap planning
# ----------------------------------------------------------------------

def test_fault_policy_parse_kill_specs():
    assert FaultPolicy.parse_kill("node03@0.5") == ("node03", 0.5, None)
    assert FaultPolicy.parse_kill("node03@#5") == ("node03", None, 5)
    with pytest.raises(ValueError, match="kill spec"):
        FaultPolicy.parse_kill("node03")


def test_fault_policy_rng_deterministic_per_kernel():
    p = FaultPolicy(drop_rate=0.5, seed=7)
    a = [p.rng_for("node01").random() for _ in range(3)]
    b = [p.rng_for("node01").random() for _ in range(3)]
    c = [p.rng_for("node02").random() for _ in range(3)]
    assert a == b
    assert a != c


def test_fault_policy_from_env_roundtrip():
    env = {"REPRO_FAULT_KILL": "node02@#9", "REPRO_FAULT_DROP": "0.25",
           "REPRO_FAULT_SEED": "3"}
    p = FaultPolicy.from_env(env)
    assert p.kill_kernel == "node02"
    assert p.kill_after_messages == 9
    assert p.drop_rate == 0.25
    assert p.seed == 3
    assert p.enabled


def test_plan_remap_round_robin_and_no_survivors():
    coll = SimpleNamespace(name="c", placements=["n1", "dead", "dead", "n2"])
    graph = SimpleNamespace(collections=lambda: [coll])
    mapping = plan_remap([graph], "dead", ["n2", "n1"])
    # dead slots filled round-robin from the *sorted* survivor list
    assert mapping == {"c": ["n1", "n1", "n2", "n2"]}
    with pytest.raises(ValueError, match="no kernels survive"):
        plan_remap([graph], "dead", [])


def _graph(*colls):
    specs = [SimpleNamespace(name=name, placements=list(places))
             for name, places in colls]
    return SimpleNamespace(collections=lambda: specs), specs


def test_plan_remap_survivor_order_is_irrelevant():
    """The plan depends only on the survivor *set*: the console and any
    future replanner must agree regardless of iteration order."""
    plans = []
    for survivors in (["n2", "n1", "n3"], ["n3", "n2", "n1"],
                      ["n1", "n3", "n2"]):
        graph, _ = _graph(("c", ["dead", "dead", "dead", "n1"]))
        plans.append(plan_remap([graph], "dead", survivors))
    assert plans[0] == plans[1] == plans[2]


def test_plan_rebalance_spreads_onto_joiner():
    graph, _ = _graph(("w", ["n1", "n1"]), ("main", ["n2"]))
    mapping, moved = plan_rebalance([graph], ["n1", "n2", "n3"],
                                    joined=["n3"])
    # one stacked worker goes to the joiner; the pinned main stays put
    assert mapping == {"w": ["n1", "n3"]}
    assert moved == 1


def test_plan_rebalance_evacuates_retiree():
    graph, _ = _graph(("w", ["n1", "n3"]), ("main", ["n3"]))
    mapping, moved = plan_rebalance([graph], ["n1", "n2"])
    assert mapping["w"][0] == "n1"      # in-place instance never moves
    assert mapping["w"][1] in ("n1", "n2")
    assert mapping["main"] != ["n3"]    # pinned, but its host is leaving
    assert moved == 2


def test_plan_rebalance_minimal_move_keeps_balanced_spread():
    graph, _ = _graph(("w", ["n1", "n2", "n3"]))
    mapping, moved = plan_rebalance([graph], ["n1", "n2", "n3", "n4"],
                                    joined=["n4"])
    # already balanced at one instance per node: nothing moves
    assert mapping == {} and moved == 0


def test_plan_rebalance_is_deterministic_under_member_order():
    plans = []
    for members in (["n3", "n1", "n2"], ["n1", "n2", "n3"],
                    ["n2", "n3", "n1"]):
        graph, _ = _graph(("w", ["n1", "n1", "n1", "n1"]), ("m", ["n2"]))
        plans.append(plan_rebalance([graph], members, joined=["n3"]))
    assert plans[0] == plans[1] == plans[2]


def test_plan_rebalance_prefers_shallow_queues():
    graph, _ = _graph(("solo", ["gone"]))
    mapping, moved = plan_rebalance([graph], ["n1", "n2"],
                                    depths={"n1": 9, "n2": 0})
    assert mapping == {"solo": ["n2"]}  # least-loaded member wins
    assert moved == 1
    # and with equal depths the sorted-name tiebreak decides
    graph, _ = _graph(("solo", ["gone"]))
    mapping, _ = plan_rebalance([graph], ["n2", "n1"])
    assert mapping == {"solo": ["n1"]}
