"""Round-trips for every kernel-to-kernel protocol message."""

import numpy as np
import pytest

from repro.core import (
    ConstantRoute,
    DpsThread,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    MergeOperation,
    SplitOperation,
    ThreadCollection,
)
from repro.net import protocol as P
from repro.runtime.base import DataEnvelope, GroupFrame
from repro.serial import Buffer, ComplexToken, SimpleToken, WireError, gather


class ProtoJob(SimpleToken):
    def __init__(self, n=0):
        self.n = n


class ProtoChunk(ComplexToken):
    def __init__(self, idx=0, data=None):
        self.idx = idx
        self.data = Buffer(data if data is not None else [])


class ProtoThread(DpsThread):
    pass


class ProtoSplit(SplitOperation):
    thread_type = ProtoThread
    in_types = (ProtoJob,)
    out_types = (ProtoChunk,)

    def execute(self, tok):
        self.post(ProtoChunk(0, np.zeros(1)))


class ProtoWork(LeafOperation):
    thread_type = ProtoThread
    in_types = (ProtoChunk,)
    out_types = (ProtoChunk,)

    def execute(self, tok):
        self.post(tok)


class ProtoMerge(MergeOperation):
    thread_type = ProtoThread
    in_types = (ProtoChunk,)
    out_types = (ProtoJob,)

    def execute(self, tok):
        while tok is not None:
            tok = yield self.next_token()
        yield self.post(ProtoJob())


@pytest.fixture
def graph():
    main = ThreadCollection(ProtoThread, "pmain").map("nodeA")
    work = ThreadCollection(ProtoThread, "pwork").map("nodeB nodeC")
    g = Flowgraph(
        FlowgraphNode(ProtoSplit, main)
        >> FlowgraphNode(ProtoWork, work, ConstantRoute)
        >> FlowgraphNode(ProtoMerge, main),
        "proto-graph",
    )
    return g


def roundtrip(segments, graphs):
    return P.decode_message(bytearray(gather(segments)), graphs)


def test_data_roundtrip(graph):
    payload = np.arange(7, dtype=np.float64)
    frames = (
        GroupFrame(group_id=(3 << 40) + 9, index=4, opener=0,
                   opener_instance=0, origin_node="nodeA",
                   routed_instance=1),
    )
    env = DataEnvelope(ProtoChunk(5, payload), graph, 1, 1,
                       (2 << 40) + 17, frames, ctx_origin="__driver__")
    kind, out = roundtrip(P.encode_data(env), {graph.name: graph})
    assert kind == P.MSG_DATA
    assert out.graph is graph
    assert (out.node_id, out.instance, out.ctx_id) == (1, 1, (2 << 40) + 17)
    assert out.ctx_origin == "__driver__"
    assert out.frames == frames
    assert out.token.idx == 5
    assert np.array_equal(out.token.data.array, payload)


def test_data_without_origin_or_frames(graph):
    env = DataEnvelope(ProtoJob(3), graph, 0, 0, 1, ())
    kind, out = roundtrip(P.encode_data(env), {graph.name: graph})
    assert kind == P.MSG_DATA
    assert out.ctx_origin is None
    assert out.frames == ()
    assert out.token.n == 3


def test_data_unknown_graph_rejected(graph):
    env = DataEnvelope(ProtoJob(1), graph, 0, 0, 1, ())
    wire = bytearray(gather(P.encode_data(env)))
    with pytest.raises(WireError, match="unknown graph"):
        P.decode_message(wire, {})


def test_ack_roundtrip():
    kind, ack = roundtrip(P.encode_ack("g", 3, 1, 2), {})
    assert kind == P.MSG_ACK
    assert ack == P.AckWire("g", 3, 1, 2)


def test_group_total_roundtrip():
    kind, value = roundtrip(P.encode_group_total((5 << 40) + 2, 1234), {})
    assert kind == P.MSG_GROUP_TOTAL
    assert value == ((5 << 40) + 2, 1234)


@pytest.mark.parametrize("msg_kind", [P.MSG_RESULT, P.MSG_SCATTER_RESULT])
def test_result_roundtrip(msg_kind):
    token = ProtoChunk(9, np.linspace(0, 1, 5))
    kind, (ctx_id, out) = roundtrip(P.encode_result(msg_kind, 42, token), {})
    assert kind == msg_kind
    assert ctx_id == 42
    assert out.idx == 9
    assert np.array_equal(out.data.array, token.data.array)


def test_encode_result_rejects_other_kinds():
    with pytest.raises(ValueError):
        P.encode_result(P.MSG_ACK, 1, ProtoJob())


def test_scatter_total_roundtrip():
    kind, value = roundtrip(P.encode_scatter_total(7, 100), {})
    assert kind == P.MSG_SCATTER_TOTAL
    assert value == (7, 100)


def test_failure_roundtrip():
    kind, exc = roundtrip(P.encode_failure(ValueError("boom across")), {})
    assert kind == P.MSG_FAILURE
    assert isinstance(exc, ValueError)
    assert str(exc) == "boom across"


def test_unpicklable_failure_degrades_to_remote_failure():
    class Local(Exception):  # defined in a function: not picklable
        pass

    kind, exc = roundtrip(P.encode_failure(Local("nested detail")), {})
    assert kind == P.MSG_FAILURE
    assert isinstance(exc, P.RemoteFailure)
    assert "Local" in str(exc) and "nested detail" in str(exc)


def test_hello_and_shutdown_roundtrip():
    assert roundtrip(P.encode_hello("kernelX"), {}) == (P.MSG_HELLO, "kernelX")
    assert roundtrip(P.encode_shutdown(), {}) == (P.MSG_SHUTDOWN, None)


def test_unknown_kind_rejected():
    with pytest.raises(WireError, match="unknown protocol message kind"):
        P.decode_message(b"\xfe", {})
    with pytest.raises(WireError, match="empty"):
        P.decode_message(b"", {})


def test_data_token_borrows_from_payload(graph):
    """MSG_DATA tokens must decode zero-copy out of the receive buffer."""
    env = DataEnvelope(ProtoChunk(0, np.arange(16, dtype=np.int64)),
                       graph, 1, 0, 1, ())
    buf = bytearray(gather(P.encode_data(env)))
    _, out = P.decode_message(buf, {graph.name: graph})
    arr = out.token.data.array
    assert not arr.flags.owndata  # borrowed, not copied
    base = arr.base
    while getattr(base, "base", None) is not None and base is not buf:
        base = base.base
    assert base is buf or (isinstance(base, memoryview) and base.obj is buf)


def test_ack_batch_roundtrip():
    runs = [
        (P.AckWire("g", 3, 1, 2), 17),
        (P.AckWire("other-graph", 0, 0, 5), 1),
        (P.AckWire("g", 3, 1, 4), 128),
    ]
    kind, out = roundtrip(P.encode_ack_batch(runs), {})
    assert kind == P.MSG_ACK_BATCH
    assert out == runs


def test_ack_batch_empty():
    kind, out = roundtrip(P.encode_ack_batch([]), {})
    assert kind == P.MSG_ACK_BATCH
    assert out == []


def test_shm_attach_roundtrip():
    kind, out = roundtrip(P.encode_shm_attach("psm_12ab", 1 << 24), {})
    assert kind == P.MSG_SHM_ATTACH
    assert out == ("psm_12ab", 1 << 24)


def test_shm_data_roundtrip():
    inline_a = bytearray(b"small-head")
    inline_b = memoryview(b"tail")
    parts = [
        ("inline", inline_a),
        ("shm", 4096, 65536),
        ("inline", inline_b),
        ("shm", 0, 123),
    ]
    kind, out = roundtrip(P.encode_shm_data(parts), {})
    assert kind == P.MSG_SHM
    assert len(out) == 4
    assert out[0][0] == "inline" and bytes(out[0][1]) == b"small-head"
    assert out[1] == ("shm", 4096, 65536)
    assert out[2][0] == "inline" and bytes(out[2][1]) == b"tail"
    assert out[3] == ("shm", 0, 123)


def test_shm_data_preserves_inline_segments_zero_copy():
    """Inline parts ride as separate scatter-gather segments (the payload
    buffer itself, not a copy) and decode as borrowed views."""
    payload = bytearray(b"z" * 64)
    segs = P.encode_shm_data([("inline", payload), ("shm", 8, 9)])
    assert any(s is payload for s in segs)
    wire = bytearray(gather(segs))
    _, parts = P.decode_message(wire, {})
    view = parts[0][1]
    assert isinstance(view, memoryview) and view.obj is wire


def test_shm_data_rejects_unknown_tag():
    wire = bytearray(gather(P.encode_shm_data([("shm", 0, 1)])))
    wire[3] = 7  # kind | u16 n | tag byte
    with pytest.raises(WireError, match="shm part tag"):
        P.decode_message(wire, {})
