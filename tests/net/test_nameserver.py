"""Name-server edge cases: duplicate registration, unknown lookup,
re-registration after a kernel restart, and lazy-dial retry/backoff."""

import socket
import threading
import time

import pytest

from repro.net import (
    DuplicateRegistration,
    NameServer,
    NameServerClient,
    UnknownKernel,
    dial_kernel,
    recv_message,
    send_message,
)
from repro.net.connections import DialError
from repro.net.protocol import MSG_HELLO, decode_message


@pytest.fixture
def ns():
    server = NameServer().start()
    yield server
    server.stop()


def client(server):
    return NameServerClient(server.address)


def test_register_and_lookup(ns):
    with client(ns) as c:
        c.register("kernelA", "127.0.0.1", 7001)
        assert c.lookup("kernelA") == ("127.0.0.1", 7001)
        assert c.list() == ["kernelA"]


def test_unknown_lookup_raises(ns):
    with client(ns) as c:
        with pytest.raises(UnknownKernel, match="nosuch"):
            c.lookup("nosuch")


def test_duplicate_registration_refused(ns):
    with client(ns) as c1, client(ns) as c2:
        c1.register("kernelA", "127.0.0.1", 7001)
        with pytest.raises(DuplicateRegistration, match="kernelA"):
            c2.register("kernelA", "127.0.0.1", 7002)
        # the first owner's registration is untouched
        assert c2.lookup("kernelA") == ("127.0.0.1", 7001)


def test_own_reregistration_updates_address(ns):
    with client(ns) as c:
        c.register("kernelA", "127.0.0.1", 7001)
        c.register("kernelA", "127.0.0.1", 7005)
        assert c.lookup("kernelA") == ("127.0.0.1", 7005)


def test_reregistration_after_restart(ns):
    """A crashed kernel's name is freed when its connection drops, so a
    restarted kernel can register again under the same name."""
    c1 = client(ns)
    c1.register("kernelA", "127.0.0.1", 7001)
    c1.close()  # the "crash": connection EOF unregisters kernelA

    deadline = time.monotonic() + 5
    c2 = client(ns)
    try:
        while True:
            try:
                c2.register("kernelA", "127.0.0.1", 7002)
                break
            except DuplicateRegistration:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.01)
        assert c2.lookup("kernelA") == ("127.0.0.1", 7002)
    finally:
        c2.close()


def test_crash_unregisters_only_own_names(ns):
    c1 = client(ns)
    c1.register("kernelA", "127.0.0.1", 7001)
    with client(ns) as c2:
        c2.register("kernelB", "127.0.0.1", 7002)
        c1.close()
        deadline = time.monotonic() + 5
        while "kernelA" in c2.list():
            assert time.monotonic() < deadline
            time.sleep(0.01)
        assert c2.list() == ["kernelB"]


def test_dial_retry_backoff_on_late_registration(ns):
    """dial_kernel keeps retrying while the peer has not registered yet —
    the lazy-connection startup race of paper §4."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()[:2]
    owner = client(ns)

    def register_late():
        time.sleep(0.3)
        owner.register("latecomer", host, port)

    threading.Thread(target=register_late, daemon=True).start()
    with client(ns) as c:
        t0 = time.monotonic()
        sock = dial_kernel(c, "latecomer", hello_from="tester", deadline=10)
        assert time.monotonic() - t0 >= 0.25  # actually waited for it
        conn, _ = listener.accept()
        kind, name = decode_message(recv_message(conn), {})
        assert (kind, name) == (MSG_HELLO, "tester")
        sock.close()
        conn.close()
    owner.close()
    listener.close()


def test_dial_gives_up_after_deadline(ns):
    with client(ns) as c:
        t0 = time.monotonic()
        with pytest.raises(DialError, match="ghost"):
            dial_kernel(c, "ghost", deadline=0.4)
        assert 0.3 <= time.monotonic() - t0 < 5


def test_dial_retries_refused_connection(ns):
    """The directory may point at a port nobody listens on yet (the peer
    registered between bind and listen losing a race); the dialer backs
    off and retries instead of failing on the first refusal."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    host, port = probe.getsockname()[:2]
    probe.close()  # port is now registered but refusing connections

    with client(ns) as owner, client(ns) as c:
        owner.register("slowpoke", host, port)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)

        def listen_late():
            time.sleep(0.3)
            try:
                listener.bind((host, port))
            except OSError:
                return  # port got reused meanwhile; dial will time out
            listener.listen(1)

        threading.Thread(target=listen_late, daemon=True).start()
        try:
            sock = dial_kernel(c, "slowpoke", deadline=5)
            sock.close()
        except DialError:
            pytest.skip("ephemeral port was reused by another process")
        finally:
            listener.close()


def test_send_recv_roundtrip_over_socket():
    """Framed messages survive a real socket hop, segment list included."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    out = socket.create_connection(listener.getsockname()[:2])
    conn, _ = listener.accept()
    try:
        send_message(out, [bytearray(b"head"), b"-mid-", memoryview(b"tail")])
        send_message(out, b"")
        assert bytes(recv_message(conn)) == b"head-mid-tail"
        assert bytes(recv_message(conn)) == b""
        out.close()
        assert recv_message(conn) is None  # clean EOF
    finally:
        conn.close()
        listener.close()


# ---------------------------------------------------------------------------
# service records (the resident service tier's directory entries)
# ---------------------------------------------------------------------------

def test_services_empty(ns):
    with client(ns) as c:
        assert c.services() == []
        assert c.services(max_age=0.1) == []


def test_service_record_roundtrip(ns):
    with client(ns) as c:
        c.register("console", "127.0.0.1", 7001)
        c.register_service("gol.read", "console",
                           in_types=("GolReadRequest",),
                           out_types=("GolBlockToken",))
        c.register_service("upper", "console",
                           in_types=("StringToken",),
                           out_types=("StringToken",))
        assert c.services() == [
            {"service": "gol.read", "provider": "console",
             "in_types": ["GolReadRequest"],
             "out_types": ["GolBlockToken"]},
            {"service": "upper", "provider": "console",
             "in_types": ["StringToken"], "out_types": ["StringToken"]},
        ]


def test_service_without_live_provider_is_filtered(ns):
    """A record whose provider never registered (or whose lease already
    dropped) must not be listed — clients would dial a ghost."""
    with client(ns) as c:
        c.register_service("orphan", "nobody")
        assert c.services() == []


def test_service_lease_expires_with_provider_heartbeat(ns):
    with client(ns) as c:
        c.register("console", "127.0.0.1", 7001)
        c.register_service("gol.read", "console")
        assert [r["service"] for r in c.services(max_age=5.0)] \
            == ["gol.read"]
        time.sleep(0.15)
        # provider stopped beating longer than max_age ago -> filtered
        assert c.services(max_age=0.1) == []
        c.heartbeat("console")
        assert [r["service"] for r in c.services(max_age=0.1)] \
            == ["gol.read"]


def test_service_dropped_with_owner_connection(ns):
    c1 = client(ns)
    c1.register("console", "127.0.0.1", 7001)
    c1.register_service("gol.read", "console")
    with client(ns) as c2:
        c2.register("other", "127.0.0.1", 7002)
        c2.register_service("other.svc", "other")
        assert len(c2.services()) == 2
        c1.close()  # the provider "crash"
        deadline = time.monotonic() + 5
        while len(c2.services()) > 1:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        assert [r["service"] for r in c2.services()] == ["other.svc"]


def test_duplicate_service_refused_across_connections(ns):
    from repro.net import DuplicateRegistration
    with client(ns) as c1, client(ns) as c2:
        c1.register("consoleA", "127.0.0.1", 7001)
        c2.register("consoleB", "127.0.0.1", 7002)
        c1.register_service("gol.read", "consoleA")
        with pytest.raises(DuplicateRegistration, match="gol.read"):
            c2.register_service("gol.read", "consoleB")
        # same-owner re-registration updates in place
        c1.register_service("gol.read", "consoleA",
                            in_types=("GolReadRequest",))
        records = c1.services()
        assert records[0]["provider"] == "consoleA"
        assert records[0]["in_types"] == ["GolReadRequest"]
        # unregister by a non-owner is a no-op
        c2.unregister_service("gol.read")
        assert len(c1.services()) == 1
        c1.unregister_service("gol.read")
        assert c1.services() == []


def test_concurrent_service_listing(ns):
    """Registrations and listings from many threads never corrupt the
    directory or observe torn records."""
    errors = []
    clients = [client(ns) for _ in range(6)]
    try:
        def register_some(i):
            try:
                c = clients[i]
                c.register(f"prov{i}", "127.0.0.1", 7100 + i)
                for j in range(5):
                    c.register_service(f"svc{i}.{j}", f"prov{i}",
                                       in_types=("A",), out_types=("B",))
                for _ in range(20):
                    for rec in c.services():
                        assert rec["in_types"] == ["A"]
                        assert rec["out_types"] == ["B"]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=register_some, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        # all owner connections are still open: every record is listed
        assert len(clients[0].services()) == 30
    finally:
        for c in clients:
            c.close()


def test_registration_meta_roundtrip(ns):
    """Kernels publish metadata (e.g. the host fingerprint that gates the
    shared-memory lane) alongside their address."""
    with client(ns) as c:
        c.register("kernelA", "127.0.0.1", 7001,
                   meta={"fingerprint": "hostX:boot-1"})
        c.register("kernelB", "127.0.0.1", 7002)  # no meta
        assert c.lookup_entry("kernelA") == \
            ("127.0.0.1", 7001, {"fingerprint": "hostX:boot-1"})
        assert c.lookup_entry("kernelB") == ("127.0.0.1", 7002, {})
        # the plain lookup API is unchanged
        assert c.lookup("kernelA") == ("127.0.0.1", 7001)


def test_loads_reports_only_kernel_registrations(ns):
    """``loads`` feeds depth-aware rebalancing and CLI-joiner admission:
    it must list kernel-flagged registrations (default depth 0) and hide
    service clients, which register only for reply routing."""
    with client(ns) as c:
        c.register("kernelA", "127.0.0.1", 7001, meta={"kernel": True})
        c.register("kernelB", "127.0.0.1", 7002, meta={"kernel": True})
        c.register("svc-client-1", "127.0.0.1", 7003)  # reply socket
        assert c.loads() == {"kernelA": 0, "kernelB": 0}

        c.heartbeat("kernelA", load=7)
        c.heartbeat("svc-client-1", load=99)  # ignored by loads()
        assert c.loads() == {"kernelA": 7, "kernelB": 0}


def test_loads_lease_drops_with_connection(ns):
    """A joiner's depth report dies with its lease: once the connection
    closes the kernel must vanish from ``loads`` so admission and
    rebalancing stop seeing it."""
    c1 = client(ns)
    c1.register("kernelA", "127.0.0.1", 7001, meta={"kernel": True})
    with client(ns) as c2:
        c2.register("kernelB", "127.0.0.1", 7002, meta={"kernel": True})
        c2.heartbeat("kernelB", load=3)
        assert c2.loads() == {"kernelA": 0, "kernelB": 3}
        c1.close()
        deadline = time.time() + 5
        while "kernelA" in c2.loads() and time.time() < deadline:
            time.sleep(0.02)
        assert c2.loads() == {"kernelB": 3}
