"""Exactly-once semantics for retried and resent service calls.

Two layers of defence are under test:

- :class:`ReplayDedup` (the mechanism, property-tested with hypothesis):
  any interleaving of originals and duplicates admits each
  ``(client, session, request_id)`` key exactly once.
- the service path end to end: a client that aggressively *resends* a
  silent request (same id) gets exactly one execution and one correct
  reply — the console counts the duplicates and drops them before any
  shed decision.
"""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConstantRoute,
    DpsThread,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    MergeOperation,
    SplitOperation,
    ThreadCollection,
)
from repro.net.recovery import ReplayDedup
from repro.serial import SimpleToken
from repro.service import AdmissionPolicy, ServiceClient, ServiceEngine
from repro.trace import MetricsRegistry


# ---------------------------------------------------------------------------
# the mechanism: ReplayDedup admits each key exactly once
# ---------------------------------------------------------------------------

_keys = st.tuples(st.sampled_from(["client-a", "client-b"]),
                  st.integers(min_value=0, max_value=3),
                  st.integers(min_value=0, max_value=9))


@settings(max_examples=200, deadline=None)
@given(st.lists(_keys, max_size=200))
def test_dedup_admits_each_key_exactly_once(seq):
    dedup = ReplayDedup()
    admitted = set()
    for key in seq:
        if dedup.fresh(*key):
            assert key not in admitted, "second admission of one key"
            admitted.add(key)
        else:
            assert key in admitted, "rejected a never-seen key"


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)),
                max_size=300))
def test_dedup_fifo_cap_bounds_memory(pairs):
    dedup = ReplayDedup(cap=16)
    for group_id, index in pairs:
        dedup.fresh("client", group_id, index)
        assert len(dedup) <= 16


# ---------------------------------------------------------------------------
# the service path
# ---------------------------------------------------------------------------

class EoJob(SimpleToken):
    def __init__(self, text: str = ""):
        self.text = text


class EoChunk(SimpleToken):
    def __init__(self, text: str = ""):
        self.text = text


class EoMain(DpsThread):
    pass


class EoWork(DpsThread):
    pass


class EoSplit(SplitOperation):
    thread_type = EoMain
    in_types = (EoJob,)
    out_types = (EoChunk,)

    def execute(self, tok):
        self.post(EoChunk(tok.text))


class EoSlowLeaf(LeafOperation):
    thread_type = EoWork
    in_types = (EoChunk,)
    out_types = (EoChunk,)

    def execute(self, tok):
        time.sleep(0.25)  # long enough for several client resends
        self.post(EoChunk(tok.text.upper()))


class EoMerge(MergeOperation):
    thread_type = EoMain
    in_types = (EoChunk,)
    out_types = (EoJob,)

    def execute(self, tok):
        text = tok.text
        while tok is not None:
            tok = yield self.next_token()
        yield self.post(EoJob(text))


def build_slow_graph():
    main = ThreadCollection(EoMain, "eo-main").map("node01")
    work = ThreadCollection(EoWork, "eo-work").map("node01")
    builder = (
        FlowgraphNode(EoSplit, main)
        >> FlowgraphNode(EoSlowLeaf, work, ConstantRoute)
        >> FlowgraphNode(EoMerge, main)
    )
    return Flowgraph(builder, "eo.slow")


@pytest.fixture(scope="module")
def slow_service():
    metrics = MetricsRegistry()
    engine = ServiceEngine(
        admission=AdmissionPolicy(max_concurrent=2, max_queue=2,
                                  session_window=8),
        metrics=metrics)
    engine.expose(build_slow_graph(), "slow")
    address = engine.serve()
    yield address, metrics
    engine.drain_and_shutdown()


def test_resent_request_executes_exactly_once(slow_service):
    """Resending a silent request reuses the SAME id: the server must
    absorb every duplicate (svc_duplicates), execute once (svc_calls),
    and answer once."""
    address, metrics = slow_service
    calls_before = metrics.counter("svc_calls").value
    dups_before = metrics.counter("svc_duplicates").value
    with ServiceClient(address) as client:
        call = client.call_async("slow", EoJob("needs patience"))
        result = call.result(timeout=60, resend_after=0.04)
        assert result.text == "NEEDS PATIENCE"
    # wait for the trailing duplicate counters to settle
    time.sleep(0.1)
    assert metrics.counter("svc_calls").value == calls_before + 1
    assert metrics.counter("svc_duplicates").value > dups_before


def test_retry_storm_never_duplicates_results(slow_service):
    """Busy retries (NEW id each) and resends (SAME id) interleaved
    under overload: every logical call executes exactly once and every
    reply is correct."""
    import threading

    address, metrics = slow_service
    calls_before = metrics.counter("svc_calls").value
    n_logical = 8
    results = {}
    errors = []

    def one(client, i):
        try:
            results[i] = client.call(
                "slow", EoJob(f"logical {i}"), timeout=60,
                retries=40, backoff=0.05, resend_after=0.04).text
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    with ServiceClient(address) as client:
        threads = [threading.Thread(target=one, args=(client, i))
                   for i in range(n_logical)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert results == {i: f"LOGICAL {i}" for i in range(n_logical)}
    time.sleep(0.1)
    # shed attempts burn an id without executing; admitted ids execute
    # exactly once — so executions == logical calls, despite retries
    # and resends both having happened.
    assert metrics.counter("svc_calls").value == calls_before + n_logical
