"""Graph-call stubs: a remote service embedded in a local flow graph.

The paper's Figure 10 composition — one application's graph calling
another application's graph as a leaf operation — across the resident
tier: a local *threaded* engine runs a split/stub/merge graph whose
leaf proxies every token through a :class:`ServiceClient` session to a
resident *multiprocess* service cluster.
"""

import pytest

from repro.core import (
    ConstantRoute,
    DpsThread,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    MergeOperation,
    SplitOperation,
    ThreadCollection,
    make_service_stub,
    resolve_token_types,
)
from repro.runtime import create_engine
from repro.service import ServiceClient, ServiceEngine

from .test_service_tier import TierJob, build_tier_graph


def test_resolve_token_types_round_trips_registered_names():
    assert resolve_token_types(["TierJob"]) == (TierJob,)
    with pytest.raises(KeyError):
        resolve_token_types(["NoSuchTokenType"])


def test_stub_requires_a_signature():
    with pytest.raises(ValueError, match="non-empty"):
        make_service_stub(lambda s, t: t, "echo",
                          in_types=(), out_types=(TierJob,))


def test_stub_is_a_typed_leaf_operation():
    stub = make_service_stub(lambda s, t: t, "gol.read",
                             in_types=(TierJob,), out_types=(TierJob,))
    assert issubclass(stub, LeafOperation)
    assert stub.__name__ == "ServiceStub_gol_read"
    assert stub.in_types == (TierJob,)
    assert stub.accepts(TierJob)


class RcJob(TierJob):
    """The local application's own job token (a sentence)."""


class RcMain(DpsThread):
    pass


class RcWork(DpsThread):
    pass


class RcSplit(SplitOperation):
    thread_type = RcMain
    in_types = (RcJob,)
    out_types = (TierJob,)

    def execute(self, tok):
        for word in tok.text.split():
            self.post(TierJob(word))


class RcMerge(MergeOperation):
    thread_type = RcMain
    in_types = (TierJob,)
    out_types = (RcJob,)

    def execute(self, tok):
        words = []
        while tok is not None:
            words.append(tok.text)
            tok = yield self.next_token()
        yield self.post(RcJob(" ".join(sorted(words))))


def test_local_graph_calls_remote_service_through_stub():
    service_engine = ServiceEngine()
    service_engine.expose(build_tier_graph("rc.echo"), "echo")
    address = service_engine.serve()
    try:
        with ServiceClient(address) as client:
            record = next(r for r in client.discover()
                          if r["service"] == "echo")
            stub = make_service_stub(
                lambda service, token: client.call(service, token,
                                                   timeout=60, retries=10),
                "echo",
                in_types=resolve_token_types(record["in_types"]),
                out_types=resolve_token_types(record["out_types"]),
                thread_type=RcWork)

            main = ThreadCollection(RcMain, "rc-main").map("hostA")
            work = ThreadCollection(RcWork, "rc-work").map("hostA hostB")
            local_graph = Flowgraph(
                FlowgraphNode(RcSplit, main)
                >> FlowgraphNode(stub, work, ConstantRoute)
                >> FlowgraphNode(RcMerge, main),
                "rc.local")

            with create_engine("threaded") as local_engine:
                out = local_engine.run(
                    local_graph, RcJob("remote clusters look like leaves"),
                    timeout=60)
            assert out.text == "CLUSTERS LEAVES LIKE LOOK REMOTE"
    finally:
        service_engine.drain_and_shutdown()
