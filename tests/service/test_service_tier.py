"""End-to-end resident service tier: sessions, calls, admission, drain.

One module-scoped cluster serves an ``echo`` graph (uppercase with an
optional slow path and a poison input) to real :class:`ServiceClient`
sessions over TCP.  Admission numbers are deliberately tiny
(2 executing + 2 queued) so overload is easy to provoke.
"""

import threading
import time

import pytest

from repro.core import (
    ConstantRoute,
    DpsThread,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    MergeOperation,
    SplitOperation,
    ThreadCollection,
)
from repro.runtime import ScheduleError
from repro.serial import SimpleToken
from repro.service import (
    AdmissionPolicy,
    ServiceBusy,
    ServiceClient,
    ServiceEngine,
)
from repro.trace import MetricsRegistry


class TierJob(SimpleToken):
    def __init__(self, text: str = ""):
        self.text = text


class TierChunk(SimpleToken):
    def __init__(self, text: str = ""):
        self.text = text


class TierMain(DpsThread):
    pass


class TierWork(DpsThread):
    pass


class TierSplit(SplitOperation):
    thread_type = TierMain
    in_types = (TierJob,)
    out_types = (TierChunk,)

    def execute(self, tok):
        self.post(TierChunk(tok.text))


class TierLeaf(LeafOperation):
    """Uppercase; 'slow ...' sleeps, 'boom ...' raises."""

    thread_type = TierWork
    in_types = (TierChunk,)
    out_types = (TierChunk,)

    def execute(self, tok):
        if tok.text.startswith("slow"):
            time.sleep(0.3)
        if tok.text.startswith("boom"):
            raise ValueError(f"poison input {tok.text!r}")
        self.post(TierChunk(tok.text.upper()))


class TierMerge(MergeOperation):
    thread_type = TierMain
    in_types = (TierChunk,)
    out_types = (TierJob,)

    def execute(self, tok):
        text = tok.text
        while tok is not None:
            tok = yield self.next_token()
        yield self.post(TierJob(text))


def build_tier_graph(name="tier.echo"):
    main = ThreadCollection(TierMain, f"{name}-main").map("node01")
    work = ThreadCollection(TierWork, f"{name}-work").map("node01 node02")
    builder = (
        FlowgraphNode(TierSplit, main)
        >> FlowgraphNode(TierLeaf, work, ConstantRoute)
        >> FlowgraphNode(TierMerge, main)
    )
    return Flowgraph(builder, name)


ADMISSION = AdmissionPolicy(max_concurrent=2, max_queue=2, session_window=8)


@pytest.fixture(scope="module")
def tier():
    metrics = MetricsRegistry()
    engine = ServiceEngine(admission=ADMISSION, metrics=metrics)
    engine.expose(build_tier_graph(), "echo")
    address = engine.serve()
    yield engine, address, metrics
    engine.drain_and_shutdown()


def test_basic_call(tier):
    _, address, _ = tier
    with ServiceClient(address) as client:
        assert client.window == ADMISSION.session_window
        assert client.session_id is not None
        result = client.call("echo", TierJob("hello service"), timeout=30)
        assert result.text == "HELLO SERVICE"


def test_out_of_order_correlation(tier):
    """Replies correlate by request id even when they finish out of
    order (a slow call issued first must not steal a fast reply)."""
    _, address, _ = tier
    with ServiceClient(address) as client:
        slow = client.call_async("echo", TierJob("slow first"))
        fast = [client.call_async("echo", TierJob(f"fast {i}"))
                for i in range(3)]
        results = [c.result(30) for c in fast]
        assert [r.text for r in results] == \
            ["FAST 0", "FAST 1", "FAST 2"]
        assert slow.result(30).text == "SLOW FIRST"


def test_discover_lists_signature(tier):
    _, address, _ = tier
    with ServiceClient(address) as client:
        records = {r["service"]: r for r in client.discover()}
        assert "echo" in records
        assert records["echo"]["provider"] == "__driver__"
        assert records["echo"]["in_types"] == ["TierJob"]
        assert records["echo"]["out_types"] == ["TierJob"]


def test_unknown_service_raises(tier):
    _, address, _ = tier
    with ServiceClient(address) as client:
        with pytest.raises(ScheduleError, match="unknown service"):
            client.call("nosuch", TierJob("x"), timeout=30)
        # the session is still usable afterwards
        assert client.call("echo", TierJob("ok"), timeout=30).text == "OK"


def test_bad_input_type_rejected_cheaply(tier):
    """A token the entry operation does not accept is refused on the
    protocol path, without running the graph — the session stays alive."""
    _, address, _ = tier
    with ServiceClient(address) as client:
        with pytest.raises(ScheduleError, match="does not accept"):
            client.call("echo", TierChunk("wrong type"), timeout=30)
        assert client.call("echo", TierJob("alive"), timeout=30).text \
            == "ALIVE"


def test_two_clients_get_distinct_sessions(tier):
    _, address, _ = tier
    with ServiceClient(address) as c1, ServiceClient(address) as c2:
        assert c1.session_id != c2.session_id
        a = c1.call_async("echo", TierJob("from one"))
        b = c2.call_async("echo", TierJob("from two"))
        assert a.result(30).text == "FROM ONE"
        assert b.result(30).text == "FROM TWO"


def test_overload_sheds_with_busy(tier):
    """More in-flight calls than capacity: the excess is answered
    MSG_SVC_BUSY immediately, the admitted ones all complete."""
    _, address, metrics = tier
    shed_before = metrics.counter("svc_shed").value
    with ServiceClient(address) as client:
        calls = [client.call_async("echo", TierJob(f"slow burst {i}"))
                 for i in range(8)]
        ok, busy = [], []
        for call in calls:
            try:
                ok.append(call.result(60).text)
            except ServiceBusy as exc:
                busy.append(str(exc))
        assert len(ok) + len(busy) == 8
        assert len(ok) >= ADMISSION.capacity  # everything admitted finished
        assert busy, "expected at least one shed under 2x overload"
        assert all(text.startswith("SLOW BURST") for text in ok)
    assert metrics.counter("svc_shed").value > shed_before


def test_busy_retries_eventually_succeed(tier):
    """client.call retries sheds with backoff under NEW request ids;
    under sustained 2x overload every call still completes correctly."""
    _, address, _ = tier
    results = {}
    errors = []

    def one(client, i):
        try:
            results[i] = client.call(
                "echo", TierJob(f"slow retry {i}"), timeout=60,
                retries=30, backoff=0.05).text
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    with ServiceClient(address) as client:
        threads = [threading.Thread(target=one, args=(client, i))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert sorted(results.values()) == sorted(
            f"SLOW RETRY {i}".upper() for i in range(8))


def test_service_metrics_populated(tier):
    engine, _, metrics = tier
    assert metrics.counter("svc_calls").value > 0
    latency = metrics.histogram("svc_latency_seconds:echo")
    assert latency.count > 0 and latency.max > 0
    stats = engine.service_stats()
    assert stats["services"] == ["echo"]
    assert stats["outstanding"] == 0


def test_drain_sheds_then_shutdown():
    """A draining console sheds new calls with reason 'draining', lets
    in-flight ones finish, and tears down cleanly."""
    engine = ServiceEngine(
        admission=AdmissionPolicy(max_concurrent=2, max_queue=2,
                                  session_window=4))
    engine.expose(build_tier_graph("tier.drain"), "echo")
    address = engine.serve()
    try:
        with ServiceClient(address) as client:
            inflight = client.call_async("echo", TierJob("slow last"))
            time.sleep(0.05)  # let the call be admitted
            drained_box = {}
            drainer = threading.Thread(
                target=lambda: drained_box.setdefault(
                    "drained", engine.drain(timeout=30)))
            drainer.start()
            time.sleep(0.05)  # drain flag is set while the call runs
            with pytest.raises(ServiceBusy, match="draining"):
                client.call("echo", TierJob("too late"), timeout=30)
            assert inflight.result(60).text == "SLOW LAST"
            drainer.join(timeout=30)
            assert drained_box["drained"] is True
    finally:
        engine.shutdown()


def test_op_exception_reraises_but_poisons_engine():
    """An exception raised *inside* an operation follows the
    run-to-completion model: the original exception reaches the caller,
    but the engine is failed afterwards (operations must not raise; use
    protocol-level errors for expected failures).  Runs last on its own
    cluster because it deliberately kills it."""
    engine = ServiceEngine(
        admission=AdmissionPolicy(max_concurrent=2, max_queue=2,
                                  session_window=4),
        recover=False)
    engine.expose(build_tier_graph("tier.boom"), "echo")
    address = engine.serve()
    try:
        with ServiceClient(address) as client:
            with pytest.raises(ValueError, match="poison input"):
                client.call("echo", TierJob("boom now"), timeout=30)
            with pytest.raises(ScheduleError, match="failed"):
                client.call("echo", TierJob("dead now"), timeout=30)
    finally:
        engine.shutdown()
