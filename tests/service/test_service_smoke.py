"""The CI service-smoke scenario, runnable locally.

A resident uppercase service spanning three kernels serves four
concurrent *external client processes* while a deterministic
:class:`FaultPolicy` kills the ``node03`` kernel mid-stream.  Every
in-flight call must still return the correct result (split-boundary
replay + merge dedup, the documented recovery contract: the dead kernel
hosts only stateless leaf instances), the console must report a
recovery with replayed tokens, and the service must drain cleanly
afterwards.
"""

import multiprocessing

from repro.apps.strings import StringToken, build_uppercase_graph
from repro.net.recovery import FaultPolicy
from repro.service import AdmissionPolicy, ServiceClient, ServiceEngine

N_CLIENTS = 4
CALLS_PER_CLIENT = 6


def _client_proc(address, idx, out):
    """One external client: CALLS_PER_CLIENT calls, self-verified."""
    try:
        with ServiceClient(address, name=f"smoke-client-{idx}") as client:
            wrong = 0
            for j in range(CALLS_PER_CLIENT):
                text = f"client {idx} call {j}: the quick brown fox"
                result = client.call("upper", StringToken(text),
                                     timeout=120, retries=60, backoff=0.05)
                if result.text != text.upper():
                    wrong += 1
            out.put((idx, "ok", wrong,
                     client.busy_retries + client.failure_retries))
    except Exception as exc:  # pragma: no cover - failure path
        out.put((idx, f"error: {exc!r}", -1, 0))


def test_service_survives_kernel_kill_under_client_load():
    graph, *_ = build_uppercase_graph(
        "node01", "node01 node02 node03", name="smoke.upper")
    engine = ServiceEngine(
        recover=True,
        faults=FaultPolicy(kill_kernel="node03", kill_after_messages=8),
        admission=AdmissionPolicy(max_concurrent=4, max_queue=8,
                                  session_window=4))
    engine.expose(graph, "upper")
    address = engine.serve()
    ctx = multiprocessing.get_context("fork")
    out = ctx.Queue()
    procs = [ctx.Process(target=_client_proc, args=(address, i, out))
             for i in range(N_CLIENTS)]
    try:
        for p in procs:
            p.start()
        reports = [out.get(timeout=240) for _ in procs]
        for p in procs:
            p.join(timeout=30)

        statuses = {idx: status for idx, status, _, _ in reports}
        assert all(status == "ok" for status in statuses.values()), statuses
        assert sum(wrong for _, _, wrong, _ in reports) == 0

        recovered, replayed = engine.recovery_snapshot()
        assert recovered is True
        assert replayed > 0

        # after the storm the service still serves and drains cleanly
        with ServiceClient(address, name="smoke-client-after") as client:
            result = client.call("upper", StringToken("still here"),
                                 timeout=60, retries=20)
            assert result.text == "STILL HERE"
        assert engine.drain(timeout=60) is True
        stats = engine.service_stats()
        assert stats["outstanding"] == 0 and stats["draining"] is True
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
        engine.shutdown()
