"""AdmissionPolicy semantics and MSG_SVC_* wire round-trips."""

import numpy as np
import pytest

from repro.net import protocol as P
from repro.serial import Buffer, ComplexToken, SimpleToken, gather
from repro.service import AdmissionPolicy
from repro.service.records import graph_signature


class SvcReq(SimpleToken):
    def __init__(self, n=0):
        self.n = n


class SvcBlock(ComplexToken):
    def __init__(self, data=None):
        self.data = Buffer(data if data is not None else [])


def roundtrip(segments):
    return P.decode_message(bytearray(gather(segments)), {})


# ---------------------------------------------------------------------------
# policy
# ---------------------------------------------------------------------------

def test_policy_defaults_and_capacity():
    p = AdmissionPolicy()
    assert p.capacity == p.max_concurrent + p.max_queue
    assert p.session_window >= 1


@pytest.mark.parametrize("kwargs", [
    {"max_concurrent": 0},
    {"max_queue": -1},
    {"session_window": 0},
])
def test_policy_validates(kwargs):
    with pytest.raises(ValueError):
        AdmissionPolicy(**kwargs)


def test_policy_grant_window_clamps():
    p = AdmissionPolicy(session_window=8)
    assert p.grant_window(0) == 8      # 0 = server default
    assert p.grant_window(3) == 3
    assert p.grant_window(100) == 8    # never above the policy cap
    assert p.grant_window(-5) == 8


def test_policy_is_frozen():
    p = AdmissionPolicy()
    with pytest.raises(AttributeError):
        p.max_concurrent = 99


# ---------------------------------------------------------------------------
# wire messages
# ---------------------------------------------------------------------------

def test_svc_open_roundtrip():
    kind, value = roundtrip(P.encode_svc_open("client-1", 6))
    assert kind == P.MSG_SVC_OPEN
    assert value == ("client-1", 6)
    kind, value = roundtrip(P.encode_svc_open("client-2"))
    assert value == ("client-2", 0)  # 0 = ask for the server default


def test_svc_open_ok_roundtrip():
    kind, value = roundtrip(P.encode_svc_open_ok(8, 7 << 33))
    assert kind == P.MSG_SVC_OPEN_OK
    assert value == (8, 7 << 33)


def test_svc_call_roundtrip_with_payload():
    payload = np.arange(12, dtype=np.uint8).reshape(3, 4)
    kind, value = roundtrip(P.encode_svc_call(
        "client-1", 42, "gol.read", SvcBlock(payload)))
    assert kind == P.MSG_SVC_CALL
    client, request_id, service, token = value
    assert (client, request_id, service) == ("client-1", 42, "gol.read")
    assert np.array_equal(token.data.array, payload)


def test_svc_reply_roundtrip():
    payload = np.ones((2, 2))
    kind, value = roundtrip(P.encode_svc_reply(43, SvcBlock(payload)))
    assert kind == P.MSG_SVC_REPLY
    request_id, token = value
    assert request_id == 43
    assert np.array_equal(token.data.array, payload)


def test_svc_busy_roundtrip_and_alias():
    kind, value = roundtrip(P.encode_svc_busy(44, "at capacity (6/6)"))
    assert kind == P.MSG_SVC_BUSY == P.MSG_SERVICE_BUSY
    assert value == (44, "at capacity (6/6)")


def test_svc_error_roundtrip_rebuilds_exception():
    kind, value = roundtrip(P.encode_svc_error(45, ValueError("bad block")))
    assert kind == P.MSG_SVC_ERROR
    request_id, exc = value
    assert request_id == 45
    assert isinstance(exc, ValueError)
    assert "bad block" in str(exc)


def test_svc_error_unpicklable_falls_back():
    class Weird(Exception):
        pass  # local class: unpicklable in the receiving process

    kind, (request_id, exc) = roundtrip(P.encode_svc_error(
        46, Weird("local detail")))
    assert kind == P.MSG_SVC_ERROR and request_id == 46
    assert isinstance(exc, Exception)
    assert "local detail" in str(exc) or "Weird" in str(exc)


def test_svc_close_roundtrip():
    kind, value = roundtrip(P.encode_svc_close("client-1"))
    assert kind == P.MSG_SVC_CLOSE
    assert value == "client-1"


def test_svc_kinds_do_not_collide():
    kinds = [P.MSG_SVC_OPEN, P.MSG_SVC_OPEN_OK, P.MSG_SVC_CALL,
             P.MSG_SVC_REPLY, P.MSG_SVC_BUSY, P.MSG_SVC_ERROR,
             P.MSG_SVC_CLOSE]
    assert len(set(kinds)) == len(kinds)
    assert min(kinds) > P.MSG_REPLAY_DONE  # above the data-plane kinds


# ---------------------------------------------------------------------------
# service records
# ---------------------------------------------------------------------------

def test_graph_signature_uses_registered_names():
    from repro.apps.strings import build_uppercase_graph

    graph, *_ = build_uppercase_graph("node01", "node01 node02",
                                      name="sig.check")
    in_types, out_types = graph_signature(graph)
    assert in_types == ("StringToken",)
    assert out_types == ("StringToken",)
