"""Tests for the experiment harnesses (fast mode) and the CLI."""

import pytest

import math

from repro.cli import main as cli_main
from repro.experiments import ALL, ExperimentResult, format_table
from repro.experiments import fig6_throughput, table1_overlap, table2_services


def test_all_registry_complete():
    assert sorted(ALL) == ["fig15", "fig6", "fig9", "table1", "table2",
                           "table2r"]


def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "2.50" in text and "0.25" in text
    assert all(len(l) == len(lines[0]) for l in lines[1:])


def test_format_table_empty_rows():
    text = format_table(["x"], [])
    assert "x" in text


def test_experiment_result_report():
    r = ExperimentResult("t", "a title", ["h"], [[1]], notes="a note")
    out = r.report()
    assert "== t: a title ==" in out
    assert "a note" in out


def test_fig6_fast_structure():
    r = fig6_throughput.run(fast=True)
    assert r.name == "fig6"
    assert len(r.rows) == len(fig6_throughput.FAST_SIZES)
    assert r.data["sockets"] and r.data["dps"]
    # the core claim holds even in fast mode
    assert r.data["dps"][0] < r.data["sockets"][0]


def test_table1_fast_structure():
    r = table1_overlap.run(fast=True)
    assert r.name == "table1"
    assert all(red > 0 for red in r.data["reductions"].values())
    assert len(r.rows) == 8  # 4 block sizes x 2 node counts


def test_table2_resident_fast_structure():
    r = table2_services.run_resident(fast=True)
    assert r.name == "table2r"
    labels = [row[0] for row in r.rows]
    assert labels == ["none", "8x8", "24x24", "24x48"]
    # the no-client baseline row has no call columns
    assert math.isnan(r.data["none"]["call_ms"])
    assert r.data["none"]["iter_ms"] > 0
    # every paced external client really called the resident service
    for label in labels[1:]:
        assert r.data[label]["call_ms"] > 0
        assert r.data[label]["cps"] > 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_list(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ALL:
        assert name in out


def test_cli_runs_one_experiment(capsys):
    assert cli_main(["fig6", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "fig6" in out
    assert "DPS [MB/s]" in out
    assert "fast mode" in out


def test_cli_demo(capsys):
    assert cli_main(["demo"]) == 0
    out = capsys.readouterr().out
    assert "DYNAMIC PARALLEL SCHEDULES" in out
    assert "timeline" in out


def test_cli_stream(capsys):
    assert cli_main(["stream", "--items", "64"]) == 0
    out = capsys.readouterr().out
    assert "windows" in out
    assert "MATCH" in out


def test_cli_stream_shedding(capsys):
    assert cli_main(["stream", "--items", "64", "--credit-window", "4",
                     "--shedding", "shed"]) == 0
    out = capsys.readouterr().out
    assert "shed" in out


def test_cli_rejects_unknown():
    with pytest.raises(SystemExit):
        cli_main(["nonsense"])
