"""Unit tests for Store and Resource primitives."""

import pytest

from repro.simkernel import Resource, Simulator, Store


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_put_then_get_immediate():
    sim = Simulator()
    store = Store(sim)
    got = []

    def proc(sim):
        yield store.put("x")
        item = yield store.get()
        got.append(item)

    sim.spawn(proc(sim))
    sim.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim):
        item = yield store.get()
        got.append((sim.now, item))

    def putter(sim):
        yield sim.timeout(4.0)
        yield store.put("late")

    sim.spawn(getter(sim))
    sim.spawn(putter(sim))
    sim.run()
    assert got == [(4.0, "late")]


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer(sim):
        for i in range(5):
            yield store.put(i)

    def consumer(sim):
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    sim.spawn(producer(sim))
    sim.spawn(consumer(sim))
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_bounded_capacity_blocks_putter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    log = []

    def producer(sim):
        yield store.put("a")
        log.append(("put-a", sim.now))
        yield store.put("b")
        log.append(("put-b", sim.now))

    def consumer(sim):
        yield sim.timeout(10.0)
        item = yield store.get()
        log.append(("got", item, sim.now))

    sim.spawn(producer(sim))
    sim.spawn(consumer(sim))
    sim.run()
    assert ("put-a", 0.0) in log
    assert ("put-b", 10.0) in log  # blocked until the consumer freed a slot


def test_store_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_store_multiple_getters_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim, tag):
        item = yield store.get()
        got.append((tag, item))

    def putter(sim):
        yield sim.timeout(1.0)
        yield store.put("first")
        yield store.put("second")

    sim.spawn(getter(sim, "g1"))
    sim.spawn(getter(sim, "g2"))
    sim.spawn(putter(sim))
    sim.run()
    assert got == [("g1", "first"), ("g2", "second")]


def test_store_filtered_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter(sim):
        item = yield store.get(filter=lambda x: x % 2 == 0)
        got.append(item)

    def putter(sim):
        yield store.put(1)
        yield store.put(3)
        yield store.put(4)

    sim.spawn(getter(sim))
    sim.spawn(putter(sim))
    sim.run()
    assert got == [4]
    assert list(store.items) == [1, 3]


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    ok, item = store.try_get()
    assert not ok and item is None

    def putter(sim):
        yield store.put("z")

    sim.spawn(putter(sim))
    sim.run()
    ok, item = store.try_get()
    assert ok and item == "z"


def test_store_len_and_counts():
    sim = Simulator()
    store = Store(sim)

    def putter(sim):
        yield store.put(1)
        yield store.put(2)

    sim.spawn(putter(sim))
    sim.run()
    assert len(store) == 2
    assert store.waiting_getters == 0
    assert store.waiting_putters == 0


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_serializes_access():
    sim = Simulator()
    cpu = Resource(sim, capacity=1)
    spans = []

    def worker(sim, tag, work):
        req = cpu.request()
        yield req
        start = sim.now
        yield sim.timeout(work)
        req.release()
        spans.append((tag, start, sim.now))

    sim.spawn(worker(sim, "a", 2.0))
    sim.spawn(worker(sim, "b", 3.0))
    sim.run()
    assert spans == [("a", 0.0, 2.0), ("b", 2.0, 5.0)]


def test_resource_capacity_two_runs_in_parallel():
    sim = Simulator()
    cpu = Resource(sim, capacity=2)
    spans = []

    def worker(sim, tag, work):
        req = cpu.request()
        yield req
        start = sim.now
        yield sim.timeout(work)
        req.release()
        spans.append((tag, start, sim.now))

    for tag in ("a", "b", "c"):
        sim.spawn(worker(sim, tag, 2.0))
    sim.run()
    assert ("a", 0.0, 2.0) in spans
    assert ("b", 0.0, 2.0) in spans
    assert ("c", 2.0, 4.0) in spans


def test_resource_release_is_idempotent():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker(sim):
        req = res.request()
        yield req
        req.release()
        req.release()  # no error

    sim.spawn(worker(sim))
    sim.run()
    assert res.count == 0


def test_resource_cancel_queued_request():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def holder(sim):
        req = res.request()
        yield req
        yield sim.timeout(10.0)
        req.release()

    def impatient(sim):
        req = res.request()
        yield sim.timeout(1.0)
        req.release()  # withdraw while still queued
        log.append("withdrew")

    sim.spawn(holder(sim))
    sim.spawn(impatient(sim))
    sim.run()
    assert log == ["withdrew"]
    assert res.count == 0
    assert res.queued == 0


def test_resource_utilization():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker(sim):
        req = res.request()
        yield req
        yield sim.timeout(5.0)
        req.release()
        yield sim.timeout(5.0)

    sim.spawn(worker(sim))
    sim.run()
    assert res.utilization() == pytest.approx(0.5)


def test_resource_invalid_capacity():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)
