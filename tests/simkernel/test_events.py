"""Unit tests for the discrete-event kernel: events, timeouts, processes."""

import pytest

from repro.simkernel import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.peek() == float("inf")


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.5)
        return "done"

    p = sim.spawn(proc(sim))
    sim.run()
    assert sim.now == 2.5
    assert p.value == "done"
    assert p.ok


def test_timeout_value_passthrough():
    sim = Simulator()
    results = []

    def proc(sim):
        v = yield sim.timeout(1.0, value=42)
        results.append(v)

    sim.spawn(proc(sim))
    sim.run()
    assert results == [42]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_sequential_timeouts_accumulate():
    sim = Simulator()
    times = []

    def proc(sim):
        for _ in range(3):
            yield sim.timeout(1.0)
            times.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert times == [1.0, 2.0, 3.0]


def test_simultaneous_events_fire_in_schedule_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        sim.spawn(proc(sim, tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    ev = sim.event()
    seen = []

    def waiter(sim):
        v = yield ev
        seen.append((sim.now, v))

    def trigger(sim):
        yield sim.timeout(3.0)
        ev.succeed("payload")

    sim.spawn(waiter(sim))
    sim.spawn(trigger(sim))
    sim.run()
    assert seen == [(3.0, "payload")]


def test_event_double_trigger_is_error():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()
    caught = []

    def waiter(sim):
        try:
            yield ev
        except ValueError as e:
            caught.append(str(e))

    sim.spawn(waiter(sim))
    ev.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_fail_requires_exception_instance():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_unhandled_process_exception_propagates_from_run():
    sim = Simulator()

    def bad(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("crash")

    sim.spawn(bad(sim))
    with pytest.raises(RuntimeError, match="crash"):
        sim.run()


def test_joined_process_exception_delivered_to_joiner():
    sim = Simulator()
    caught = []

    def bad(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("crash")

    def joiner(sim, p):
        try:
            yield p
        except RuntimeError as e:
            caught.append(str(e))

    p = sim.spawn(bad(sim))
    sim.spawn(joiner(sim, p))
    sim.run()
    assert caught == ["crash"]


def test_process_join_returns_value():
    sim = Simulator()
    got = []

    def child(sim):
        yield sim.timeout(2.0)
        return 99

    def parent(sim):
        v = yield sim.spawn(child(sim))
        got.append((sim.now, v))

    sim.spawn(parent(sim))
    sim.run()
    assert got == [(2.0, 99)]


def test_process_yielding_non_event_fails():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.spawn(bad(sim))
    with pytest.raises(SimulationError, match="must yield Event"):
        sim.run()


def test_interrupt_waiting_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
            log.append("overslept")
        except Interrupt as i:
            log.append(("interrupted", sim.now, i.cause))

    def interrupter(sim, target):
        yield sim.timeout(5.0)
        target.interrupt("wake up")

    p = sim.spawn(sleeper(sim))
    sim.spawn(interrupter(sim, p))
    sim.run()
    assert log == [("interrupted", 5.0, "wake up")]


def test_interrupt_terminated_process_is_error():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    p = sim.spawn(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupted_process_can_continue():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            pass
        yield sim.timeout(1.0)
        log.append(sim.now)

    def interrupter(sim, target):
        yield sim.timeout(5.0)
        target.interrupt()

    p = sim.spawn(sleeper(sim))
    sim.spawn(interrupter(sim, p))
    sim.run()
    assert log == [6.0]


def test_run_until_stops_clock():
    sim = Simulator()
    log = []

    def ticker(sim):
        while True:
            yield sim.timeout(1.0)
            log.append(sim.now)

    sim.spawn(ticker(sim))
    sim.run(until=3.5)
    assert log == [1.0, 2.0, 3.0]
    assert sim.now == 3.5


def test_run_until_advances_clock_when_heap_drains_early():
    """Regression: a workload that finishes before *until* must still
    leave the clock at *until*, not at the last event time."""
    sim = Simulator()

    def short(sim):
        yield sim.timeout(1.0)

    sim.spawn(short(sim))
    final = sim.run(until=5.0)
    assert final == 5.0
    assert sim.now == 5.0


def test_run_until_advances_clock_with_empty_heap():
    sim = Simulator()
    final = sim.run(until=2.0)
    assert final == 2.0
    assert sim.now == 2.0


def test_any_of_first_wins():
    sim = Simulator()
    got = []

    def proc(sim):
        a = sim.timeout(5.0, value="slow")
        b = sim.timeout(2.0, value="fast")
        result = yield AnyOf(sim, [a, b])
        got.append((sim.now, sorted(result.values())))

    sim.spawn(proc(sim))
    sim.run()
    assert got == [(2.0, ["fast"])]


def test_all_of_waits_for_all():
    sim = Simulator()
    got = []

    def proc(sim):
        a = sim.timeout(5.0, value="a")
        b = sim.timeout(2.0, value="b")
        result = yield AllOf(sim, [a, b])
        got.append((sim.now, sorted(result.values())))

    sim.spawn(proc(sim))
    sim.run()
    assert got == [(5.0, ["a", "b"])]


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)


def test_step_and_peek():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)

    sim.spawn(proc(sim))
    assert sim.peek() == 0.0  # bootstrap event
    stepped = 0
    while sim.step():
        stepped += 1
    assert sim.now == 3.0
    assert stepped >= 3
