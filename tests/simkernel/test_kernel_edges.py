"""Edge-case and property tests for the simulation kernel."""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Resource,
    SimulationError,
    Simulator,
    Store,
)


# ---------------------------------------------------------------------------
# event ordering properties
# ---------------------------------------------------------------------------

@settings(max_examples=80, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=30))
def test_events_fire_in_time_order(delays):
    sim = Simulator()
    fired = []

    def proc(sim, d):
        yield sim.timeout(d)
        fired.append(sim.now)

    for d in delays:
        sim.spawn(proc(sim, d))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.floats(0, 10, allow_nan=False),
                          st.floats(0, 10, allow_nan=False)),
                min_size=1, max_size=15))
def test_sequential_process_time_is_sum(legs):
    sim = Simulator()

    def proc(sim):
        for a, b in legs:
            yield sim.timeout(a)
            yield sim.timeout(b)

    sim.spawn(proc(sim))
    sim.run()
    assert sim.now == pytest.approx(sum(a + b for a, b in legs))


# ---------------------------------------------------------------------------
# condition events
# ---------------------------------------------------------------------------

def test_any_of_empty_succeeds_immediately():
    sim = Simulator()
    done = []

    def proc(sim):
        result = yield AnyOf(sim, [])
        done.append(result)

    sim.spawn(proc(sim))
    sim.run()
    assert done == [{}]


def test_all_of_propagates_failure():
    sim = Simulator()
    caught = []

    def failer(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("child died")

    def waiter(sim, p):
        try:
            yield AllOf(sim, [p, sim.timeout(5.0)])
        except RuntimeError as e:
            caught.append(str(e))

    p = sim.spawn(failer(sim))
    sim.spawn(waiter(sim, p))
    sim.run()
    assert caught == ["child died"]


def test_condition_rejects_foreign_events():
    sim1, sim2 = Simulator(), Simulator()
    with pytest.raises(SimulationError, match="same simulator"):
        AnyOf(sim1, [sim2.timeout(1.0)])


# ---------------------------------------------------------------------------
# store edge cases
# ---------------------------------------------------------------------------

def test_store_cancel_get():
    sim = Simulator()
    store = Store(sim)
    got = []

    def impatient(sim):
        req = store.get()
        yield sim.timeout(1.0)
        store.cancel_get(req)

    def patient(sim):
        item = yield store.get()
        got.append(item)

    def putter(sim):
        yield sim.timeout(2.0)
        yield store.put("late")

    sim.spawn(impatient(sim))
    sim.spawn(patient(sim))
    sim.spawn(putter(sim))
    sim.run()
    # the canceled getter never consumed the item
    assert got == ["late"]


def test_store_filter_skips_getter_until_match():
    sim = Simulator()
    store = Store(sim)
    got = []

    def even_getter(sim):
        item = yield store.get(filter=lambda x: x % 2 == 0)
        got.append(("even", item, sim.now))

    def any_getter(sim):
        item = yield store.get()
        got.append(("any", item, sim.now))

    def putter(sim):
        yield sim.timeout(1.0)
        yield store.put(3)     # matches only the unfiltered getter
        yield sim.timeout(1.0)
        yield store.put(4)     # now the even getter fires

    sim.spawn(even_getter(sim))
    sim.spawn(any_getter(sim))
    sim.spawn(putter(sim))
    sim.run()
    assert ("any", 3, 1.0) in got
    assert ("even", 4, 2.0) in got


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 100), min_size=1, max_size=50),
       st.integers(1, 10))
def test_bounded_store_preserves_fifo(items, capacity):
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    got = []

    def producer(sim):
        for item in items:
            yield store.put(item)

    def consumer(sim):
        for _ in items:
            item = yield store.get()
            got.append(item)
            yield sim.timeout(0.1)

    sim.spawn(producer(sim))
    sim.spawn(consumer(sim))
    sim.run()
    assert got == items


# ---------------------------------------------------------------------------
# resources under churn
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(st.integers(1, 4), st.integers(1, 20))
def test_resource_never_exceeds_capacity(capacity, n_workers):
    sim = Simulator()
    res = Resource(sim, capacity=capacity)
    high_water = [0]

    def worker(sim):
        req = res.request()
        yield req
        high_water[0] = max(high_water[0], res.count)
        yield sim.timeout(1.0)
        req.release()

    for _ in range(n_workers):
        sim.spawn(worker(sim))
    sim.run()
    assert high_water[0] <= capacity
    assert res.count == 0
    assert res.queued == 0


def test_interrupt_while_holding_resource_releases_in_finally():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder(sim):
        req = res.request()
        yield req
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            order.append("interrupted")
        finally:
            req.release()

    def second(sim):
        req = res.request()
        yield req
        order.append(("second got it", sim.now))
        req.release()

    def interrupter(sim, p):
        yield sim.timeout(2.0)
        p.interrupt()

    p = sim.spawn(holder(sim))
    sim.spawn(second(sim))
    sim.spawn(interrupter(sim, p))
    sim.run()
    assert order == ["interrupted", ("second got it", 2.0)]
