"""Unit tests for the cost models."""

import pytest

from repro.cluster import costs


def test_matmul_flops():
    assert costs.matmul_flops(2, 3, 4) == 2 * 2 * 3 * 4
    assert costs.matmul_flops(256, 256, 256) == 2 * 256**3


def test_matmul_accumulate_slightly_more():
    assert costs.matmul_accumulate_flops(8, 8, 8) > costs.matmul_flops(8, 8, 8)


def test_lu_panel_flops_square_matches_classic_third_n_cubed():
    n = 300
    got = costs.lu_panel_flops(n, n)
    assert got == pytest.approx(2 * n**3 / 3, rel=0.02)


def test_lu_panel_flops_rectangular_positive_and_monotone():
    assert costs.lu_panel_flops(100, 10) > 0
    assert costs.lu_panel_flops(200, 10) > costs.lu_panel_flops(100, 10)
    assert costs.lu_panel_flops(100, 20) > costs.lu_panel_flops(100, 10)


def test_lu_panel_flops_exact_small():
    # rows=3, cols=2: j=0: 2*3*2=12, j=1: 2*2*1=4 -> 16
    assert costs.lu_panel_flops(3, 2) == pytest.approx(16.0)


def test_trsm_flops():
    assert costs.trsm_flops(4, 8) == 4 * 4 * 8


def test_gol_costs_scale_linearly():
    assert costs.gol_cell_flops(100) == 10 * costs.gol_cell_flops(10)
    assert costs.gol_band_flops(400, 50) == costs.gol_cell_flops(400 * 50)


def test_serialize_cost_has_fixed_and_linear_parts():
    base = costs.serialize_cpu_seconds(0)
    assert base == pytest.approx(costs.SERIALIZE_PER_MESSAGE_SECONDS)
    one_mb = costs.serialize_cpu_seconds(1_000_000)
    assert one_mb == pytest.approx(base + 1_000_000 / costs.MEMCPY_BYTES_PER_SECOND)
