"""Unit tests for the cluster hardware model."""

import pytest

from repro.cluster import (
    Cluster,
    ClusterSpec,
    NetworkSpec,
    NodeSpec,
    paper_cluster,
)
from repro.simkernel import Simulator  # noqa: F401 (used in appended tests)


def make_cluster(n=2, **net_kwargs):
    sim = Simulator()
    spec = paper_cluster(n, network=NetworkSpec(**net_kwargs))
    return sim, Cluster(sim, spec)


# ---------------------------------------------------------------------------
# specs
# ---------------------------------------------------------------------------

def test_node_spec_validation():
    with pytest.raises(ValueError):
        NodeSpec(name="")
    with pytest.raises(ValueError):
        NodeSpec(name="a", cpus=0)
    with pytest.raises(ValueError):
        NodeSpec(name="a", flops=-1)


def test_network_spec_validation():
    with pytest.raises(ValueError):
        NetworkSpec(bandwidth=0)
    with pytest.raises(ValueError):
        NetworkSpec(latency=-1)


def test_cluster_spec_duplicate_names():
    with pytest.raises(ValueError, match="duplicate"):
        ClusterSpec((NodeSpec("a"), NodeSpec("a")))


def test_paper_cluster_defaults():
    spec = paper_cluster()
    assert len(spec.nodes) == 8
    assert all(n.cpus == 2 for n in spec.nodes)
    assert spec.node_names[0] == "node01"


def test_with_nodes_subsets():
    spec = paper_cluster(8)
    small = spec.with_nodes(3)
    assert small.node_names == ["node01", "node02", "node03"]
    with pytest.raises(ValueError):
        spec.with_nodes(9)
    with pytest.raises(ValueError):
        spec.with_nodes(0)


def test_cluster_unknown_node():
    sim, cluster = make_cluster(2)
    with pytest.raises(KeyError, match="unknown node"):
        cluster.node("nope")


# ---------------------------------------------------------------------------
# compute
# ---------------------------------------------------------------------------

def test_compute_seconds_advances_clock():
    sim, cluster = make_cluster(1)
    node = cluster.node("node01")

    def proc(sim):
        yield from node.compute_seconds(3.0)

    sim.spawn(proc(sim))
    sim.run()
    assert sim.now == 3.0
    assert node.compute_time == 3.0


def test_compute_flops_uses_node_rate():
    sim = Simulator()
    spec = ClusterSpec((NodeSpec("n", cpus=1, flops=100.0),))
    cluster = Cluster(sim, spec)
    node = cluster.node("n")

    def proc(sim):
        yield from node.compute_flops(250.0)

    sim.spawn(proc(sim))
    sim.run()
    assert sim.now == pytest.approx(2.5)


def test_biprocessor_runs_two_jobs_in_parallel():
    sim, cluster = make_cluster(1)
    node = cluster.node("node01")  # 2 cpus
    ends = []

    def proc(sim):
        yield from node.compute_seconds(5.0)
        ends.append(sim.now)

    for _ in range(3):
        sim.spawn(proc(sim))
    sim.run()
    assert ends == [5.0, 5.0, 10.0]


# ---------------------------------------------------------------------------
# network
# ---------------------------------------------------------------------------

def test_isolated_message_time():
    sim, cluster = make_cluster(2, bandwidth=1e6, latency=1e-3,
                                send_overhead=1e-4, recv_overhead=1e-4)
    a, b = cluster.node("node01"), cluster.node("node02")
    done = cluster.network.transfer(a, b, 10_000)
    sim.run()
    # 1e-4 + 0.01 + 1e-3 + 1e-4 + 0.01
    assert sim.now == pytest.approx(0.0212)
    assert done.value.delivered_at == pytest.approx(0.0212)


def test_message_time_formula_matches_model():
    sim, cluster = make_cluster(2)
    spec = cluster.network.spec
    a, b = cluster.node("node01"), cluster.node("node02")
    cluster.network.transfer(a, b, 65536)
    sim.run()
    assert sim.now == pytest.approx(spec.message_time(65536))


def test_local_transfer_bypasses_nic():
    sim, cluster = make_cluster(1)
    a = cluster.node("node01")
    cluster.network.transfer(a, a, 10**9)  # a gigabyte, locally: pointer pass
    sim.run()
    assert sim.now == pytest.approx(cluster.network.spec.local_delay)
    assert cluster.network.local_messages == 1
    assert cluster.network.messages_sent == 0


def test_sender_nic_serializes_messages():
    sim, cluster = make_cluster(3, bandwidth=1e6, latency=0.0,
                                send_overhead=0.0, recv_overhead=0.0)
    a = cluster.node("node01")
    deliveries = []
    for dst in ("node02", "node03"):
        ev = cluster.network.transfer(a, cluster.node(dst), 1_000_000)
        ev.add_callback(lambda e: deliveries.append((e.value.dst, sim.now)))
    sim.run()
    # Each message: 1 s tx + 1 s rx; the two tx phases serialize on node01.
    assert deliveries[0] == ("node02", 2.0)
    assert deliveries[1] == ("node03", 3.0)


def test_full_duplex_send_and_receive_overlap():
    sim, cluster = make_cluster(2, bandwidth=1e6, latency=0.0,
                                send_overhead=0.0, recv_overhead=0.0)
    a, b = cluster.node("node01"), cluster.node("node02")
    cluster.network.transfer(a, b, 1_000_000)
    cluster.network.transfer(b, a, 1_000_000)
    sim.run()
    # Opposite directions share nothing: both finish at tx+rx = 2 s.
    assert sim.now == pytest.approx(2.0)


def test_receiver_nic_is_a_bottleneck_for_convergecast():
    sim, cluster = make_cluster(3, bandwidth=1e6, latency=0.0,
                                send_overhead=0.0, recv_overhead=0.0)
    c = cluster.node("node03")
    ends = []
    for src in ("node01", "node02"):
        ev = cluster.network.transfer(cluster.node(src), c, 1_000_000)
        ev.add_callback(lambda e: ends.append(sim.now))
    sim.run()
    # rx at node03 serializes: second delivery one wire-time later.
    assert ends == [2.0, 3.0]


def test_traffic_accounting():
    sim, cluster = make_cluster(2)
    a, b = cluster.node("node01"), cluster.node("node02")
    cluster.network.transfer(a, b, 100)
    cluster.network.transfer(a, b, 200)
    sim.run()
    assert cluster.network.messages_sent == 2
    assert cluster.network.bytes_sent == 300


def test_negative_size_rejected():
    sim, cluster = make_cluster(2)
    with pytest.raises(ValueError):
        cluster.network.transfer(cluster.node("node01"), cluster.node("node02"), -1)


def test_steady_state_stream_saturates_bandwidth():
    """A pipelined stream of messages approaches the NIC bandwidth."""
    sim, cluster = make_cluster(2, bandwidth=1e6, latency=50e-6,
                                send_overhead=10e-6, recv_overhead=10e-6)
    a, b = cluster.node("node01"), cluster.node("node02")
    n_msgs, size = 50, 100_000

    def sender(sim):
        for _ in range(n_msgs):
            yield cluster.network.transfer(a, b, size)

    # Fire-and-forget pipelining: don't wait for delivery between sends.
    def pipelined(sim):
        last = None
        for _ in range(n_msgs):
            last = cluster.network.transfer(a, b, size)
            # pace at tx rate so the tx queue models back-to-back sends
            yield sim.timeout(size / 1e6)
        yield last

    sim.spawn(pipelined(sim))
    sim.run()
    throughput = n_msgs * size / sim.now
    assert throughput > 0.85e6  # within 15% of the 1 MB/s wire rate


def test_loopback_between_co_hosted_nodes():
    """Nodes sharing a host (debug kernels) use loopback parameters."""
    sim = Simulator()
    spec = ClusterSpec(
        nodes=(NodeSpec("k1", host="pc"), NodeSpec("k2", host="pc"),
               NodeSpec("k3", host="other")),
        network=NetworkSpec(),
    )
    cluster = Cluster(sim, spec)
    net = cluster.network
    net.transfer(cluster.node("k1"), cluster.node("k2"), 100_000)
    t_loopback = sim.run()
    assert net.loopback_messages == 1

    sim2 = Simulator()
    cluster2 = Cluster(sim2, spec)
    cluster2.network.transfer(cluster2.node("k1"), cluster2.node("k3"),
                              100_000)
    t_wire = sim2.run()
    assert cluster2.network.loopback_messages == 0
    assert t_loopback < t_wire  # loopback is faster than the physical wire


def test_tx_extra_occupies_sender_nic():
    sim, cluster = make_cluster(2, bandwidth=1e6, latency=0.0,
                                send_overhead=0.0, recv_overhead=0.0)
    a, b = cluster.node("node01"), cluster.node("node02")
    cluster.network.transfer(a, b, 1_000_000, tx_extra=0.5, rx_extra=0.25)
    sim.run()
    # 1s tx wire + 0.5 extra + 1s rx wire + 0.25 extra
    assert sim.now == pytest.approx(2.75)
