"""Codec fast-path selection: plans, the compiled visitor, pure fallback.

This module is the runtime switchboard for the two accelerated wire
paths layered over the generic codec in :mod:`~repro.serial.wire`:

1. **Token-type plans** (:mod:`~repro.serial.plans`): per-token-type
   precompiled ``struct.Struct`` batches for all-scalar field layouts,
   built lazily from the first encode / first decode of each type and
   keyed by the type's signature.
2. **The compiled visitor** (``repro.serial._wirec``): an optional
   C extension handling the common value subset, built best-effort by
   ``setup.py`` and loaded best-effort here — importing :mod:`repro`
   never requires a C compiler or a built artifact.

Selection order per message: plan → compiled → pure.  Every fast path
is *total-fallback*: any value it does not handle bit-identically makes
the whole message take the pure visitor, so wire bytes are identical
across paths in both directions (pinned by the parity property suite).

The mode knob (``TransportPolicy.codec`` / ``REPRO_CODEC`` / CLI
``--codec``) takes ``"auto"`` (plans plus the compiled visitor when its
import succeeds — the default), ``"fast"`` (same selection, named
explicitly for A/B runs) or ``"pure"`` (generic visitor only).

Counters (:func:`take_counters`) feed the ``codec_fast_path`` /
``codec_fallbacks`` metrics folded into each kernel's metrics registry.

Import order note: :mod:`~repro.serial.wire` imports this module at the
bottom of its own body and calls :func:`_bind`, handing over the
helpers the array paths delegate to; nothing here imports ``wire``.
"""

from __future__ import annotations

import os
import struct
from typing import Any, Callable, Dict, Optional

from .plans import PlanMiss, build_decode_plan, build_encode_plan
from .registry import TokenRegistry, registry as _default_registry

__all__ = [
    "CODEC_MODES",
    "set_codec",
    "get_codec",
    "codec_in_use",
    "compiled_available",
    "warm",
    "take_counters",
    "reset_plans",
]

CODEC_MODES = ("auto", "fast", "pure")


class _Unsupported(Exception):
    """A fast path cannot reproduce this message; use the pure visitor."""


# -- compiled extension (best-effort) ---------------------------------------

try:  # pragma: no cover - exercised via the codec-parity CI job
    from . import _wirec as _compiled_mod
except ImportError:
    _compiled_mod = None

_compiled_encode: Optional[Callable] = None
_compiled_decode: Optional[Callable] = None

# -- wire bindings (installed by wire.py at the bottom of its body) ---------

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")

_np = None
_Buffer = None
_Vector = None
_WireError = Exception
_decode_ndarray = None
_segment_threshold = 1 << 30


def _encode_array(arr) -> bytes:
    """Inline ndarray header + payload, mirroring ``_encode_ndarray``.

    Arrays at or above the scatter-gather segment threshold must become
    borrowed memoryview segments — only the pure visitor builds those,
    so they raise :class:`_Unsupported` here.  Error semantics for
    unserializable arrays (object dtype, >255 dims) match the pure path
    exactly: the same exception types escape from either visitor.
    """
    if arr.dtype.hasobject:
        raise _WireError("object-dtype arrays are not serializable")
    contiguous = arr if arr.flags.c_contiguous \
        else _np.ascontiguousarray(arr)
    if contiguous.nbytes >= _segment_threshold:
        raise _Unsupported
    dtype_str = contiguous.dtype.str.encode("ascii")
    parts = [_U8.pack(len(dtype_str)), dtype_str, _U8.pack(arr.ndim)]
    for dim in arr.shape:
        parts.append(_U32.pack(dim))
    parts.append(contiguous.tobytes())
    return b"".join(parts)


def _decode_array(src, offset: int, copy: int, as_buffer: int):
    """Decode one ndarray/Buffer payload for the compiled visitor."""
    view = src if type(src) is memoryview else memoryview(src)
    try:
        arr, offset = _decode_ndarray(view, offset, bool(copy))
    except (struct.error, ValueError):
        # Malformed header/payload: the pure re-decode raises the
        # canonical error from the identical position.
        raise _Unsupported from None
    if as_buffer:
        buf = _Buffer.__new__(_Buffer)
        buf.array = arr
        return buf, offset
    return arr, offset


def _bind(wire_ns: Dict[str, Any]) -> None:
    """Receive the generic codec's internals (called from ``wire.py``)."""
    global _np, _Buffer, _Vector, _WireError, _decode_ndarray
    global _segment_threshold, _compiled_encode, _compiled_decode
    _np = wire_ns["np"]
    _Buffer = wire_ns["Buffer"]
    _Vector = wire_ns["Vector"]
    _WireError = wire_ns["WireError"]
    _decode_ndarray = wire_ns["_decode_ndarray"]
    _segment_threshold = wire_ns["_SEGMENT_THRESHOLD"]
    if _compiled_mod is not None:
        try:
            _compiled_mod.setup(_Unsupported, _Buffer, _Vector,
                                _np.ndarray, _encode_array, _decode_array)
            _compiled_encode = _compiled_mod.encode_token
            _compiled_decode = _compiled_mod.decode_token
        except Exception:  # pragma: no cover - defensive: stale binary
            _compiled_encode = _compiled_decode = None


# -- mode -------------------------------------------------------------------

_mode = "auto"
enabled = True


def set_codec(mode: str) -> None:
    """Select the process-wide codec mode (``auto`` | ``fast`` | ``pure``)."""
    global _mode, enabled
    if mode not in CODEC_MODES:
        raise ValueError(
            f"codec must be one of {CODEC_MODES}, got {mode!r}")
    _mode = mode
    enabled = mode != "pure"


def get_codec() -> str:
    return _mode


def compiled_available() -> bool:
    """Whether the C visitor imported and bound successfully."""
    return _compiled_encode is not None


def codec_in_use() -> str:
    """Human-readable description of the active selection."""
    if not enabled:
        return "pure"
    if compiled_available():
        return "fast:plans+compiled"
    return "fast:plans"


# -- counters ---------------------------------------------------------------

_plan_hits = 0
_compiled_hits = 0
_fallbacks = 0


def take_counters() -> Dict[str, int]:
    """Drain the fast-path counters (metrics fold points call this)."""
    global _plan_hits, _compiled_hits, _fallbacks
    out = {
        "codec_fast_path": _plan_hits + _compiled_hits,
        "codec_plan_hits": _plan_hits,
        "codec_compiled_hits": _compiled_hits,
        "codec_fallbacks": _fallbacks,
    }
    _plan_hits = _compiled_hits = _fallbacks = 0
    return out


# -- plan registries --------------------------------------------------------

# type -> encode plan (None = unplannable layout).  Keyed on the token
# class; plans embed the default registry's name bytes, so they are only
# consulted for the default registry.
_encode_plans: Dict[type, Optional[Callable]] = {}
# registered-name bytes -> decode plan (None = unplannable/attempted).
_decode_plans: Dict[bytes, Optional[Callable]] = {}


def reset_plans() -> None:
    """Drop every compiled plan (tests and re-registration hooks)."""
    _encode_plans.clear()
    _decode_plans.clear()


def warm(token, reg: TokenRegistry = _default_registry) -> None:
    """Precompile encode/decode plans for *token*'s type, best-effort.

    Engines call this with the tokens they inject and the service tier
    with call/reply samples, so steady-state traffic starts planned
    instead of paying a generic first pass per type.  No-op for
    unplannable layouts, non-default registries and unregistered types.
    """
    if reg is not _default_registry:
        return
    cls = type(token)
    try:
        name = reg.name_bytes_of(cls)
    except Exception:
        return
    fields = token.fields()
    if cls not in _encode_plans:
        _encode_plans[cls] = build_encode_plan(name, fields)
    if name not in _decode_plans:
        _decode_plans[name] = build_decode_plan(cls, name, fields)


# -- encode -----------------------------------------------------------------

def try_encode(token, name: bytes, default_reg: bool):
    """Fast-path encode of *token*; ``None`` means use the pure visitor.

    Returns the full wire message as one writable ``bytearray`` segment
    (the same whole-message tail shape the pure visitor emits).  The
    caller has already validated the token type and resolved *name*
    through its registry, so error behavior up to this point is
    identical across paths.
    """
    global _plan_hits, _compiled_hits, _fallbacks
    cls = token.__class__
    if default_reg:
        plan = _encode_plans.get(cls, False)
        if plan is False:
            plan = _encode_plans[cls] = build_encode_plan(
                name, token.fields())
        if plan is not None:
            try:
                out = plan(token.fields())
            except PlanMiss:
                pass
            else:
                _plan_hits += 1
                return out
    if _compiled_encode is not None:
        try:
            out = _compiled_encode(name, token.fields())
        except _Unsupported:
            _fallbacks += 1
            return None
        _compiled_hits += 1
        return out
    _fallbacks += 1
    return None


# -- decode -----------------------------------------------------------------

def try_decode(data, reg: TokenRegistry, copy: bool):
    """Fast-path decode; ``None`` means use the pure visitor.

    Any malformed input makes the fast paths miss, so the pure visitor
    re-parses and raises the canonical errors.
    """
    global _plan_hits, _compiled_hits, _fallbacks
    view = data if type(data) is memoryview else memoryview(data)
    default_reg = reg is _default_registry
    if default_reg and view.nbytes >= 8:
        name_len = view[4] | (view[5] << 8)
        plan = _decode_plans.get(bytes(view[6:6 + name_len]))
        if plan is not None:
            try:
                token = plan(view)
            except PlanMiss:
                pass
            else:
                _plan_hits += 1
                return token
    if _compiled_decode is not None:
        try:
            name, fields = _compiled_decode(view, copy)
        except _Unsupported:
            _fallbacks += 1
            return None
        cls = reg.lookup(name)
        obj = cls.__new__(cls)
        obj.__dict__ = fields
        _compiled_hits += 1
        return obj
    _fallbacks += 1
    return None


def note_decoded(name: bytes, token) -> None:
    """Learn a decode (and encode) plan from a generic-decode sample.

    Called by ``wire.decode`` after a pure-path decode against the
    default registry; each registered name is attempted once.  The new
    decode plan is recorded permanently (``None`` when unplannable), so
    this runs at most once per token type.
    """
    if name in _decode_plans:
        return
    cls = type(token)
    fields = token.__dict__
    _decode_plans[name] = build_decode_plan(cls, name, fields)
    if cls not in _encode_plans:
        _encode_plans[cls] = build_encode_plan(name, fields)


_env_mode = os.environ.get("REPRO_CODEC")
if _env_mode in CODEC_MODES:
    set_codec(_env_mode)
