"""Serialization substrate: tokens, containers, registry, wire format."""

from .containers import Buffer, Vector
from .registry import TokenRegistry, registry
from .token import ComplexToken, SimpleToken, Token, TokenMeta
from .wire import MAGIC, WireError, decode, encode, encoded_size

__all__ = [
    "Buffer",
    "ComplexToken",
    "MAGIC",
    "SimpleToken",
    "Token",
    "TokenMeta",
    "TokenRegistry",
    "Vector",
    "WireError",
    "decode",
    "encode",
    "encoded_size",
    "registry",
]
