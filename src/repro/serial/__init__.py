"""Serialization substrate: tokens, containers, registry, wire format."""

from .containers import Buffer, Vector
from .fastpath import codec_in_use, compiled_available, get_codec, set_codec
from .registry import TokenRegistry, registry
from .token import ComplexToken, SimpleToken, Token, TokenMeta
from .wire import (
    FRAME_HEADER_BYTES,
    FRAME_VERSION,
    MAGIC,
    WireError,
    decode,
    encode,
    encode_into,
    encode_segments,
    encoded_size,
    frame,
    gather,
    measure,
    unframe,
)

__all__ = [
    "Buffer",
    "ComplexToken",
    "FRAME_HEADER_BYTES",
    "FRAME_VERSION",
    "MAGIC",
    "SimpleToken",
    "Token",
    "TokenMeta",
    "TokenRegistry",
    "Vector",
    "WireError",
    "codec_in_use",
    "compiled_available",
    "decode",
    "encode",
    "encode_into",
    "encode_segments",
    "encoded_size",
    "frame",
    "gather",
    "get_codec",
    "measure",
    "registry",
    "set_codec",
    "unframe",
]
