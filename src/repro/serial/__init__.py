"""Serialization substrate: tokens, containers, registry, wire format."""

from .containers import Buffer, Vector
from .registry import TokenRegistry, registry
from .token import ComplexToken, SimpleToken, Token, TokenMeta
from .wire import (
    MAGIC,
    WireError,
    decode,
    encode,
    encode_into,
    encode_segments,
    encoded_size,
    gather,
    measure,
)

__all__ = [
    "Buffer",
    "ComplexToken",
    "MAGIC",
    "SimpleToken",
    "Token",
    "TokenMeta",
    "TokenRegistry",
    "Vector",
    "WireError",
    "decode",
    "encode",
    "encode_into",
    "encode_segments",
    "encoded_size",
    "gather",
    "measure",
    "registry",
]
