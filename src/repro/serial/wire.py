"""Binary wire format for tokens.

Tokens crossing node boundaries are serialized to a compact self-describing
binary format and rebuilt on the receiving side through the class registry,
exactly as the C++ library does with its pointer-arithmetic serializer and
abstract class factories.  Numpy-backed :class:`~repro.serial.containers.Buffer`
payloads are emitted as single raw-byte copies (the buffer-protocol fast
path), everything else field-by-field.

Layout::

    message  := MAGIC 'DPS2' | u16 name_len | name utf-8 | value(fields dict)
    value    := u8 tag | payload            (tags in ``Tag``)
    ndarray  := u8 dtype_len | dtype | u8 ndim | u32 dims... | raw bytes

The format is intentionally versioned via the magic string.

Zero-copy wire path
-------------------

The codec separates the *cost model* of a message from the message itself
(the HPVM separation: pricing a transfer must not perform it):

- :func:`measure` computes the exact encoded size arithmetically — no
  bytearray is built and no ndarray bytes are touched, so sizing a token
  carrying a multi-MB block is O(fields), not O(bytes).
- :func:`encode_segments` produces a scatter-gather list of buffer
  segments in which large contiguous ndarray payloads appear as borrowed
  ``memoryview``\\ s of the arrays' own storage (zero copies).
- :func:`encode` joins those segments (exactly one copy of the payload),
  and :func:`encode_into` writes them into a caller-preallocated buffer
  sized by :func:`measure` (one copy, no intermediate allocations).
- :func:`decode` with ``copy=False`` borrows ndarray/Buffer payloads
  straight out of the source buffer instead of copying them; the caller
  must own the buffer and keep it immutable for the tokens' lifetime
  (arrays decoded from a writable buffer alias it and stay writable).
"""

from __future__ import annotations

import struct
from enum import IntEnum
from typing import Any, List, Union

import numpy as np

from .containers import Buffer, Vector
from .registry import TokenRegistry, registry
from .token import Token

__all__ = [
    "encode",
    "encode_into",
    "encode_segments",
    "decode",
    "encoded_size",
    "frame",
    "gather",
    "measure",
    "unframe",
    "WireError",
    "MAGIC",
    "FRAME_VERSION",
    "FRAME_HEADER_BYTES",
]

MAGIC = b"DPS2"

#: Protocol version carried by every :func:`frame` header.  Bump on any
#: incompatible change to the framing layout or the message body format.
FRAME_VERSION = 1

#: Wire size of the frame header: u32 payload length + u8 version.
FRAME_HEADER_BYTES = 5

_FRAME_HEADER = struct.Struct("<IB")

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

#: ndarray payloads at least this large are emitted as borrowed
#: memoryview segments instead of being copied into the header stream.
_SEGMENT_THRESHOLD = 1024


class WireError(ValueError):
    """Raised on malformed wire messages or unserializable payloads."""


class Tag(IntEnum):
    NONE = 0
    FALSE = 1
    TRUE = 2
    INT64 = 3
    FLOAT64 = 4
    STR = 5
    BYTES = 6
    BIGINT = 7
    NDARRAY = 8
    BUFFER = 9
    VECTOR = 10
    LIST = 11
    TUPLE = 12
    DICT = 13
    TOKEN = 14


_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

# Single-byte tag constants (hoisted so the hot visitors skip both the
# enum attribute lookup and the struct.pack call per value).
_TAG_INT64 = bytes((Tag.INT64,))
_TAG_FLOAT64 = bytes((Tag.FLOAT64,))
_TAG_STR = bytes((Tag.STR,))
_TAG_BYTES = bytes((Tag.BYTES,))
_TAG_BIGINT = bytes((Tag.BIGINT,))
_TAG_NDARRAY = bytes((Tag.NDARRAY,))
_TAG_BUFFER = bytes((Tag.BUFFER,))
_TAG_VECTOR = bytes((Tag.VECTOR,))
_TAG_LIST = bytes((Tag.LIST,))
_TAG_TUPLE = bytes((Tag.TUPLE,))
_TAG_DICT = bytes((Tag.DICT,))
_TAG_TOKEN = bytes((Tag.TOKEN,))

# Plain-int tag values for the decode dispatch (int == int, no enum).
_T_NONE = int(Tag.NONE)
_T_FALSE = int(Tag.FALSE)
_T_TRUE = int(Tag.TRUE)
_T_INT64 = int(Tag.INT64)
_T_FLOAT64 = int(Tag.FLOAT64)
_T_STR = int(Tag.STR)
_T_BYTES = int(Tag.BYTES)
_T_BIGINT = int(Tag.BIGINT)
_T_NDARRAY = int(Tag.NDARRAY)
_T_BUFFER = int(Tag.BUFFER)
_T_VECTOR = int(Tag.VECTOR)
_T_LIST = int(Tag.LIST)
_T_TUPLE = int(Tag.TUPLE)
_T_DICT = int(Tag.DICT)
_T_TOKEN = int(Tag.TOKEN)

Segment = Union[bytearray, memoryview]


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------

def encode(token: Token, reg: TokenRegistry = registry) -> bytes:
    """Serialize *token* (a registered :class:`Token`) to bytes."""
    segments = encode_segments(token, reg)
    if len(segments) == 1:
        return bytes(segments[0])
    return b"".join(segments)


def encode_segments(token: Token, reg: TokenRegistry = registry) -> List[Segment]:
    """Scatter-gather serialization: a list of buffer segments.

    Concatenating the segments yields exactly :func:`encode`'s output.
    Large contiguous ndarray payloads appear as ``memoryview`` segments
    *borrowing* the arrays' storage — mutating those arrays before the
    segments are consumed changes the message.
    """
    if not isinstance(token, Token):
        raise WireError(f"can only encode Token instances, got {type(token).__name__}")
    name = reg.name_bytes_of(type(token))
    if _fastpath.enabled:
        fast = _fastpath.try_encode(token, name, reg is registry)
        if fast is not None:
            return [fast]
    head = bytearray(MAGIC)
    head += _U16.pack(len(name))
    head += name
    parts: List[Segment] = []
    tail = _encode_value(parts, head, token.fields())
    if tail:
        parts.append(tail)
    return parts


def gather(segments: List[Segment]) -> bytearray:
    """Concatenate :func:`encode_segments` output into one writable buffer.

    One tree walk + one payload copy: the single-buffer flavour of the
    scatter-gather path, for callers that need an owned, writable wire
    message (e.g. to decode with ``copy=False``).

    A single ``bytearray`` segment (the whole-message tail produced for
    payloads below the scatter threshold) is returned as-is, zero-copy —
    the caller takes ownership of it.
    """
    if len(segments) == 1:
        seg = segments[0]
        return seg if type(seg) is bytearray else bytearray(seg)
    total = 0
    for seg in segments:
        total += seg.nbytes if type(seg) is memoryview else len(seg)
    out = bytearray(total)
    offset = 0
    for seg in segments:
        n = seg.nbytes if type(seg) is memoryview else len(seg)
        out[offset : offset + n] = seg
        offset += n
    return out


def frame(payload: "bytes | bytearray | memoryview | List[Segment]") -> List[Segment]:
    """Prefix *payload* with the wire frame header (length + version).

    *payload* may be a single buffer or an :func:`encode_segments`-style
    segment list; segments are **not** coalesced, so the result can be
    handed straight to a vectored socket write (``sendmsg``) without
    copying the payload.  The header is ``u32 payload_length | u8
    version`` (:data:`FRAME_VERSION`).
    """
    if isinstance(payload, list):
        segments: List[Segment] = list(payload)
    else:
        segments = [payload]  # type: ignore[list-item]
    total = 0
    for seg in segments:
        total += seg.nbytes if type(seg) is memoryview else len(seg)
    if total > 0xFFFFFFFF:
        raise WireError(f"frame payload of {total} bytes exceeds u32 length")
    head = bytearray(_FRAME_HEADER.pack(total, FRAME_VERSION))
    return [head, *segments]


def unframe(data: bytes | bytearray | memoryview) -> memoryview:
    """Strip and validate a :func:`frame` header; returns the payload view.

    Raises :class:`WireError` on a truncated header, a protocol-version
    mismatch, or a payload whose length disagrees with the header.  The
    returned ``memoryview`` borrows *data* — no copy.
    """
    view = memoryview(data)
    if view.nbytes < FRAME_HEADER_BYTES:
        raise WireError(
            f"truncated frame header: {view.nbytes} < {FRAME_HEADER_BYTES} bytes"
        )
    length, version = _FRAME_HEADER.unpack_from(view, 0)
    if version != FRAME_VERSION:
        raise WireError(
            f"frame protocol version mismatch: got {version}, "
            f"expected {FRAME_VERSION}"
        )
    if view.nbytes - FRAME_HEADER_BYTES != length:
        raise WireError(
            f"frame length mismatch: header says {length}, "
            f"payload has {view.nbytes - FRAME_HEADER_BYTES} bytes"
        )
    return view[FRAME_HEADER_BYTES:]


def encode_into(token: Token, buf, reg: TokenRegistry = registry) -> int:
    """Encode *token* into preallocated writable *buf*; returns bytes written.

    Size *buf* with :func:`measure`.  Raises :class:`WireError` when the
    buffer is too small.
    """
    out = buf if isinstance(buf, memoryview) else memoryview(buf)
    offset = 0
    try:
        for seg in encode_segments(token, reg):
            n = seg.nbytes if isinstance(seg, memoryview) else len(seg)
            out[offset : offset + n] = seg
            offset += n
    except ValueError as exc:
        raise WireError(f"encode_into buffer too small: {exc}") from None
    return offset


def measure(token: Token, reg: TokenRegistry = registry) -> int:
    """Exact wire size of *token* in bytes, computed arithmetically.

    Never serializes the payload: ndarray/Buffer fields contribute
    ``size * itemsize`` without their bytes being touched, so measuring
    a token is O(number of fields) regardless of payload volume.
    Validates serializability exactly like :func:`encode`.
    """
    if not isinstance(token, Token):
        raise WireError(f"can only encode Token instances, got {type(token).__name__}")
    name = reg.name_bytes_of(type(token))
    return 6 + len(name) + _measure_value(token.fields())


def encoded_size(token: Token, reg: TokenRegistry = registry) -> int:
    """Authoritative wire size of *token* in bytes (alias of :func:`measure`)."""
    return measure(token, reg)


def decode(
    data: bytes | bytearray | memoryview,
    reg: TokenRegistry = registry,
    *,
    copy: bool = True,
) -> Token:
    """Rebuild a token from bytes produced by :func:`encode`.

    With ``copy=False`` ndarray/Buffer payloads *borrow* the source
    buffer instead of copying it: the caller must own *data* and keep it
    alive and unmodified for as long as the decoded token lives.  Arrays
    borrowed from a read-only source (e.g. ``bytes``) are read-only;
    borrowing from a ``bytearray`` yields writable aliasing arrays.
    """
    fast_eligible = _fastpath.enabled
    if fast_eligible:
        token = _fastpath.try_decode(data, reg, copy)
        if token is not None:
            return token
    view = memoryview(data)
    if view[:4] != MAGIC:
        raise WireError("bad magic; not a DPS wire message")
    (name_len,) = _U16.unpack_from(view, 4)
    offset = 6
    name_raw = bytes(view[offset : offset + name_len])
    name = str(name_raw, "utf-8")
    offset += name_len
    cls = reg.lookup(name)
    fields, offset = _decode_value(view, offset, copy)
    if offset != len(view):
        raise WireError(f"trailing garbage: {len(view) - offset} bytes")
    obj = cls.__new__(cls)
    # The fields dict is freshly built by the decoder — adopt it outright.
    obj.__dict__ = fields
    if fast_eligible and reg is registry:
        # Learn a per-type plan from this sample (once per name).
        _fastpath.note_decoded(name_raw, obj)
    return obj


# ---------------------------------------------------------------------------
# size measurement (arithmetic, allocation-free on payload bytes)
# ---------------------------------------------------------------------------

def _utf8_len(s: str) -> int:
    return len(s) if s.isascii() else len(s.encode("utf-8"))


def _measure_ndarray(arr: np.ndarray) -> int:
    if arr.dtype.hasobject:
        raise WireError("object-dtype arrays are not serializable")
    # u8 dtype_len | dtype | u8 ndim | u32 dims... | raw bytes
    return 2 + len(arr.dtype.str) + 4 * arr.ndim + arr.size * arr.dtype.itemsize


def _measure_value(value: Any) -> int:
    if value is None or value is False or value is True:
        return 1
    if isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        iv = int(value)
        if _INT64_MIN <= iv <= _INT64_MAX:
            return 9
        return 5 + len(str(iv))
    if isinstance(value, (float, np.floating)):
        return 9
    if isinstance(value, str):
        return 5 + _utf8_len(value)
    if isinstance(value, (bytes, bytearray)):
        return 5 + len(value)
    if isinstance(value, memoryview):
        return 5 + value.nbytes
    if isinstance(value, Buffer):
        return 1 + _measure_ndarray(value.array)
    if isinstance(value, np.ndarray):
        return 1 + _measure_ndarray(value)
    if isinstance(value, (Vector, list, tuple)):
        items = value.items if isinstance(value, Vector) else value
        total = 5
        for item in items:
            total += _measure_value(item)
        return total
    if isinstance(value, dict):
        total = 5
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireError(f"dict keys must be str, got {type(key).__name__}")
            total += 2 + _utf8_len(key) + _measure_value(item)
        return total
    if isinstance(value, Token):
        name = registry.name_bytes_of(type(value))
        return 3 + len(name) + _measure_value(value.fields())
    raise WireError(
        f"unserializable value of type {type(value).__name__}; token "
        f"fields must be scalars, Buffer, Vector, ndarray, containers "
        f"or nested Tokens"
    )


# ---------------------------------------------------------------------------
# value encoding (scatter-gather)
# ---------------------------------------------------------------------------
#
# ``parts`` collects finished segments; ``tail`` is the bytearray currently
# being appended to (not yet in ``parts``).  Small data extends ``tail``;
# large ndarray payloads flush ``tail`` and append a borrowed memoryview,
# so the array bytes are never copied into an intermediate buffer.

def _encode_value(parts: List[Segment], tail: bytearray, value: Any) -> bytearray:
    # Exact-type fast paths for the overwhelmingly common field types;
    # subclasses and numpy scalars fall through to the isinstance chain
    # below with identical semantics.
    cls = type(value)
    if cls is str:
        raw = value.encode("utf-8")
        tail += _TAG_STR
        tail += _U32.pack(len(raw))
        tail += raw
        return tail
    if cls is int:
        if _INT64_MIN <= value <= _INT64_MAX:
            tail += _TAG_INT64
            tail += _I64.pack(value)
        else:
            raw = str(value).encode("ascii")
            tail += _TAG_BIGINT
            tail += _U32.pack(len(raw))
            tail += raw
        return tail
    if cls is float:
        tail += _TAG_FLOAT64
        tail += _F64.pack(value)
        return tail
    if cls is dict:
        tail += _TAG_DICT
        tail += _U32.pack(len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireError(f"dict keys must be str, got {type(key).__name__}")
            raw = key.encode("utf-8")
            tail += _U16.pack(len(raw))
            tail += raw
            tail = _encode_value(parts, tail, item)
        return tail
    if value is None:
        tail += b"\x00"
    elif value is False:
        tail += b"\x01"
    elif value is True:
        tail += b"\x02"
    elif isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        iv = int(value)
        if _INT64_MIN <= iv <= _INT64_MAX:
            tail += _TAG_INT64
            tail += _I64.pack(iv)
        else:
            raw = str(iv).encode("ascii")
            tail += _TAG_BIGINT
            tail += _U32.pack(len(raw))
            tail += raw
    elif isinstance(value, (float, np.floating)):
        tail += _TAG_FLOAT64
        tail += _F64.pack(float(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        tail += _TAG_STR
        tail += _U32.pack(len(raw))
        tail += raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        tail += _TAG_BYTES
        tail += _U32.pack(len(raw))
        tail += raw
    elif isinstance(value, Buffer):
        tail += _TAG_BUFFER
        tail = _encode_ndarray(parts, tail, value.array)
    elif isinstance(value, np.ndarray):
        tail += _TAG_NDARRAY
        tail = _encode_ndarray(parts, tail, value)
    elif isinstance(value, Vector):
        tail += _TAG_VECTOR
        tail += _U32.pack(len(value.items))
        for item in value.items:
            tail = _encode_value(parts, tail, item)
    elif isinstance(value, list):
        tail += _TAG_LIST
        tail += _U32.pack(len(value))
        for item in value:
            tail = _encode_value(parts, tail, item)
    elif isinstance(value, tuple):
        tail += _TAG_TUPLE
        tail += _U32.pack(len(value))
        for item in value:
            tail = _encode_value(parts, tail, item)
    elif isinstance(value, dict):
        tail += _TAG_DICT
        tail += _U32.pack(len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireError(f"dict keys must be str, got {type(key).__name__}")
            raw = key.encode("utf-8")
            tail += _U16.pack(len(raw))
            tail += raw
            tail = _encode_value(parts, tail, item)
    elif isinstance(value, Token):
        name = registry.name_bytes_of(type(value))
        tail += _TAG_TOKEN
        tail += _U16.pack(len(name))
        tail += name
        tail = _encode_value(parts, tail, value.fields())
    else:
        raise WireError(
            f"unserializable value of type {type(value).__name__}; token "
            f"fields must be scalars, Buffer, Vector, ndarray, containers "
            f"or nested Tokens"
        )
    return tail


def _encode_ndarray(parts: List[Segment], tail: bytearray, arr: np.ndarray) -> bytearray:
    if arr.dtype.hasobject:
        raise WireError("object-dtype arrays are not serializable")
    contiguous = arr if arr.flags.c_contiguous else np.ascontiguousarray(arr)
    dtype_str = contiguous.dtype.str.encode("ascii")
    tail += _U8.pack(len(dtype_str))
    tail += dtype_str
    tail += _U8.pack(arr.ndim)
    for dim in arr.shape:
        tail += _U32.pack(dim)
    if contiguous.nbytes >= _SEGMENT_THRESHOLD:
        # Zero-copy: borrow the array's storage as a raw-byte view.  The
        # memoryview keeps ``contiguous`` alive, so a compacting copy made
        # for a non-contiguous input survives until the segment is used.
        if tail:
            parts.append(tail)
            tail = bytearray()
        parts.append(memoryview(contiguous.reshape(-1).view(np.uint8)))
    else:
        tail += contiguous.tobytes()
    return tail


# ---------------------------------------------------------------------------
# value decoding
# ---------------------------------------------------------------------------

def _decode_value(view: memoryview, offset: int, copy: bool = True) -> tuple[Any, int]:
    # Dispatch on plain ints, most frequent tags first (tag values are
    # distinct, so reordering the comparisons cannot change semantics).
    tag = view[offset]
    offset += 1
    if tag == _T_STR:
        (n,) = _U32.unpack_from(view, offset)
        offset += 4
        return str(view[offset : offset + n], "utf-8"), offset + n
    if tag == _T_INT64:
        (v,) = _I64.unpack_from(view, offset)
        return v, offset + 8
    if tag == _T_FLOAT64:
        (v,) = _F64.unpack_from(view, offset)
        return v, offset + 8
    if tag == _T_DICT:
        (n,) = _U32.unpack_from(view, offset)
        offset += 4
        result: dict[str, Any] = {}
        for _ in range(n):
            (klen,) = _U16.unpack_from(view, offset)
            offset += 2
            key = str(view[offset : offset + klen], "utf-8")
            offset += klen
            value, offset = _decode_value(view, offset, copy)
            result[key] = value
        return result, offset
    if tag == _T_NONE:
        return None, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_BYTES:
        (n,) = _U32.unpack_from(view, offset)
        offset += 4
        return bytes(view[offset : offset + n]), offset + n
    if tag == _T_BIGINT:
        (n,) = _U32.unpack_from(view, offset)
        offset += 4
        return int(str(view[offset : offset + n], "ascii")), offset + n
    if tag == _T_NDARRAY:
        return _decode_ndarray(view, offset, copy)
    if tag == _T_BUFFER:
        arr, offset = _decode_ndarray(view, offset, copy)
        buf = Buffer.__new__(Buffer)
        buf.array = arr
        return buf, offset
    if tag == _T_VECTOR:
        (n,) = _U32.unpack_from(view, offset)
        offset += 4
        vec = Vector()
        for _ in range(n):
            item, offset = _decode_value(view, offset, copy)
            vec.items.append(item)
        return vec, offset
    if tag == _T_LIST or tag == _T_TUPLE:
        (n,) = _U32.unpack_from(view, offset)
        offset += 4
        items = []
        for _ in range(n):
            item, offset = _decode_value(view, offset, copy)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), offset
    if tag == _T_TOKEN:
        (nlen,) = _U16.unpack_from(view, offset)
        offset += 2
        name = str(view[offset : offset + nlen], "utf-8")
        offset += nlen
        cls = registry.lookup(name)
        fields, offset = _decode_value(view, offset, copy)
        obj = cls.__new__(cls)
        obj.__dict__ = fields
        return obj, offset
    raise WireError(f"unknown wire tag {tag}")


#: dtype-string -> np.dtype, so the hot decode path never re-parses a
#: dtype spec it has seen before (dtype objects are immutable).
_DTYPE_CACHE: dict[bytes, np.dtype] = {}


def _decode_ndarray(view: memoryview, offset: int, copy: bool = True) -> tuple[np.ndarray, int]:
    dlen = view[offset]
    offset += 1
    key = bytes(view[offset : offset + dlen])
    dtype = _DTYPE_CACHE.get(key)
    if dtype is None:
        dtype = _DTYPE_CACHE[key] = np.dtype(key.decode("ascii"))
    offset += dlen
    ndim = view[offset]
    offset += 1
    shape = []
    count = 1
    for _ in range(ndim):
        (dim,) = _U32.unpack_from(view, offset)
        offset += 4
        shape.append(dim)
        count *= dim
    nbytes = count * dtype.itemsize
    arr = np.frombuffer(view[offset : offset + nbytes], dtype=dtype).reshape(shape)
    if copy:
        arr = arr.copy()
    return arr, offset + nbytes


# ---------------------------------------------------------------------------
# fast-path hookup
# ---------------------------------------------------------------------------
# The fastpath module receives the generic visitors' internals here and
# binds the optional compiled extension.  Imported at the bottom so every
# name above is already defined; fastpath never imports wire back.

from . import fastpath as _fastpath  # noqa: E402

_fastpath._bind(globals())
