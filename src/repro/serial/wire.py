"""Binary wire format for tokens.

Tokens crossing node boundaries are serialized to a compact self-describing
binary format and rebuilt on the receiving side through the class registry,
exactly as the C++ library does with its pointer-arithmetic serializer and
abstract class factories.  Numpy-backed :class:`~repro.serial.containers.Buffer`
payloads are emitted as single raw-byte copies (the buffer-protocol fast
path), everything else field-by-field.

Layout::

    message  := MAGIC 'DPS2' | u16 name_len | name utf-8 | value(fields dict)
    value    := u8 tag | payload            (tags in ``Tag``)
    ndarray  := u8 dtype_len | dtype | u8 ndim | u32 dims... | raw bytes

The format is intentionally versioned via the magic string.
"""

from __future__ import annotations

import struct
from enum import IntEnum
from typing import Any

import numpy as np

from .containers import Buffer, Vector
from .registry import TokenRegistry, registry
from .token import Token

__all__ = ["encode", "decode", "encoded_size", "WireError", "MAGIC"]

MAGIC = b"DPS2"

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


class WireError(ValueError):
    """Raised on malformed wire messages or unserializable payloads."""


class Tag(IntEnum):
    NONE = 0
    FALSE = 1
    TRUE = 2
    INT64 = 3
    FLOAT64 = 4
    STR = 5
    BYTES = 6
    BIGINT = 7
    NDARRAY = 8
    BUFFER = 9
    VECTOR = 10
    LIST = 11
    TUPLE = 12
    DICT = 13
    TOKEN = 14


_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def encode(token: Token, reg: TokenRegistry = registry) -> bytes:
    """Serialize *token* (a registered :class:`Token`) to bytes."""
    if not isinstance(token, Token):
        raise WireError(f"can only encode Token instances, got {type(token).__name__}")
    name = reg.name_of(type(token)).encode("utf-8")
    out = bytearray(MAGIC)
    out += _U16.pack(len(name))
    out += name
    _encode_value(out, token.fields())
    return bytes(out)


def encoded_size(token: Token, reg: TokenRegistry = registry) -> int:
    """Authoritative wire size of *token* in bytes."""
    return len(encode(token, reg))


def decode(data: bytes | memoryview, reg: TokenRegistry = registry) -> Token:
    """Rebuild a token from bytes produced by :func:`encode`."""
    view = memoryview(data)
    if bytes(view[:4]) != MAGIC:
        raise WireError("bad magic; not a DPS wire message")
    (name_len,) = _U16.unpack_from(view, 4)
    offset = 6
    name = bytes(view[offset : offset + name_len]).decode("utf-8")
    offset += name_len
    cls = reg.lookup(name)
    fields, offset = _decode_value(view, offset)
    if offset != len(view):
        raise WireError(f"trailing garbage: {len(view) - offset} bytes")
    obj = cls.__new__(cls)
    obj.__dict__.update(fields)
    return obj


# ---------------------------------------------------------------------------
# value encoding
# ---------------------------------------------------------------------------

def _encode_value(out: bytearray, value: Any) -> None:
    if value is None:
        out += _U8.pack(Tag.NONE)
    elif value is False:
        out += _U8.pack(Tag.FALSE)
    elif value is True:
        out += _U8.pack(Tag.TRUE)
    elif isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        iv = int(value)
        if _INT64_MIN <= iv <= _INT64_MAX:
            out += _U8.pack(Tag.INT64)
            out += _I64.pack(iv)
        else:
            raw = str(iv).encode("ascii")
            out += _U8.pack(Tag.BIGINT)
            out += _U32.pack(len(raw))
            out += raw
    elif isinstance(value, (float, np.floating)):
        out += _U8.pack(Tag.FLOAT64)
        out += _F64.pack(float(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _U8.pack(Tag.STR)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out += _U8.pack(Tag.BYTES)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, Buffer):
        out += _U8.pack(Tag.BUFFER)
        _encode_ndarray(out, value.array)
    elif isinstance(value, np.ndarray):
        out += _U8.pack(Tag.NDARRAY)
        _encode_ndarray(out, value)
    elif isinstance(value, Vector):
        out += _U8.pack(Tag.VECTOR)
        out += _U32.pack(len(value.items))
        for item in value.items:
            _encode_value(out, item)
    elif isinstance(value, list):
        out += _U8.pack(Tag.LIST)
        out += _U32.pack(len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, tuple):
        out += _U8.pack(Tag.TUPLE)
        out += _U32.pack(len(value))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        out += _U8.pack(Tag.DICT)
        out += _U32.pack(len(value))
        for key, item in value.items():
            if not isinstance(key, str):
                raise WireError(f"dict keys must be str, got {type(key).__name__}")
            raw = key.encode("utf-8")
            out += _U16.pack(len(raw))
            out += raw
            _encode_value(out, item)
    elif isinstance(value, Token):
        name = registry.name_of(type(value)).encode("utf-8")
        out += _U8.pack(Tag.TOKEN)
        out += _U16.pack(len(name))
        out += name
        _encode_value(out, value.fields())
    else:
        raise WireError(
            f"unserializable value of type {type(value).__name__}; token "
            f"fields must be scalars, Buffer, Vector, ndarray, containers "
            f"or nested Tokens"
        )


def _encode_ndarray(out: bytearray, arr: np.ndarray) -> None:
    if arr.dtype == object:
        raise WireError("object-dtype arrays are not serializable")
    if arr.dtype.hasobject:
        raise WireError("arrays containing objects are not serializable")
    # ascontiguousarray promotes 0-d arrays to 1-d; preserve the shape.
    contiguous = np.ascontiguousarray(arr).reshape(arr.shape)
    dtype_str = contiguous.dtype.str.encode("ascii")
    out += _U8.pack(len(dtype_str))
    out += dtype_str
    out += _U8.pack(contiguous.ndim)
    for dim in contiguous.shape:
        out += _U32.pack(dim)
    out += contiguous.tobytes()


# ---------------------------------------------------------------------------
# value decoding
# ---------------------------------------------------------------------------

def _decode_value(view: memoryview, offset: int) -> tuple[Any, int]:
    tag = view[offset]
    offset += 1
    if tag == Tag.NONE:
        return None, offset
    if tag == Tag.FALSE:
        return False, offset
    if tag == Tag.TRUE:
        return True, offset
    if tag == Tag.INT64:
        (v,) = _I64.unpack_from(view, offset)
        return v, offset + 8
    if tag == Tag.FLOAT64:
        (v,) = _F64.unpack_from(view, offset)
        return v, offset + 8
    if tag == Tag.STR:
        (n,) = _U32.unpack_from(view, offset)
        offset += 4
        return bytes(view[offset : offset + n]).decode("utf-8"), offset + n
    if tag == Tag.BYTES:
        (n,) = _U32.unpack_from(view, offset)
        offset += 4
        return bytes(view[offset : offset + n]), offset + n
    if tag == Tag.BIGINT:
        (n,) = _U32.unpack_from(view, offset)
        offset += 4
        return int(bytes(view[offset : offset + n]).decode("ascii")), offset + n
    if tag == Tag.NDARRAY:
        return _decode_ndarray(view, offset)
    if tag == Tag.BUFFER:
        arr, offset = _decode_ndarray(view, offset)
        buf = Buffer.__new__(Buffer)
        buf.array = arr
        return buf, offset
    if tag == Tag.VECTOR:
        (n,) = _U32.unpack_from(view, offset)
        offset += 4
        vec = Vector()
        for _ in range(n):
            item, offset = _decode_value(view, offset)
            vec.items.append(item)
        return vec, offset
    if tag in (Tag.LIST, Tag.TUPLE):
        (n,) = _U32.unpack_from(view, offset)
        offset += 4
        items = []
        for _ in range(n):
            item, offset = _decode_value(view, offset)
            items.append(item)
        return (tuple(items) if tag == Tag.TUPLE else items), offset
    if tag == Tag.DICT:
        (n,) = _U32.unpack_from(view, offset)
        offset += 4
        result: dict[str, Any] = {}
        for _ in range(n):
            (klen,) = _U16.unpack_from(view, offset)
            offset += 2
            key = bytes(view[offset : offset + klen]).decode("utf-8")
            offset += klen
            value, offset = _decode_value(view, offset)
            result[key] = value
        return result, offset
    if tag == Tag.TOKEN:
        (nlen,) = _U16.unpack_from(view, offset)
        offset += 2
        name = bytes(view[offset : offset + nlen]).decode("utf-8")
        offset += nlen
        cls = registry.lookup(name)
        fields, offset = _decode_value(view, offset)
        obj = cls.__new__(cls)
        obj.__dict__.update(fields)
        return obj, offset
    raise WireError(f"unknown wire tag {tag}")


def _decode_ndarray(view: memoryview, offset: int) -> tuple[np.ndarray, int]:
    dlen = view[offset]
    offset += 1
    dtype = np.dtype(bytes(view[offset : offset + dlen]).decode("ascii"))
    offset += dlen
    ndim = view[offset]
    offset += 1
    shape = []
    for _ in range(ndim):
        (dim,) = _U32.unpack_from(view, offset)
        offset += 4
        shape.append(dim)
    count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    nbytes = count * dtype.itemsize
    arr = np.frombuffer(view[offset : offset + nbytes], dtype=dtype).reshape(shape).copy()
    return arr, offset + nbytes
