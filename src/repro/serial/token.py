"""Token base classes — the data objects circulating through flow graphs.

A token is a plain Python class whose instance attributes form the payload.
Subclassing :class:`Token` (directly or via :class:`SimpleToken` /
:class:`ComplexToken`) auto-registers the class for deserialization — the
analog of the C++ ``IDENTIFY`` macro.

- :class:`SimpleToken` — scalars only (numbers, bools, short strings);
  serialized field-by-field, the analog of memcpy-serializable C++ tokens.
- :class:`ComplexToken` — may additionally contain :class:`Buffer`,
  :class:`Vector`, nested tokens, lists, dicts.

The distinction is advisory in Python (the codec handles both identically)
but :class:`SimpleToken` *enforces* its restriction so that tests and users
catch accidentally-heavy payloads on hot control paths.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .containers import Buffer, Vector
from .registry import registry

__all__ = ["Token", "SimpleToken", "ComplexToken", "TokenMeta"]

_SIMPLE_SCALARS = (type(None), bool, int, float, str, bytes)


class TokenMeta(type):
    """Metaclass that registers every concrete token class by name.

    A class may pin its wire name with a ``_dps_name_`` attribute;
    otherwise ``__name__`` is used.  Classes whose name starts with an
    underscore are treated as abstract and not registered.
    """

    def __new__(mcls, name, bases, ns, register: bool = True, **kwargs):
        cls = super().__new__(mcls, name, bases, ns, **kwargs)
        if register and not name.startswith("_"):
            registry.register(cls, ns.get("_dps_name_"))
        return cls

    def __init__(cls, name, bases, ns, register: bool = True, **kwargs):
        super().__init__(name, bases, ns, **kwargs)


class Token(metaclass=TokenMeta):
    """Base class for all data objects exchanged between operations."""

    def fields(self) -> dict[str, Any]:
        """The serializable payload: the instance ``__dict__``."""
        return self.__dict__

    def validate(self) -> None:
        """Hook for payload constraints; raises on violation."""

    def payload_nbytes(self) -> int:
        """Approximate payload size in bytes (without wire headers).

        Used by cost models for quick size estimates; the authoritative
        size is the length of the encoded wire message.
        """
        return _approx_nbytes(self.fields())

    def __eq__(self, other: Any) -> bool:
        return type(self) is type(other) and _fields_equal(self.fields(), other.fields())

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in list(self.fields().items())[:4])
        return f"{type(self).__name__}({inner})"


class SimpleToken(Token):
    """A token restricted to scalar fields (memcpy-like serialization)."""

    def validate(self) -> None:
        for key, value in self.fields().items():
            if not isinstance(value, _SIMPLE_SCALARS) and not isinstance(
                value, (np.integer, np.floating, np.bool_)
            ):
                raise TypeError(
                    f"{type(self).__name__}.{key} = {type(value).__name__}; "
                    f"SimpleToken fields must be scalars — use ComplexToken "
                    f"for Buffer/Vector/nested payloads"
                )


class ComplexToken(Token):
    """A token that may carry containers and nested tokens."""


def _approx_nbytes(value: Any) -> int:
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, Buffer):
        return value.nbytes
    if isinstance(value, np.ndarray):
        return value.nbytes
    if isinstance(value, Vector):
        return sum(_approx_nbytes(v) for v in value.items)
    if isinstance(value, (list, tuple)):
        return sum(_approx_nbytes(v) for v in value)
    if isinstance(value, dict):
        return sum(
            _approx_nbytes(k) + _approx_nbytes(v) for k, v in value.items()
        )
    if isinstance(value, Token):
        return _approx_nbytes(value.fields())
    raise TypeError(f"unserializable value of type {type(value).__name__}")


def _fields_equal(a: dict, b: dict) -> bool:
    if a.keys() != b.keys():
        return False
    for key in a:
        va, vb = a[key], b[key]
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            if not (
                isinstance(va, np.ndarray)
                and isinstance(vb, np.ndarray)
                and va.shape == vb.shape
                and np.array_equal(va, vb)
            ):
                return False
        elif va != vb:
            return False
    return True
