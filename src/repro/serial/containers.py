"""Container types for token payloads.

The DPS C++ library provides two container templates:

- ``Buffer<T>`` — a variable-size array of *simple* elements, serialized
  with a plain memory copy.  Here :class:`Buffer` wraps a numpy array so
  serialization is a single buffer-protocol copy (the fast path the
  mpi4py-style guides recommend).
- ``Vector<T>`` — a variable-size array of *complex* elements (other
  serializable objects).  Here :class:`Vector` is a thin typed list.

The C++ ``CT<T>`` wrapper (inserting simple types into complex tokens) is
unnecessary in Python — plain attributes serve that role — so it is not
reproduced; the wire codec handles scalars natively.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional

import numpy as np

__all__ = ["Buffer", "Vector"]


class Buffer:
    """A typed, variable-size array of simple elements (numpy-backed).

    ``Buffer(data, dtype=...)`` accepts anything :func:`numpy.asarray`
    accepts.  The underlying array is exposed as :attr:`array`; element
    access and length are delegated.  Serialization copies the raw bytes,
    so element types must be numeric/boolean (no object dtype).
    """

    __slots__ = ("array",)

    def __init__(self, data: Any = (), dtype: Any = None):
        arr = np.asarray(data, dtype=dtype)
        if arr.dtype == object:
            raise TypeError("Buffer requires a numeric dtype, not object")
        self.array = arr

    @property
    def nbytes(self) -> int:
        """Payload size in bytes."""
        return self.array.nbytes

    @property
    def dtype(self) -> np.dtype:
        return self.array.dtype

    @property
    def shape(self) -> tuple:
        return self.array.shape

    def __len__(self) -> int:
        return len(self.array)

    def __getitem__(self, idx):
        return self.array[idx]

    def __setitem__(self, idx, value) -> None:
        self.array[idx] = value

    def __iter__(self) -> Iterator:
        return iter(self.array)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Buffer):
            other = other.array
        return bool(
            isinstance(other, np.ndarray)
            and self.array.shape == other.shape
            and self.array.dtype == other.dtype
            and np.array_equal(self.array, other)
        )

    def __repr__(self) -> str:
        return f"Buffer(dtype={self.array.dtype}, shape={self.array.shape})"


class Vector:
    """A variable-size array of complex (serializable) elements.

    Optionally homogeneity-checked: ``Vector(items, element_type=Foo)``
    rejects elements that are not ``Foo`` instances, mirroring the typed
    C++ ``Vector<Something>``.
    """

    __slots__ = ("items", "element_type")

    def __init__(self, items: Iterable[Any] = (), element_type: Optional[type] = None):
        self.element_type = element_type
        self.items: List[Any] = []
        for item in items:
            self.append(item)

    def append(self, item: Any) -> None:
        if self.element_type is not None and not isinstance(item, self.element_type):
            raise TypeError(
                f"Vector[{self.element_type.__name__}] cannot hold "
                f"{type(item).__name__}"
            )
        self.items.append(item)

    def extend(self, items: Iterable[Any]) -> None:
        for item in items:
            self.append(item)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, idx):
        return self.items[idx]

    def __iter__(self) -> Iterator:
        return iter(self.items)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Vector):
            return self.items == other.items
        if isinstance(other, list):
            return self.items == other
        return NotImplemented

    def __repr__(self) -> str:
        et = self.element_type.__name__ if self.element_type else "Any"
        return f"Vector[{et}](len={len(self.items)})"
