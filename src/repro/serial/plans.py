"""Per-token-type wire plans: flat ``struct`` batches, no value dispatch.

The generic codec in :mod:`~repro.serial.wire` walks every field of every
token through a type-dispatching visitor.  For the small control tokens
that dominate kernel-to-kernel traffic (all-scalar field layouts such as
the ring job/done tokens, service-call envelopes, elastic control
records) the message layout is *fixed* per token type: the magic, the
registered name, the dict header, every key and every tag byte are
compile-time constants, and only the scalar payloads vary.

A *plan* exploits that: it is a single precompiled ``struct.Struct``
whose format interleaves the constant byte runs (as ``Ns`` chunks) with
the variable scalar slots (``q`` for int64, ``d`` for float64, ``c`` for
the bool tag byte, which doubles as the value).  Encoding a planned
token is one ``tuple(fields)`` signature check, a handful of exact-type
guards, and one ``Struct.pack`` — no per-value dispatch, no bytearray
growth.  Decoding is one length check, one ``Struct.unpack``, a constant
comparison, and a dict literal.

Plans are built lazily from a sample instance (the first encode or the
first generic decode of a token type — see
:mod:`~repro.serial.fastpath`), keyed by the token type's *signature*:
its registered name plus the ordered ``(key, value-kind)`` layout of its
fields.  Any deviation at runtime — a field added, a value that is not
the planned exact type, an int64 overflowing to BIGINT — raises
:class:`PlanMiss` and the caller falls back to the generic codec, whose
bytes the plan reproduces bit-identically (pinned by the parity property
suite in ``tests/serial/``).
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["PlanMiss", "build_encode_plan", "build_decode_plan",
           "plan_signature"]


class PlanMiss(Exception):
    """A planned token deviated from its plan; use the generic codec."""


_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

# Wire constants mirrored from ``wire.py`` (single byte each; the parity
# property suite pins plan output against the generic codec, so drift
# here cannot ship silently).
_MAGIC = b"DPS2"
_TAG_FALSE = b"\x01"
_TAG_TRUE = b"\x02"
_TAG_INT64 = b"\x03"
_TAG_FLOAT64 = b"\x04"
_TAG_DICT = b"\x0d"


def plan_signature(name: bytes, fields: Dict[str, Any]) -> Tuple:
    """Hashable signature of a token layout: name + ordered field kinds."""
    return (name, tuple((k, type(v).__name__) for k, v in fields.items()))


def _layout(name: bytes, sample: Dict[str, Any]):
    """Split the wire layout of *sample* into const runs and scalar slots.

    Returns ``(pieces, field_order)`` where each piece is ``('const',
    bytes)`` or ``('int' | 'float' | 'bool', key)`` and *field_order* is
    the ordered ``(key, kind)`` list over every field (kind ``'none'``
    for None-valued fields, which are folded into const runs).  Returns
    ``None`` when the layout is not plannable (non-scalar field,
    oversized key, an int already outside int64).
    """
    const = bytearray(_MAGIC)
    const += _U16.pack(len(name))
    const += name
    const += _TAG_DICT
    const += _U32.pack(len(sample))
    pieces: list = []
    field_order: list = []
    for key, value in sample.items():
        if type(key) is not str:
            return None
        kraw = key.encode("utf-8")
        if len(kraw) > 0xFFFF:
            return None
        const += _U16.pack(len(kraw))
        const += kraw
        kind = type(value)
        if kind is bool:
            # The tag byte doubles as the value (TRUE/FALSE), so the
            # slot is the 1-byte tag itself.
            pieces.append(("const", bytes(const)))
            const = bytearray()
            pieces.append(("bool", key))
            field_order.append((key, "bool"))
        elif kind is int:
            if not (_INT64_MIN <= value <= _INT64_MAX):
                return None  # first sample is already a BIGINT layout
            const += _TAG_INT64
            pieces.append(("const", bytes(const)))
            const = bytearray()
            pieces.append(("int", key))
            field_order.append((key, "int"))
        elif kind is float:
            const += _TAG_FLOAT64
            pieces.append(("const", bytes(const)))
            const = bytearray()
            pieces.append(("float", key))
            field_order.append((key, "float"))
        elif value is None:
            const += b"\x00"
            field_order.append((key, "none"))
        else:
            return None
    if const:
        pieces.append(("const", bytes(const)))
    return pieces, field_order


_SLOT_FMT = {"int": "q", "float": "d", "bool": "c"}


def build_encode_plan(name: bytes, sample: Dict[str, Any]
                      ) -> Optional[Callable[[Dict[str, Any]], bytes]]:
    """Compile ``fields -> wire bytes`` for *sample*'s layout, or ``None``.

    The returned callable raises :class:`PlanMiss` whenever the fields
    it is handed deviate from the planned signature (different keys or
    order, a non-exact-type value, int64 overflow, a None field that is
    no longer None).
    """
    layout = _layout(name, sample)
    if layout is None:
        return None
    pieces, field_order = layout
    fmt = ["<"]
    ns: Dict[str, Any] = {"_PM": PlanMiss, "_int": int, "_float": float}
    args: list = []
    lines = ["def _pack(fields):",
             "    if tuple(fields) != _keys:",
             "        raise _PM"]
    ns["_keys"] = tuple(sample)
    for i, (kind, payload) in enumerate(pieces):
        if kind == "const":
            fmt.append(f"{len(payload)}s")
            ns[f"_c{i}"] = payload
            args.append(f"_c{i}")
            continue
        fmt.append(_SLOT_FMT[kind])
        var = f"v{i}"
        lines.append(f"    {var} = fields[{payload!r}]")
        if kind == "int":
            lines.append(f"    if {var}.__class__ is not _int or "
                         f"{var} > {_INT64_MAX} or {var} < {_INT64_MIN}:")
            lines.append("        raise _PM")
        elif kind == "float":
            lines.append(f"    if {var}.__class__ is not _float:")
            lines.append("        raise _PM")
        else:  # bool
            lines.append(f"    if {var} is True:")
            lines.append(f"        {var} = {_TAG_TRUE!r}")
            lines.append(f"    elif {var} is False:")
            lines.append(f"        {var} = {_TAG_FALSE!r}")
            lines.append("    else:")
            lines.append("        raise _PM")
        args.append(var)
    for key, kind in field_order:
        if kind == "none":
            lines.append(f"    if fields[{key!r}] is not None:")
            lines.append("        raise _PM")
    st = struct.Struct("".join(fmt))
    ns["_pki"] = st.pack_into
    ns["_n"] = st.size
    # A bytearray, not bytes: encode_segments documents its single-segment
    # whole-message tail as writable, and gather() hands it over as-is.
    lines.append("    out = bytearray(_n)")
    lines.append(f"    _pki(out, 0, {', '.join(args)})")
    lines.append("    return out")
    exec(compile("\n".join(lines), "<wire-encode-plan>", "exec"), ns)
    return ns["_pack"]


def build_decode_plan(cls: type, name: bytes, sample: Dict[str, Any]
                      ) -> Optional[Callable[[memoryview], Any]]:
    """Compile ``wire view -> token`` for *sample*'s layout, or ``None``.

    The returned callable raises :class:`PlanMiss` on any deviation —
    wrong total length, any constant run (magic, name, keys, tags) not
    matching, a bool slot holding a byte that is neither TRUE nor FALSE.
    """
    layout = _layout(name, sample)
    if layout is None:
        return None
    pieces, field_order = layout
    fmt = ["<"]
    for kind, payload in pieces:
        fmt.append(f"{len(payload)}s" if kind == "const"
                   else _SLOT_FMT[kind])
    st = struct.Struct("".join(fmt))
    ns: Dict[str, Any] = {"_PM": PlanMiss, "_up": st.unpack, "_cls": cls}
    lines = ["def _unpack(view):",
             f"    if view.nbytes != {st.size}:",
             "        raise _PM",
             "    t = _up(view)"]
    checks = []
    slot_index: Dict[str, int] = {}
    for i, (kind, payload) in enumerate(pieces):
        if kind == "const":
            ns[f"_c{i}"] = payload
            checks.append(f"t[{i}] != _c{i}")
        else:
            slot_index[payload] = i
    if checks:
        lines.append(f"    if {' or '.join(checks)}:")
        lines.append("        raise _PM")
    # Assign fields strictly in wire order — the generic decoder builds
    # its dict that way, and a re-encode of the decoded token must walk
    # the keys in the same order to stay bit-identical.
    lines.append("    d = {}")
    for key, kind in field_order:
        if kind == "none":
            lines.append(f"    d[{key!r}] = None")
        elif kind == "bool":
            lines.append(f"    b = t[{slot_index[key]}]")
            lines.append("    if b == b'\\x02':")
            lines.append(f"        d[{key!r}] = True")
            lines.append("    elif b == b'\\x01':")
            lines.append(f"        d[{key!r}] = False")
            lines.append("    else:")
            lines.append("        raise _PM")
        else:
            lines.append(f"    d[{key!r}] = t[{slot_index[key]}]")
    lines.append("    obj = _cls.__new__(_cls)")
    lines.append("    obj.__dict__ = d")
    lines.append("    return obj")
    exec(compile("\n".join(lines), "<wire-decode-plan>", "exec"), ns)
    return ns["_unpack"]
