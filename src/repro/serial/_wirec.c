/* Compiled fast path for the DPS wire codec (repro/serial/wire.py).
 *
 * A hand-written CPython extension implementing the encode/decode value
 * visitors for the common subset of the wire format: exact-type scalars
 * (None, bool, int64, bigint, float64, str, bytes, bytearray), the
 * container tags (list, tuple, dict, Vector) and — through Python
 * helper callbacks installed by `setup()` — inline ndarray/Buffer
 * payloads below the scatter-gather segment threshold.
 *
 * Anything outside that subset (numpy scalars, memoryviews, subclasses,
 * nested tokens, arrays at or above the segment threshold whose bytes
 * must be borrowed zero-copy) raises the `Unsupported` exception passed
 * to `setup()`; the Python caller then falls back to the generic
 * visitor, whose bytes this module reproduces bit-identically for
 * everything it does accept (pinned by the parity property suite).
 *
 * The module is built best-effort (`optional=True` in setup.py) and
 * loaded best-effort (`repro.serial.fastpath`): importing `repro` never
 * requires a C compiler.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <string.h>

/* Wire tags (must match wire.Tag). */
#define TAG_NONE 0
#define TAG_FALSE 1
#define TAG_TRUE 2
#define TAG_INT64 3
#define TAG_FLOAT64 4
#define TAG_STR 5
#define TAG_BYTES 6
#define TAG_BIGINT 7
#define TAG_NDARRAY 8
#define TAG_BUFFER 9
#define TAG_VECTOR 10
#define TAG_LIST 11
#define TAG_TUPLE 12
#define TAG_DICT 13
#define TAG_TOKEN 14

#define MAX_DEPTH 64

typedef struct {
    PyObject *unsupported;   /* exception class: fall back to pure path */
    PyObject *buffer_cls;    /* repro.serial.containers.Buffer */
    PyObject *vector_cls;    /* repro.serial.containers.Vector */
    PyObject *ndarray_cls;   /* numpy.ndarray */
    PyObject *encode_array;  /* callable(arr) -> bytes (hdr + payload) */
    PyObject *decode_array;  /* callable(view, off, copy, as_buffer)
                                -> (obj, new_off) */
    PyObject *str_items;     /* interned "items" */
    PyObject *str_array;     /* interned "array" */
} wirec_state;

static wirec_state state; /* single-interpreter module state */
static int state_ready = 0;

static int
raise_unsupported(void)
{
    PyErr_SetNone(state.unsupported);
    return -1;
}

/* ------------------------------------------------------------------ */
/* growable output buffer                                             */
/* ------------------------------------------------------------------ */

typedef struct {
    char *buf;
    Py_ssize_t len;
    Py_ssize_t cap;
} writer;

static int
w_grow(writer *w, Py_ssize_t extra)
{
    Py_ssize_t need = w->len + extra;
    Py_ssize_t cap = w->cap;
    char *nbuf;
    if (need <= cap)
        return 0;
    while (cap < need)
        cap = cap + (cap >> 1) + 64;
    nbuf = PyMem_Realloc(w->buf, cap);
    if (nbuf == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    w->buf = nbuf;
    w->cap = cap;
    return 0;
}

static inline int
w_bytes(writer *w, const char *p, Py_ssize_t n)
{
    if (w->len + n > w->cap && w_grow(w, n) < 0)
        return -1;
    memcpy(w->buf + w->len, p, n);
    w->len += n;
    return 0;
}

static inline int
w_u8(writer *w, unsigned char v)
{
    if (w->len + 1 > w->cap && w_grow(w, 1) < 0)
        return -1;
    w->buf[w->len++] = (char)v;
    return 0;
}

static inline int
w_u16(writer *w, uint16_t v)
{
    unsigned char b[2] = {(unsigned char)(v & 0xff),
                          (unsigned char)(v >> 8)};
    return w_bytes(w, (const char *)b, 2);
}

static inline int
w_u32(writer *w, uint32_t v)
{
    unsigned char b[4] = {(unsigned char)(v & 0xff),
                          (unsigned char)((v >> 8) & 0xff),
                          (unsigned char)((v >> 16) & 0xff),
                          (unsigned char)((v >> 24) & 0xff)};
    return w_bytes(w, (const char *)b, 4);
}

static inline int
w_u64(writer *w, uint64_t v)
{
    unsigned char b[8];
    int i;
    for (i = 0; i < 8; i++)
        b[i] = (unsigned char)((v >> (8 * i)) & 0xff);
    return w_bytes(w, (const char *)b, 8);
}

/* ------------------------------------------------------------------ */
/* encode                                                             */
/* ------------------------------------------------------------------ */

static int enc_value(writer *w, PyObject *v, int depth);

static int
enc_array(writer *w, PyObject *arr)
{
    PyObject *raw = PyObject_CallOneArg(state.encode_array, arr);
    int rc;
    if (raw == NULL)
        return -1; /* Unsupported (>= threshold) or WireError propagate */
    if (!PyBytes_CheckExact(raw)) {
        Py_DECREF(raw);
        PyErr_SetString(PyExc_TypeError,
                        "encode_array helper must return bytes");
        return -1;
    }
    rc = w_bytes(w, PyBytes_AS_STRING(raw), PyBytes_GET_SIZE(raw));
    Py_DECREF(raw);
    return rc;
}

static int
enc_str(writer *w, PyObject *v)
{
    Py_ssize_t n;
    const char *p = PyUnicode_AsUTF8AndSize(v, &n);
    if (p == NULL)
        return -1;
    if (n > (Py_ssize_t)UINT32_MAX)
        return raise_unsupported();
    if (w_u8(w, TAG_STR) < 0 || w_u32(w, (uint32_t)n) < 0)
        return -1;
    return w_bytes(w, p, n);
}

static int
enc_int(writer *w, PyObject *v)
{
    int overflow = 0;
    long long x = PyLong_AsLongLongAndOverflow(v, &overflow);
    if (x == -1 && !overflow && PyErr_Occurred())
        return -1;
    if (!overflow) {
        if (w_u8(w, TAG_INT64) < 0)
            return -1;
        return w_u64(w, (uint64_t)x);
    }
    /* BIGINT: ASCII digits of str(v). */
    {
        PyObject *s = PyObject_Str(v);
        Py_ssize_t n;
        const char *p;
        int rc;
        if (s == NULL)
            return -1;
        p = PyUnicode_AsUTF8AndSize(s, &n);
        if (p == NULL) {
            Py_DECREF(s);
            return -1;
        }
        rc = (w_u8(w, TAG_BIGINT) < 0 || w_u32(w, (uint32_t)n) < 0 ||
              w_bytes(w, p, n) < 0) ? -1 : 0;
        Py_DECREF(s);
        return rc;
    }
}

static int
enc_float(writer *w, PyObject *v)
{
    union {
        double f;
        uint64_t u;
    } bits;
    bits.f = PyFloat_AS_DOUBLE(v);
    if (w_u8(w, TAG_FLOAT64) < 0)
        return -1;
    return w_u64(w, bits.u);
}

static int
enc_dict(writer *w, PyObject *v, int depth)
{
    PyObject *key, *item;
    Py_ssize_t pos = 0;
    if (w_u8(w, TAG_DICT) < 0 ||
        w_u32(w, (uint32_t)PyDict_GET_SIZE(v)) < 0)
        return -1;
    while (PyDict_Next(v, &pos, &key, &item)) {
        Py_ssize_t n;
        const char *p;
        if (!PyUnicode_CheckExact(key))
            return raise_unsupported(); /* pure path raises WireError */
        p = PyUnicode_AsUTF8AndSize(key, &n);
        if (p == NULL)
            return -1;
        if (n > 0xFFFF)
            return raise_unsupported(); /* pure path raises struct.error */
        if (w_u16(w, (uint16_t)n) < 0 || w_bytes(w, p, n) < 0)
            return -1;
        if (enc_value(w, item, depth) < 0)
            return -1;
    }
    return 0;
}

static int
enc_sequence(writer *w, PyObject *v, unsigned char tag, int depth)
{
    Py_ssize_t i, n = PySequence_Fast_GET_SIZE(v);
    PyObject **items = PySequence_Fast_ITEMS(v);
    if (n > (Py_ssize_t)UINT32_MAX)
        return raise_unsupported();
    if (w_u8(w, tag) < 0 || w_u32(w, (uint32_t)n) < 0)
        return -1;
    for (i = 0; i < n; i++) {
        if (enc_value(w, items[i], depth) < 0)
            return -1;
    }
    return 0;
}

static int
enc_value(writer *w, PyObject *v, int depth)
{
    PyTypeObject *t;
    if (depth >= MAX_DEPTH)
        return raise_unsupported();
    depth += 1;
    if (v == Py_None)
        return w_u8(w, TAG_NONE);
    if (v == Py_True)
        return w_u8(w, TAG_TRUE);
    if (v == Py_False)
        return w_u8(w, TAG_FALSE);
    t = Py_TYPE(v);
    if (t == &PyUnicode_Type)
        return enc_str(w, v);
    if (t == &PyLong_Type)
        return enc_int(w, v);
    if (t == &PyFloat_Type)
        return enc_float(w, v);
    if (t == &PyBytes_Type) {
        Py_ssize_t n = PyBytes_GET_SIZE(v);
        if (n > (Py_ssize_t)UINT32_MAX)
            return raise_unsupported();
        if (w_u8(w, TAG_BYTES) < 0 || w_u32(w, (uint32_t)n) < 0)
            return -1;
        return w_bytes(w, PyBytes_AS_STRING(v), n);
    }
    if (t == &PyByteArray_Type) {
        Py_ssize_t n = PyByteArray_GET_SIZE(v);
        if (n > (Py_ssize_t)UINT32_MAX)
            return raise_unsupported();
        if (w_u8(w, TAG_BYTES) < 0 || w_u32(w, (uint32_t)n) < 0)
            return -1;
        return w_bytes(w, PyByteArray_AS_STRING(v), n);
    }
    if (t == &PyDict_Type)
        return enc_dict(w, v, depth);
    if (t == &PyList_Type)
        return enc_sequence(w, v, TAG_LIST, depth);
    if (t == &PyTuple_Type)
        return enc_sequence(w, v, TAG_TUPLE, depth);
    if ((PyObject *)t == state.buffer_cls) {
        PyObject *arr = PyObject_GetAttr(v, state.str_array);
        int rc;
        if (arr == NULL)
            return -1;
        rc = (w_u8(w, TAG_BUFFER) < 0 || enc_array(w, arr) < 0) ? -1 : 0;
        Py_DECREF(arr);
        return rc;
    }
    if ((PyObject *)t == state.ndarray_cls) {
        if (w_u8(w, TAG_NDARRAY) < 0)
            return -1;
        return enc_array(w, v);
    }
    if ((PyObject *)t == state.vector_cls) {
        PyObject *items = PyObject_GetAttr(v, state.str_items);
        int rc;
        if (items == NULL)
            return -1;
        if (!PyList_CheckExact(items)) {
            Py_DECREF(items);
            return raise_unsupported();
        }
        rc = enc_sequence(w, items, TAG_VECTOR, depth);
        Py_DECREF(items);
        return rc;
    }
    /* memoryview, numpy scalars, subclasses, nested Tokens, anything
     * else: let the pure-Python visitor handle (or reject) it. */
    return raise_unsupported();
}

static PyObject *
wirec_encode_token(PyObject *self, PyObject *args)
{
    PyObject *name, *fields, *out;
    writer w = {NULL, 0, 0};
    (void)self;
    if (!state_ready) {
        PyErr_SetString(PyExc_RuntimeError, "_wirec.setup() not called");
        return NULL;
    }
    if (!PyArg_ParseTuple(args, "SO!:encode_token", &name,
                          &PyDict_Type, &fields))
        return NULL;
    if (PyBytes_GET_SIZE(name) > 0xFFFF) {
        PyErr_SetNone(state.unsupported);
        return NULL;
    }
    if (w_bytes(&w, "DPS2", 4) < 0 ||
        w_u16(&w, (uint16_t)PyBytes_GET_SIZE(name)) < 0 ||
        w_bytes(&w, PyBytes_AS_STRING(name), PyBytes_GET_SIZE(name)) < 0 ||
        enc_value(&w, fields, 0) < 0) {
        PyMem_Free(w.buf);
        return NULL;
    }
    /* A bytearray, not bytes: encode_segments documents its
     * single-segment whole-message tail as writable, and gather()
     * hands it over to the caller as-is. */
    out = PyByteArray_FromStringAndSize(w.buf, w.len);
    PyMem_Free(w.buf);
    return out;
}

/* ------------------------------------------------------------------ */
/* decode                                                             */
/* ------------------------------------------------------------------ */

typedef struct {
    const char *p;
    Py_ssize_t n;
    Py_ssize_t off;
    int copy;
    PyObject *src; /* the Python buffer object, for the array helper */
} reader;

static inline int
r_need(reader *r, Py_ssize_t k)
{
    if (r->n - r->off < k)
        return raise_unsupported(); /* pure path raises the real error */
    return 0;
}

static inline uint32_t
r_u32(reader *r)
{
    const unsigned char *b = (const unsigned char *)(r->p + r->off);
    r->off += 4;
    return (uint32_t)b[0] | ((uint32_t)b[1] << 8) | ((uint32_t)b[2] << 16) |
           ((uint32_t)b[3] << 24);
}

static inline uint16_t
r_u16(reader *r)
{
    const unsigned char *b = (const unsigned char *)(r->p + r->off);
    r->off += 2;
    return (uint16_t)(b[0] | (b[1] << 8));
}

static PyObject *dec_value(reader *r, int depth);

static PyObject *
dec_array(reader *r, int as_buffer)
{
    PyObject *res, *obj, *off_obj;
    Py_ssize_t new_off;
    res = PyObject_CallFunction(state.decode_array, "Onii", r->src, r->off,
                                r->copy, as_buffer);
    if (res == NULL)
        return NULL;
    if (!PyTuple_CheckExact(res) || PyTuple_GET_SIZE(res) != 2) {
        Py_DECREF(res);
        PyErr_SetString(PyExc_TypeError,
                        "decode_array helper must return (obj, offset)");
        return NULL;
    }
    obj = PyTuple_GET_ITEM(res, 0);
    off_obj = PyTuple_GET_ITEM(res, 1);
    new_off = PyLong_AsSsize_t(off_obj);
    if (new_off == -1 && PyErr_Occurred()) {
        Py_DECREF(res);
        return NULL;
    }
    if (new_off < r->off || new_off > r->n) {
        Py_DECREF(res);
        PyErr_SetString(PyExc_ValueError,
                        "decode_array helper returned a bad offset");
        return NULL;
    }
    r->off = new_off;
    Py_INCREF(obj);
    Py_DECREF(res);
    return obj;
}

static PyObject *
dec_value(reader *r, int depth)
{
    unsigned char tag;
    if (depth >= MAX_DEPTH) {
        raise_unsupported();
        return NULL;
    }
    depth += 1;
    if (r_need(r, 1) < 0)
        return NULL;
    tag = (unsigned char)r->p[r->off];
    r->off += 1;
    switch (tag) {
    case TAG_NONE:
        Py_RETURN_NONE;
    case TAG_FALSE:
        Py_RETURN_FALSE;
    case TAG_TRUE:
        Py_RETURN_TRUE;
    case TAG_INT64: {
        uint64_t u;
        int i;
        if (r_need(r, 8) < 0)
            return NULL;
        u = 0;
        for (i = 0; i < 8; i++)
            u |= (uint64_t)(unsigned char)r->p[r->off + i] << (8 * i);
        r->off += 8;
        return PyLong_FromLongLong((long long)u);
    }
    case TAG_FLOAT64: {
        union {
            double f;
            uint64_t u;
        } bits;
        int i;
        if (r_need(r, 8) < 0)
            return NULL;
        bits.u = 0;
        for (i = 0; i < 8; i++)
            bits.u |= (uint64_t)(unsigned char)r->p[r->off + i] << (8 * i);
        r->off += 8;
        return PyFloat_FromDouble(bits.f);
    }
    case TAG_STR: {
        uint32_t n;
        PyObject *s;
        if (r_need(r, 4) < 0)
            return NULL;
        n = r_u32(r);
        if (r_need(r, (Py_ssize_t)n) < 0)
            return NULL;
        s = PyUnicode_DecodeUTF8(r->p + r->off, (Py_ssize_t)n, NULL);
        r->off += (Py_ssize_t)n;
        return s;
    }
    case TAG_BYTES: {
        uint32_t n;
        PyObject *b;
        if (r_need(r, 4) < 0)
            return NULL;
        n = r_u32(r);
        if (r_need(r, (Py_ssize_t)n) < 0)
            return NULL;
        b = PyBytes_FromStringAndSize(r->p + r->off, (Py_ssize_t)n);
        r->off += (Py_ssize_t)n;
        return b;
    }
    case TAG_BIGINT: {
        uint32_t n;
        PyObject *s, *v;
        if (r_need(r, 4) < 0)
            return NULL;
        n = r_u32(r);
        if (r_need(r, (Py_ssize_t)n) < 0)
            return NULL;
        s = PyUnicode_DecodeASCII(r->p + r->off, (Py_ssize_t)n, NULL);
        if (s == NULL)
            return NULL;
        r->off += (Py_ssize_t)n;
        v = PyLong_FromUnicodeObject(s, 10);
        Py_DECREF(s);
        return v;
    }
    case TAG_NDARRAY:
        return dec_array(r, 0);
    case TAG_BUFFER:
        return dec_array(r, 1);
    case TAG_LIST:
    case TAG_TUPLE: {
        uint32_t n;
        Py_ssize_t i;
        PyObject *seq;
        if (r_need(r, 4) < 0)
            return NULL;
        n = r_u32(r);
        if ((Py_ssize_t)n > r->n - r->off) { /* >= 1 byte per element */
            raise_unsupported();
            return NULL;
        }
        seq = (tag == TAG_LIST) ? PyList_New((Py_ssize_t)n)
                                : PyTuple_New((Py_ssize_t)n);
        if (seq == NULL)
            return NULL;
        for (i = 0; i < (Py_ssize_t)n; i++) {
            PyObject *item = dec_value(r, depth);
            if (item == NULL) {
                Py_DECREF(seq);
                return NULL;
            }
            if (tag == TAG_LIST)
                PyList_SET_ITEM(seq, i, item);
            else
                PyTuple_SET_ITEM(seq, i, item);
        }
        return seq;
    }
    case TAG_VECTOR: {
        uint32_t n;
        Py_ssize_t i;
        PyObject *vec, *items;
        if (r_need(r, 4) < 0)
            return NULL;
        n = r_u32(r);
        if ((Py_ssize_t)n > r->n - r->off) {
            raise_unsupported();
            return NULL;
        }
        vec = PyObject_CallNoArgs(state.vector_cls);
        if (vec == NULL)
            return NULL;
        items = PyObject_GetAttr(vec, state.str_items);
        if (items == NULL || !PyList_CheckExact(items)) {
            Py_XDECREF(items);
            Py_DECREF(vec);
            if (!PyErr_Occurred())
                raise_unsupported();
            return NULL;
        }
        for (i = 0; i < (Py_ssize_t)n; i++) {
            PyObject *item = dec_value(r, depth);
            if (item == NULL || PyList_Append(items, item) < 0) {
                Py_XDECREF(item);
                Py_DECREF(items);
                Py_DECREF(vec);
                return NULL;
            }
            Py_DECREF(item);
        }
        Py_DECREF(items);
        return vec;
    }
    case TAG_DICT: {
        uint32_t n;
        Py_ssize_t i;
        PyObject *d;
        if (r_need(r, 4) < 0)
            return NULL;
        n = r_u32(r);
        if ((Py_ssize_t)n > (r->n - r->off) / 3) { /* >= 3 bytes/entry */
            raise_unsupported();
            return NULL;
        }
        d = PyDict_New();
        if (d == NULL)
            return NULL;
        for (i = 0; i < (Py_ssize_t)n; i++) {
            uint16_t klen;
            PyObject *key, *item;
            if (r_need(r, 2) < 0) {
                Py_DECREF(d);
                return NULL;
            }
            klen = r_u16(r);
            if (r_need(r, (Py_ssize_t)klen) < 0) {
                Py_DECREF(d);
                return NULL;
            }
            key = PyUnicode_DecodeUTF8(r->p + r->off, (Py_ssize_t)klen,
                                       NULL);
            if (key == NULL) {
                Py_DECREF(d);
                return NULL;
            }
            r->off += (Py_ssize_t)klen;
            item = dec_value(r, depth);
            if (item == NULL || PyDict_SetItem(d, key, item) < 0) {
                Py_DECREF(key);
                Py_XDECREF(item);
                Py_DECREF(d);
                return NULL;
            }
            Py_DECREF(key);
            Py_DECREF(item);
        }
        return d;
    }
    case TAG_TOKEN:
    default:
        /* Nested tokens need the registry; unknown tags need the
         * canonical WireError.  Both via the pure path. */
        raise_unsupported();
        return NULL;
    }
}

static PyObject *
wirec_decode_token(PyObject *self, PyObject *args)
{
    PyObject *src, *name, *fields, *out;
    int copy = 1;
    Py_buffer view;
    reader r;
    uint16_t name_len;
    (void)self;
    if (!state_ready) {
        PyErr_SetString(PyExc_RuntimeError, "_wirec.setup() not called");
        return NULL;
    }
    if (!PyArg_ParseTuple(args, "O|p:decode_token", &src, &copy))
        return NULL;
    if (PyObject_GetBuffer(src, &view, PyBUF_SIMPLE) < 0) {
        /* Non-contiguous or exotic buffer: pure path handles it. */
        PyErr_Clear();
        PyErr_SetNone(state.unsupported);
        return NULL;
    }
    r.p = (const char *)view.buf;
    r.n = view.len;
    r.off = 0;
    r.copy = copy;
    r.src = src;
    if (r.n < 6 || memcmp(r.p, "DPS2", 4) != 0) {
        PyBuffer_Release(&view);
        PyErr_SetNone(state.unsupported); /* pure raises "bad magic" */
        return NULL;
    }
    r.off = 4;
    name_len = r_u16(&r);
    if (r.n - r.off < (Py_ssize_t)name_len) {
        PyBuffer_Release(&view);
        PyErr_SetNone(state.unsupported);
        return NULL;
    }
    name = PyUnicode_DecodeUTF8(r.p + r.off, (Py_ssize_t)name_len, NULL);
    if (name == NULL) {
        PyBuffer_Release(&view);
        return NULL;
    }
    r.off += (Py_ssize_t)name_len;
    fields = dec_value(&r, 0);
    if (fields == NULL) {
        Py_DECREF(name);
        PyBuffer_Release(&view);
        return NULL;
    }
    if (r.off != r.n) {
        /* Trailing garbage: the pure path raises the canonical error. */
        Py_DECREF(name);
        Py_DECREF(fields);
        PyBuffer_Release(&view);
        PyErr_SetNone(state.unsupported);
        return NULL;
    }
    PyBuffer_Release(&view);
    out = PyTuple_Pack(2, name, fields);
    Py_DECREF(name);
    Py_DECREF(fields);
    return out;
}

/* ------------------------------------------------------------------ */
/* setup / module def                                                 */
/* ------------------------------------------------------------------ */

static PyObject *
wirec_setup(PyObject *self, PyObject *args)
{
    PyObject *unsupported, *buffer_cls, *vector_cls, *ndarray_cls;
    PyObject *encode_array, *decode_array;
    (void)self;
    if (!PyArg_ParseTuple(args, "OOOOOO:setup", &unsupported, &buffer_cls,
                          &vector_cls, &ndarray_cls, &encode_array,
                          &decode_array))
        return NULL;
    Py_XDECREF(state.unsupported);
    Py_XDECREF(state.buffer_cls);
    Py_XDECREF(state.vector_cls);
    Py_XDECREF(state.ndarray_cls);
    Py_XDECREF(state.encode_array);
    Py_XDECREF(state.decode_array);
    Py_INCREF(unsupported);
    Py_INCREF(buffer_cls);
    Py_INCREF(vector_cls);
    Py_INCREF(ndarray_cls);
    Py_INCREF(encode_array);
    Py_INCREF(decode_array);
    state.unsupported = unsupported;
    state.buffer_cls = buffer_cls;
    state.vector_cls = vector_cls;
    state.ndarray_cls = ndarray_cls;
    state.encode_array = encode_array;
    state.decode_array = decode_array;
    if (state.str_items == NULL) {
        state.str_items = PyUnicode_InternFromString("items");
        if (state.str_items == NULL)
            return NULL;
    }
    if (state.str_array == NULL) {
        state.str_array = PyUnicode_InternFromString("array");
        if (state.str_array == NULL)
            return NULL;
    }
    state_ready = 1;
    Py_RETURN_NONE;
}

static PyMethodDef wirec_methods[] = {
    {"setup", wirec_setup, METH_VARARGS,
     "setup(unsupported, Buffer, Vector, ndarray, encode_array, "
     "decode_array)"},
    {"encode_token", wirec_encode_token, METH_VARARGS,
     "encode_token(name_bytes, fields_dict) -> bytearray"},
    {"decode_token", wirec_decode_token, METH_VARARGS,
     "decode_token(buffer, copy=True) -> (name, fields)"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef wirec_module = {
    PyModuleDef_HEAD_INIT,
    "repro.serial._wirec",
    "Compiled fast path for the DPS wire codec.",
    -1,
    wirec_methods,
    NULL,
    NULL,
    NULL,
    NULL,
};

PyMODINIT_FUNC
PyInit__wirec(void)
{
    return PyModule_Create(&wirec_module);
}
