"""Token class registry — the Python analog of DPS's ``IDENTIFY`` macro.

In the C++ library every data object class carries an ``IDENTIFY`` macro
that registers an abstract class factory so objects can be instantiated
during deserialization.  Here a metaclass registers every
:class:`~repro.serial.token.Token` subclass under a stable name; the wire
decoder looks the class up by that name.
"""

from __future__ import annotations

from typing import Dict, Type

__all__ = ["TokenRegistry", "registry"]


class TokenRegistry:
    """Maps stable class names to token classes (abstract factory)."""

    def __init__(self) -> None:
        self._classes: Dict[str, type] = {}
        # Encoded wire names, cached per class: the serializer stamps the
        # name on every message, so recomputing ``name.encode()`` per
        # token would dominate small-message encode cost.
        self._name_bytes: Dict[type, bytes] = {}

    def register(self, cls: type, name: str | None = None) -> None:
        """Register *cls* under *name* (default: the class ``__name__``).

        Re-registering the *same* class object is a no-op; registering a
        different class under an existing name raises, because silently
        shadowing a token type would corrupt deserialization.
        """
        key = name or cls.__name__
        existing = self._classes.get(key)
        if existing is not None and existing is not cls:
            raise ValueError(
                f"token name {key!r} already registered by "
                f"{existing.__module__}.{existing.__qualname__}"
            )
        self._classes[key] = cls

    def lookup(self, name: str) -> type:
        """Return the class registered under *name*."""
        try:
            return self._classes[name]
        except KeyError:
            raise KeyError(
                f"unknown token class {name!r}; did you forget to import "
                f"the module defining it before deserializing?"
            ) from None

    def name_of(self, cls: type) -> str:
        """Return the registered name for *cls*."""
        key = getattr(cls, "_dps_name_", cls.__name__)
        if self._classes.get(key) is not cls:
            raise KeyError(f"{cls!r} is not registered")
        return key

    def name_bytes_of(self, cls: type) -> bytes:
        """UTF-8 encoded registered name of *cls* (cached)."""
        raw = self._name_bytes.get(cls)
        if raw is None:
            raw = self.name_of(cls).encode("utf-8")
            self._name_bytes[cls] = raw
        return raw

    def is_registered(self, name: str) -> bool:
        return name in self._classes

    def __len__(self) -> int:
        return len(self._classes)


#: Process-global registry used by the default wire codec.
registry = TokenRegistry()
