"""Fault tolerance for the multiprocess runtime.

The paper names graceful degradation as future work: *"the dynamicity of
DPS combined with appropriate checkpointing procedures may also lead to
more lightweight approaches for graceful degradation."*  The simulated
engine reproduces the checkpoint flavour (:mod:`repro.runtime.checkpoint`);
this module provides the lightweight flavour for the real runtime —
**split-boundary replay**, the recover-at-stage-boundaries idea of
task-pipeline systems: split–merge pairs with tracked group totals are
natural replay units.

Three pieces, all engine-agnostic and individually testable:

- :class:`TokenJournal` — the split side keeps every emitted token of a
  *windowed* group until the matching merge acks it.  Because recording
  piggybacks on ``SplitWindow.on_post`` and pruning on the existing ack
  path, the journal is bounded by tokens-in-flight (≤ the flow-control
  window per split instance) and costs one dict write per token.
- :class:`ReplayDedup` — exactly-once admission for replayed tokens,
  keyed by the token's top group frame ``(group_id, index)``.  Checked at
  every *non-leaf* input (merge, stream, split): a replayed token that
  reaches an already-processed split must be dropped there, or the split
  would mint a fresh inner group and re-drive stateful merges downstream.
  Stateless leaf operations deliberately re-execute — they are
  deterministic, and their outputs carry the same frame, so duplicates
  die at the next non-leaf hop.
- :class:`FaultPolicy` + :func:`plan_remap`/:func:`apply_remap` —
  deterministic chaos injection (kill / drop / delay from a seed) and the
  placement arithmetic that moves a dead kernel's thread instances onto
  survivors via the existing :meth:`ThreadCollection.map_nodes` machinery.

Recovery contract: a failure is masked when the dead kernel hosted
thread instances whose in-flight work is replayable — leaf instances
(stateless by the DPS execution model: state lives in thread objects
that the remap recreates fresh) and split/merge instances with **no
live group state** at the time of death.  A kernel that dies holding a
half-merged group cannot be reconstructed from journals alone and the
run fails with :class:`~repro.runtime.controller.KernelFailure`.
"""

from __future__ import annotations

import os
import random
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Set, Tuple

__all__ = [
    "FaultPolicy",
    "TokenJournal",
    "ReplayDedup",
    "plan_remap",
    "plan_rebalance",
    "apply_remap",
]


# ----------------------------------------------------------------------
# chaos injection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPolicy:
    """Deterministic fault injection for chaos tests.

    Frozen so one policy object can be shared across forked kernel
    processes without synchronization; every random decision comes from
    a per-kernel :class:`random.Random` seeded from ``(kernel name,
    seed)``, so a given policy produces the same kill/drop/delay
    schedule on every run.
    """

    #: Kernel (logical node) name to kill, or ``None`` for no kill.
    kill_kernel: Optional[str] = None
    #: Kill ``kill_kernel`` this many seconds after it starts.
    kill_after: Optional[float] = None
    #: Kill ``kill_kernel`` when it has received this many data
    #: messages — deterministic mid-phase death, unlike wall-clock.
    kill_after_messages: Optional[int] = None
    #: Probability in [0, 1) of dropping each received data frame.
    #: Control messages (acks, group totals, remap/replay barriers) are
    #: never dropped — only :data:`~repro.net.protocol.MSG_DATA`.
    drop_rate: float = 0.0
    #: Upper bound of a uniform random delay added before dispatching
    #: each received data frame.
    delay_ms: float = 0.0
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(f"drop_rate must be in [0, 1): {self.drop_rate}")
        if self.delay_ms < 0.0:
            raise ValueError(f"delay_ms must be >= 0: {self.delay_ms}")
        if self.kill_kernel is not None and (
                self.kill_after is None and self.kill_after_messages is None):
            raise ValueError(
                "kill_kernel needs kill_after= (seconds) or "
                "kill_after_messages=")

    @property
    def enabled(self) -> bool:
        return (self.kill_kernel is not None or self.drop_rate > 0.0
                or self.delay_ms > 0.0)

    def kills(self, kernel_name: str) -> bool:
        return self.kill_kernel == kernel_name

    def rng_for(self, kernel_name: str) -> random.Random:
        """Per-kernel RNG; stable across runs (crc32, not salted hash)."""
        return random.Random((zlib.crc32(kernel_name.encode()) << 32)
                             ^ self.seed)

    @staticmethod
    def parse_kill(spec: str) -> Tuple[str, Optional[float], Optional[int]]:
        """Parse ``"name@1.5"`` (seconds) or ``"name@#12"`` (messages)."""
        name, sep, when = spec.partition("@")
        if not sep or not name or not when:
            raise ValueError(
                f"kill spec must be 'kernel@seconds' or 'kernel@#messages', "
                f"got {spec!r}")
        if when.startswith("#"):
            return name, None, int(when[1:])
        return name, float(when), None

    @classmethod
    def from_env(cls, env=None) -> "FaultPolicy":
        """Build from ``REPRO_FAULT_*`` variables (all optional).

        ``REPRO_FAULT_KILL=node03@0.5`` (seconds) or ``node03@#5``
        (data messages), ``REPRO_FAULT_DROP=0.01``,
        ``REPRO_FAULT_DELAY_MS=2``, ``REPRO_FAULT_SEED=7``.
        """
        if env is None:
            env = os.environ
        kill_kernel = kill_after = kill_after_messages = None
        spec = env.get("REPRO_FAULT_KILL")
        if spec:
            kill_kernel, kill_after, kill_after_messages = cls.parse_kill(spec)
        return cls(
            kill_kernel=kill_kernel,
            kill_after=kill_after,
            kill_after_messages=kill_after_messages,
            drop_rate=float(env.get("REPRO_FAULT_DROP", "0") or 0),
            delay_ms=float(env.get("REPRO_FAULT_DELAY_MS", "0") or 0),
            seed=int(env.get("REPRO_FAULT_SEED", "0") or 0),
        )


# ----------------------------------------------------------------------
# split-side journal
# ----------------------------------------------------------------------
class TokenJournal:
    """Un-acked emitted tokens of windowed groups, keyed by
    ``(group_id, index)`` of the frame the emitting split pushed.

    Insertion-ordered, so scanning for stale entries stops at the first
    fresh one.  Not thread-safe on its own — callers hold the engine
    lock (recording happens next to ``SplitWindow.on_post``, pruning
    next to ``on_ack``, both already serialized).
    """

    __slots__ = ("_entries",)

    def __init__(self):
        self._entries: Dict[Tuple[int, int], List] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, env, now: float) -> None:
        frame = env.frames[-1]
        # A mutable [env, timestamp] pair so the resend ager can refresh
        # the timestamp without re-inserting (insertion order is the
        # stale-scan order).
        self._entries[(frame.group_id, frame.index)] = [env, now]

    def prune(self, group_id: int, index: int) -> None:
        """Forget an acked token (no-op when already pruned/replayed)."""
        self._entries.pop((group_id, index), None)

    def replay_all(self, now: float) -> List:
        """Every journaled envelope, oldest first; timestamps refreshed
        so the resend ager does not immediately re-send them."""
        out = []
        for entry in self._entries.values():
            entry[1] = now
            out.append(entry[0])
        return out

    def stale(self, older_than: float, now: float) -> List:
        """Envelopes un-acked for *older_than* seconds; refreshed like
        :meth:`replay_all` so each entry is re-sent at most once per
        aging period."""
        out = []
        for entry in self._entries.values():
            if now - entry[1] < older_than:
                break  # insertion order: everything later is fresher
            entry[1] = now
            out.append(entry[0])
        return out


# ----------------------------------------------------------------------
# replay dedup
# ----------------------------------------------------------------------
class ReplayDedup:
    """Exactly-once admission for token frames at non-leaf inputs.

    Keyed by ``(consumer, group_id, index)``, where *consumer*
    identifies the consuming graph node — the same frame legitimately
    crosses several non-leaf inputs on one kernel (a split consumes it,
    and a downstream merge's completion token carries the popped-back
    frame to the *next* merge), so admission must be per consumer, not
    global.  A replayed duplicate always targets the same consumer as
    the original and is rejected there.

    Entries are *not* dropped when a group completes: a stale resend
    that arrives after its merge group finished must still be rejected,
    or it would recreate the group and wedge the merge.  Instead a FIFO
    cap bounds total memory — far above any real flow-control window,
    and an evicted entry only matters if a duplicate arrives more than
    *cap* tokens after the original, which the journal's prune-on-ack
    and the short resend aging period prevent.
    """

    __slots__ = ("_groups", "_order", "_cap")

    def __init__(self, cap: int = 1 << 16):
        self._groups: Dict[Tuple, Set[int]] = {}
        self._order: Deque[Tuple] = deque()
        self._cap = cap

    def __len__(self) -> int:
        return len(self._order)

    def fresh(self, consumer, group_id: int, index: int) -> bool:
        """Record and admit the first sighting; reject duplicates."""
        key = (consumer, group_id)
        seen = self._groups.get(key)
        if seen is None:
            seen = self._groups[key] = set()
        elif index in seen:
            return False
        seen.add(index)
        order = self._order
        order.append((key, index))
        while len(order) > self._cap:
            old_key, old_idx = order.popleft()
            old = self._groups.get(old_key)
            if old is not None:
                old.discard(old_idx)
                if not old:
                    del self._groups[old_key]
        return True


# ----------------------------------------------------------------------
# remapping
# ----------------------------------------------------------------------
def _unique_collections(graphs: Iterable) -> Iterable:
    seen: Set[int] = set()
    for graph in graphs:
        for coll in graph.collections():
            if id(coll) in seen:
                continue
            seen.add(id(coll))
            yield coll


def plan_remap(graphs: Iterable, dead: str, survivors: List[str],
               depths: Optional[Dict[str, int]] = None) -> Dict[str, List[str]]:
    """New placements for every collection with instances on *dead*.

    Each dead slot goes to the least-loaded survivor at planning time:
    observed queue depth (*depths*, e.g. from
    :meth:`~repro.net.nameserver.NameServerClient.loads`) plus the slots
    this plan has already assigned.  Ties break on the sorted node name —
    a **stable node-id tiebreak**, so with equal depths (or none
    reported) the plan degrades to round-robin over the sorted survivor
    list and is reproducible run-to-run.  The console computes the plan
    once and broadcasts it.  Returns ``{collection_name: full placement
    list}`` (collection names are unique per application by
    construction).
    """
    if not survivors:
        raise ValueError(f"kernel {dead!r} died and no kernels survive")
    targets = sorted(survivors)
    load = {name: int((depths or {}).get(name, 0)) for name in targets}
    mapping: Dict[str, List[str]] = {}
    for coll in _unique_collections(graphs):
        placements = coll.placements
        if dead not in placements:
            continue
        new = []
        for node in placements:
            if node == dead:
                target = min(targets, key=lambda t: (load[t], t))
                load[target] += 1
                new.append(target)
            else:
                new.append(node)
        mapping[coll.name] = new
    return mapping


def plan_rebalance(
    graphs: Iterable,
    members: Iterable[str],
    depths: Optional[Dict[str, int]] = None,
    joined: Iterable[str] = (),
) -> Tuple[Dict[str, List[str]], int]:
    """Voluntary remap plan over the live *members* of the cluster.

    Where :func:`plan_remap` only evacuates a dead kernel,
    ``plan_rebalance`` spreads work *onto* joiners and *off* retirees:

    - every instance placed on a non-member (a retiring kernel) must
      move;
    - multi-instance collections are spread across members with a
      capacity-balanced, minimal-move assignment — instances keep their
      current node whenever its capacity allows, and spare capacity goes
      first to nodes already hosting instances (stability), then to
      *joined* kernels, then by observed queue depth, with the sorted
      node name as the final stable tiebreak;
    - single-instance collections are pinned placements (the paper's
      ``MainRoute`` idiom) and stay put unless their node is retiring,
      in which case they move to the least-loaded member.

    Fully deterministic for given inputs.  Returns ``(mapping, moved)``
    where *mapping* holds only collections whose placements change and
    *moved* counts the thread instances that migrate.
    """
    targets = sorted(set(members))
    if not targets:
        raise ValueError("cannot rebalance onto an empty member set")
    joined = set(joined)
    load = {name: int((depths or {}).get(name, 0)) for name in targets}
    member_set = set(targets)
    mapping: Dict[str, List[str]] = {}
    moved = 0
    for coll in _unique_collections(graphs):
        placements = coll.placements
        n = len(placements)
        if n == 1:
            if placements[0] in member_set:
                continue
            target = min(targets, key=lambda t: (load[t], t))
            load[target] += 1
            mapping[coll.name] = [target]
            moved += 1
            continue
        counts = {t: 0 for t in targets}
        for node in placements:
            if node in member_set:
                counts[node] += 1
        # Capacity: floor(n / members) everywhere, remainder seats to
        # current hosts first (fewest moves), then joiners, then by load.
        base, extra = divmod(n, len(targets))
        capacity = {t: base for t in targets}
        for t in sorted(targets,
                        key=lambda t: (-counts[t], 0 if t in joined else 1,
                                       load[t], t))[:extra]:
            capacity[t] += 1
        new: List[Optional[str]] = [None] * n
        for i, node in enumerate(placements):
            if node in member_set and capacity[node] > 0:
                capacity[node] -= 1
                new[i] = node
        spare = [t for t in targets for _ in range(capacity[t])]
        for i in range(n):
            if new[i] is None:
                new[i] = spare.pop(0)
                load[new[i]] += 1
                moved += 1
        if list(new) != placements:
            mapping[coll.name] = list(new)
    return mapping, moved


def apply_remap(graphs: Iterable, mapping: Dict[str, List[str]]) -> List[str]:
    """Apply a :func:`plan_remap` plan to this process's graph objects.

    Returns the names of the collections whose placements changed.
    """
    applied = []
    for coll in _unique_collections(graphs):
        new = mapping.get(coll.name)
        if new is not None and list(new) != coll.placements:
            coll.map_nodes(list(new))
            applied.append(coll.name)
    return applied
