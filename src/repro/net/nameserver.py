"""TCP name server for kernel discovery (paper §4).

The DPS runtime names kernels independently of the hosts they run on; a
central name server maps kernel names to listening addresses so peers can
establish connections lazily, on the first token they need to ship.  This
module provides both halves:

- :class:`NameServer` — a small threaded TCP directory service speaking a
  JSON-lines request/response protocol (one JSON object per ``\\n``-
  terminated line).  Registrations are *owned by the registering
  connection*: when that connection drops, its names are removed.  A
  kernel that crashes therefore frees its name automatically, and a
  restarted kernel may re-register; a second registration while the first
  owner is still alive is refused.  Registrations double as *heartbeat
  leases*: kernels beat periodically (``op=heartbeat``) and the console
  asks for lease-expired kernels (``op=expired``) — a hung process keeps
  its TCP connection alive but stops beating, which connection-drop
  detection alone would miss.  Beyond kernel addresses the directory also
  carries *service records* — named flow graphs a resident service tier
  exposes, each with its token-type signature — listed through the
  ``services`` RPC with the same lease semantics: a service whose
  providing kernel dropped its registration (or stopped beating, when the
  caller passes ``max_age``) is filtered out of the listing.
- :class:`NameServerClient` — a blocking client used by kernels to
  register themselves and resolve peers.

Both are deliberately boring: discovery is on the control path only
(once per peer pair), so clarity wins over throughput here.  The data
path uses :mod:`repro.net.framing` instead.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "NameServer",
    "NameServerClient",
    "NameServerError",
    "DuplicateRegistration",
    "UnknownKernel",
    "run_name_server",
]


class NameServerError(RuntimeError):
    """Protocol or transport failure talking to the name server."""


class DuplicateRegistration(NameServerError):
    """The kernel name is already registered by a live connection."""


class UnknownKernel(NameServerError):
    """Lookup for a name no live kernel has registered."""


class NameServer:
    """Threaded JSON-lines directory service.

    Construct with either a pre-bound listening socket (so the parent
    process can pick the port before forking the server) or a
    ``(host, port)`` pair; ``port=0`` asks the OS for a free port.
    """

    def __init__(self, sock: Optional[socket.socket] = None,
                 host: str = "127.0.0.1", port: int = 0):
        if sock is None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, port))
            sock.listen(64)
        self._sock = sock
        self.address: Tuple[str, int] = sock.getsockname()[:2]
        self._lock = threading.Lock()
        #: name -> (host, port, owning connection, metadata dict)
        self._registry: Dict[str, Tuple[str, int, socket.socket, dict]] = {}
        #: name -> monotonic time of the last heartbeat (seeded at
        #: registration so a kernel is never "expired" before it could
        #: have beaten once)
        self._beats: Dict[str, float] = {}
        #: name -> last reported queue depth (piggybacked on heartbeats;
        #: dropped with the lease).  Feeds adaptive remap planning and
        #: the autoscaler.
        self._loads: Dict[str, int] = {}
        #: service name -> (provider kernel, in_types, out_types, owning
        #: connection); listed only while the provider's lease is live
        self._services: Dict[
            str, Tuple[str, List[str], List[str], socket.socket]] = {}
        self._accept_thread: Optional[threading.Thread] = None
        self._closed = False

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "NameServer":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dps-nameserver", daemon=True)
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept clients on the calling thread until the socket closes."""
        self._accept_loop()

    def stop(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "NameServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- server internals ------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # listener closed
            threading.Thread(target=self._serve_client, args=(conn,),
                             name="dps-nameserver-client",
                             daemon=True).start()

    def _serve_client(self, conn: socket.socket) -> None:
        try:
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                    reply = self._handle(conn, request)
                except Exception as exc:
                    reply = {"ok": False, "error": f"bad request: {exc}"}
                conn.sendall((json.dumps(reply) + "\n").encode("utf-8"))
        except OSError:
            pass
        finally:
            self._drop_owner(conn)
            try:
                reader.close()
            except (OSError, UnboundLocalError):
                pass
            try:
                conn.close()
            except OSError:
                pass

    def _handle(self, conn: socket.socket, request: dict) -> dict:
        op = request.get("op")
        if op == "register":
            name = request["name"]
            host, port = request["host"], int(request["port"])
            meta = request.get("meta") or {}
            with self._lock:
                existing = self._registry.get(name)
                if existing is not None and existing[2] is not conn:
                    return {"ok": False, "error": "duplicate",
                            "detail": f"kernel {name!r} is already registered"}
                self._registry[name] = (host, port, conn, dict(meta))
                self._beats[name] = time.monotonic()
            return {"ok": True}
        if op == "heartbeat":
            name = request["name"]
            load = request.get("load")
            with self._lock:
                if name not in self._registry:
                    return {"ok": False, "error": "unknown",
                            "detail": f"no kernel registered as {name!r}"}
                self._beats[name] = time.monotonic()
                if load is not None:
                    self._loads[name] = int(load)
            return {"ok": True}
        if op == "loads":
            # Kernels only: service clients also hold registrations (for
            # reply routing) but are not cluster members — they must not
            # appear in depth polls or be mistaken for joining kernels.
            with self._lock:
                loads = {name: self._loads.get(name, 0)
                         for name, entry in self._registry.items()
                         if entry[3].get("kernel")}
            return {"ok": True, "loads": loads}
        if op == "expired":
            max_age = float(request["max_age"])
            now = time.monotonic()
            with self._lock:
                expired = [{"name": name, "age": now - beat}
                           for name, beat in self._beats.items()
                           if now - beat > max_age]
            return {"ok": True, "expired": expired}
        if op == "lookup":
            name = request["name"]
            with self._lock:
                entry = self._registry.get(name)
            if entry is None:
                return {"ok": False, "error": "unknown",
                        "detail": f"no kernel registered as {name!r}"}
            return {"ok": True, "host": entry[0], "port": entry[1],
                    "meta": entry[3]}
        if op == "list":
            with self._lock:
                names = sorted(self._registry)
            return {"ok": True, "names": names}
        if op == "register_service":
            service = request["service"]
            provider = request["provider"]
            in_types = [str(t) for t in request.get("in_types") or []]
            out_types = [str(t) for t in request.get("out_types") or []]
            with self._lock:
                existing = self._services.get(service)
                if existing is not None and existing[3] is not conn:
                    return {"ok": False, "error": "duplicate",
                            "detail": f"service {service!r} is already "
                                      f"registered by {existing[0]!r}"}
                self._services[service] = (provider, in_types, out_types,
                                           conn)
            return {"ok": True}
        if op == "unregister_service":
            service = request["service"]
            with self._lock:
                existing = self._services.get(service)
                if existing is not None and existing[3] is conn:
                    del self._services[service]
            return {"ok": True}
        if op == "services":
            max_age = request.get("max_age")
            now = time.monotonic()
            with self._lock:
                entries = []
                for service in sorted(self._services):
                    provider, in_types, out_types, _ = \
                        self._services[service]
                    beat = self._beats.get(provider)
                    if beat is None:
                        continue  # provider lease is gone
                    if max_age is not None and now - beat > float(max_age):
                        continue  # provider stopped beating
                    entries.append({"service": service,
                                    "provider": provider,
                                    "in_types": in_types,
                                    "out_types": out_types})
            return {"ok": True, "services": entries}
        if op == "ping":
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _drop_owner(self, conn: socket.socket) -> None:
        with self._lock:
            dead = [name for name, entry in self._registry.items()
                    if entry[2] is conn]
            for name in dead:
                del self._registry[name]
                self._beats.pop(name, None)
                self._loads.pop(name, None)
            dead_services = [name for name, entry in self._services.items()
                             if entry[3] is conn]
            for name in dead_services:
                del self._services[name]


def run_name_server(sock: socket.socket) -> None:
    """Child-process main: serve the directory on a pre-bound socket."""
    NameServer(sock=sock).serve_forever()


class NameServerClient:
    """Blocking JSON-lines client; one per kernel, thread-safe.

    The client's TCP connection *is* the lease on every name it
    registers — keep it open for the kernel's lifetime.
    """

    def __init__(self, address: Tuple[str, int], timeout: float = 10.0):
        self.address = address
        self._sock = socket.create_connection(address, timeout=timeout)
        self._reader = self._sock.makefile("r", encoding="utf-8", newline="\n")
        self._lock = threading.Lock()

    def _call(self, request: dict) -> dict:
        with self._lock:
            try:
                self._sock.sendall(
                    (json.dumps(request) + "\n").encode("utf-8"))
                line = self._reader.readline()
            except OSError as exc:
                raise NameServerError(f"name server unreachable: {exc}") from exc
        if not line:
            raise NameServerError("name server closed the connection")
        reply = json.loads(line)
        if reply.get("ok"):
            return reply
        error = reply.get("error", "")
        detail = reply.get("detail", error)
        if error == "duplicate":
            raise DuplicateRegistration(detail)
        if error == "unknown":
            raise UnknownKernel(detail)
        raise NameServerError(detail or "name server refused the request")

    def register(self, name: str, host: str, port: int,
                 meta: Optional[dict] = None) -> None:
        """Register *name*; *meta* carries JSON-safe kernel attributes
        (e.g. the host fingerprint used for shared-memory co-location)."""
        request = {"op": "register", "name": name, "host": host, "port": port}
        if meta:
            request["meta"] = meta
        self._call(request)

    def lookup(self, name: str) -> Tuple[str, int]:
        reply = self._call({"op": "lookup", "name": name})
        return reply["host"], int(reply["port"])

    def lookup_entry(self, name: str) -> Tuple[str, int, dict]:
        """Like :meth:`lookup` but also returns the registration metadata."""
        reply = self._call({"op": "lookup", "name": name})
        return reply["host"], int(reply["port"]), reply.get("meta") or {}

    def list(self) -> List[str]:
        return list(self._call({"op": "list"})["names"])

    def register_service(self, service: str, provider: str,
                         in_types: Tuple[str, ...] = (),
                         out_types: Tuple[str, ...] = ()) -> None:
        """Publish a service record: *service* is the public graph name,
        *provider* the kernel that accepts its calls, and the type lists
        the wire-format token-type names of its entry/exit operations."""
        self._call({"op": "register_service", "service": service,
                    "provider": provider, "in_types": list(in_types),
                    "out_types": list(out_types)})

    def unregister_service(self, service: str) -> None:
        """Withdraw a service record this connection registered."""
        self._call({"op": "unregister_service", "service": service})

    def services(self, max_age: Optional[float] = None) -> List[dict]:
        """Registered services whose provider lease is live; each entry is
        ``{"service", "provider", "in_types", "out_types"}``.  With
        *max_age*, providers that have not beaten for that many seconds
        are filtered out as well."""
        request: dict = {"op": "services"}
        if max_age is not None:
            request["max_age"] = float(max_age)
        return list(self._call(request)["services"])

    def heartbeat(self, name: str, load: Optional[int] = None) -> None:
        """Renew *name*'s liveness lease, optionally reporting its
        current queue depth (total pending tokens across local thread
        inboxes) for adaptive routing/scaling decisions."""
        request: dict = {"op": "heartbeat", "name": name}
        if load is not None:
            request["load"] = int(load)
        self._call(request)

    def loads(self) -> Dict[str, int]:
        """Last heartbeat-reported queue depth per registered kernel
        (``0`` for kernels that never reported one)."""
        return dict(self._call({"op": "loads"})["loads"])

    def expired(self, max_age: float) -> List[dict]:
        """Registered kernels that have not beaten for *max_age* seconds;
        each entry is ``{"name": ..., "age": seconds_since_last_beat}``."""
        return list(self._call({"op": "expired",
                                "max_age": max_age})["expired"])

    def ping(self) -> bool:
        self._call({"op": "ping"})
        return True

    def close(self) -> None:
        # The makefile() reader holds a reference on the fd — close it
        # too, or the server never sees EOF and the lease never expires.
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "NameServerClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
