"""Kernel-to-kernel message protocol (paper §4).

Every message is one :mod:`~repro.net.framing` frame whose payload starts
with a one-byte message kind.  Data messages carry the DPS control
structures — target graph node, instance, activation id, group-frame
stack — followed by the token in the standard wire format, appended as
borrowed :func:`~repro.serial.wire.encode_segments` segments so the
payload is never copied on the sending side.

Control messages mirror the feedback machinery of the single-process
engines: merge→split acknowledgements (flow control and load balancing),
split→merge group totals, depth-0 results routed back to the activation's
origin kernel, scatter-call results/totals, failure propagation and the
shutdown barrier.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..core.graph import Flowgraph
from ..runtime.base import DataEnvelope, GroupFrame
from ..serial.registry import TokenRegistry, registry
from ..serial.token import Token
from ..serial.wire import Segment, WireError, decode, encode_segments

__all__ = [
    "MSG_HELLO",
    "MSG_DATA",
    "MSG_ACK",
    "MSG_GROUP_TOTAL",
    "MSG_RESULT",
    "MSG_SCATTER_RESULT",
    "MSG_SCATTER_TOTAL",
    "MSG_FAILURE",
    "MSG_SHUTDOWN",
    "MSG_TRACE_FLUSH",
    "MSG_TRACE",
    "MSG_ACK_BATCH",
    "MSG_SHM_ATTACH",
    "MSG_SHM",
    "MSG_KERNEL_DOWN",
    "MSG_REMAP",
    "MSG_REMAP_OK",
    "MSG_REPLAY",
    "MSG_REPLAY_DONE",
    "MSG_SVC_OPEN",
    "MSG_SVC_OPEN_OK",
    "MSG_SVC_CALL",
    "MSG_SVC_REPLY",
    "MSG_SVC_BUSY",
    "MSG_SERVICE_BUSY",
    "MSG_SVC_ERROR",
    "MSG_SVC_CLOSE",
    "MSG_MEMBER",
    "MSG_THREAD_STATE",
    "MSG_CREDIT",
    "MSG_CREDIT_BATCH",
    "AckWire",
    "encode_hello",
    "encode_data",
    "encode_ack",
    "encode_ack_batch",
    "encode_credit_grant",
    "encode_group_total",
    "encode_result",
    "encode_scatter_total",
    "encode_failure",
    "encode_shutdown",
    "encode_trace_flush",
    "encode_trace",
    "encode_shm_attach",
    "encode_shm_data",
    "encode_kernel_down",
    "encode_remap",
    "encode_remap_ok",
    "encode_replay",
    "encode_replay_done",
    "encode_svc_open",
    "encode_svc_open_ok",
    "encode_svc_call",
    "encode_svc_reply",
    "encode_svc_busy",
    "encode_svc_error",
    "encode_svc_close",
    "encode_member",
    "encode_thread_state",
    "decode_message",
    "RemoteFailure",
]

MSG_HELLO = 0
MSG_DATA = 1
MSG_ACK = 2
MSG_GROUP_TOTAL = 3
MSG_RESULT = 4
MSG_SCATTER_RESULT = 5
MSG_SCATTER_TOTAL = 6
MSG_FAILURE = 7
MSG_SHUTDOWN = 8
#: Console → kernel: ship your trace buffer and metrics snapshot back to
#: the named kernel (part of the observability merge barrier).
MSG_TRACE_FLUSH = 9
#: Kernel → console: one kernel's buffered trace events and metrics.
MSG_TRACE = 10
#: Aggregated merge→split acknowledgements: runs of identical acks with
#: a repeat count, flushed per origin kernel on a short window.
MSG_ACK_BATCH = 11
#: Sender → receiver: a shared-memory arena (name, size) now carries this
#: connection's large payloads; sent once, before the first MSG_SHM.
MSG_SHM_ATTACH = 12
#: A message whose large segments live in the peer's shm arena; the frame
#: carries only small inline segments and (offset, length) descriptors.
MSG_SHM = 13
#: Worker → console: a peer connection broke; ``(kernel_name, reason)``.
MSG_KERNEL_DOWN = 14
#: Console → survivors: apply new placements for the dead kernel's
#: collections; ``(epoch, {collection_name: placements}, dead_kernel)``.
MSG_REMAP = 15
#: Survivor → console: remap *epoch* applied; ``(kernel_name, epoch)``.
MSG_REMAP_OK = 16
#: Console → survivors: re-deliver your journaled un-acked tokens
#: (sent only after every survivor acknowledged the remap).
MSG_REPLAY = 17
#: Survivor → console: ``(kernel_name, epoch, replayed_count)``.
MSG_REPLAY_DONE = 18
#: Client → service console: open (or re-open, idempotently) a session;
#: ``(client_name, requested_window)`` — ``0`` requests the server default.
MSG_SVC_OPEN = 19
#: Service console → client: session granted;
#: ``(granted_window, session_id)``.
MSG_SVC_OPEN_OK = 20
#: Client → service console: invoke a named service graph;
#: ``(client_name, request_id, service_name, token)``.  Request ids are
#: client-scoped: replies correlate out of order by id.
MSG_SVC_CALL = 21
#: Service console → client: graph-call result; ``(request_id, token)``.
MSG_SVC_REPLY = 22
#: Service console → client: the request was shed by admission control;
#: ``(request_id, reason)``.  Retry later *under a new request id*.
MSG_SVC_BUSY = 23
#: Service console → client: the graph call failed remotely;
#: ``(request_id, exception)``.
MSG_SVC_ERROR = 24
#: Client → service console: close the session; ``client_name``.
MSG_SVC_CLOSE = 25
#: Console → all kernels: voluntary membership change (join/retire).
#: ``(epoch, old_map, new_map, joined, retired)`` — *both* full placement
#: maps travel, so every kernel (including a CLI joiner whose locally
#: rebuilt graphs may carry stale placements) can compute which thread
#: instances it loses and gains without trusting local state.
MSG_MEMBER = 26
#: Kernel → kernel: a migrating thread instance's live state;
#: ``(collection_name, index, epoch, thread)``.  ``thread`` is the
#: evicted :class:`~repro.core.threads.DpsThread` object (plain user
#: state, engine-reference-free by the DPS execution model) or ``None``
#: when the instance was never activated on the donor.
MSG_THREAD_STATE = 27

#: Spec alias for :data:`MSG_SVC_BUSY` (the admission-control shed
#: message of the resident service tier).
MSG_SERVICE_BUSY = MSG_SVC_BUSY

#: Spec aliases for the streaming credit protocol: credit grants ARE
#: acks.  A merge/stream consumer granting one credit back to the
#: opener's :class:`~repro.core.flowcontrol.CreditWindow` sends exactly
#: the wire ack for the consumed token — ``(group_id, index)`` keyed so
#: the opener's replay journal prunes per-token — and a batched grant of
#: N credits is an ack-batch run with ``count=N``.  Reusing the ack kind
#: keeps the grant on the aggregated/piggybacked ack fast path (flushed
#: ahead of data, batched under ``TransportPolicy.ack_batch``) with zero
#: extra wire kinds or header bytes.
MSG_CREDIT = MSG_ACK
MSG_CREDIT_BATCH = MSG_ACK_BATCH

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

_FRAME_FIELDS = struct.Struct("<QIIII")  # group_id, index, opener, opener_instance, routed_instance
_ACK_RUN = struct.Struct("<QIIIII")  # group_id, index, opener, opener_instance, routed_instance, count
_SHM_PART = struct.Struct("<QI")   # arena block offset, payload length
_DATA_IDS = struct.Struct("<IIQ")  # node_id, instance, ctx_id
_ACK_IDS = struct.Struct("<IIIQI")  # opener, opener_instance, routed_instance, group_id, index
_U64_PAIR = struct.Struct("<QQ")   # (group_id|ctx_id, total)
_U32_PAIR = struct.Struct("<II")   # (epoch, count)


class RemoteFailure(RuntimeError):
    """Stand-in for a remote exception that could not be unpickled."""


@dataclass(frozen=True)
class AckWire:
    """Decoded merge→split acknowledgement.

    ``(group_id, index)`` identify the acked token's own group frame so
    the split side can prune its replay journal; ``0, 0`` when the
    sending side predates the journal (group ids are never 0).
    """

    graph_name: str
    opener: int
    opener_instance: int
    routed_instance: int
    group_id: int = 0
    index: int = 0


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------

def _pack_str(out: bytearray, s: str) -> None:
    raw = s.encode("utf-8")
    out += _U16.pack(len(raw))
    out += raw


def encode_hello(kernel_name: str) -> List[Segment]:
    head = bytearray(_U8.pack(MSG_HELLO))
    _pack_str(head, kernel_name)
    return [head]


def encode_data(env: DataEnvelope, reg: TokenRegistry = registry) -> List[Segment]:
    """Serialize a :class:`DataEnvelope` header + token, zero-copy payload."""
    head = bytearray(_U8.pack(MSG_DATA))
    _pack_str(head, env.graph.name)
    head += _DATA_IDS.pack(env.node_id, env.instance, env.ctx_id)
    _pack_str(head, env.ctx_origin or "")
    head += _U16.pack(len(env.frames))
    for f in env.frames:
        head += _FRAME_FIELDS.pack(f.group_id, f.index, f.opener,
                                   f.opener_instance, f.routed_instance)
        _pack_str(head, f.origin_node)
    return [head, *encode_segments(env.token, reg)]


def encode_ack(graph_name: str, opener: int, opener_instance: int,
               routed_instance: int, group_id: int = 0,
               index: int = 0) -> List[Segment]:
    head = bytearray(_U8.pack(MSG_ACK))
    _pack_str(head, graph_name)
    head += _U32.pack(opener)
    head += _U32.pack(opener_instance)
    head += _U32.pack(routed_instance)
    head += _U64.pack(group_id)
    head += _U32.pack(index)
    return [head]


def encode_ack_batch(runs: List[Tuple["AckWire", int]]) -> List[Segment]:
    """Aggregated acks: ``(ack, count)`` runs in one control frame."""
    head = bytearray(_U8.pack(MSG_ACK_BATCH))
    head += _U16.pack(len(runs))
    for ack, count in runs:
        _pack_str(head, ack.graph_name)
        head += _ACK_RUN.pack(ack.group_id, ack.index, ack.opener,
                              ack.opener_instance, ack.routed_instance,
                              count)
    return [head]


def encode_credit_grant(ack: "AckWire", credits: int = 1) -> List[Segment]:
    """Encode a credit grant for the streaming flow-control protocol.

    Credits ride the ack path (:data:`MSG_CREDIT` *is* :data:`MSG_ACK`):
    a single credit is the plain wire ack for the consumed token, and a
    multi-credit grant is a one-run ack batch with ``count=credits``.
    Decoders therefore need no streaming-specific handling — the
    existing ack dispatch applies the grant to the opener's window.
    """
    if credits < 1:
        raise ValueError("a credit grant must carry >= 1 credits")
    if credits == 1:
        return encode_ack(ack.graph_name, ack.opener, ack.opener_instance,
                          ack.routed_instance, ack.group_id, ack.index)
    return encode_ack_batch([(ack, credits)])


def encode_shm_attach(arena_name: str, size: int) -> List[Segment]:
    head = bytearray(_U8.pack(MSG_SHM_ATTACH))
    _pack_str(head, arena_name)
    head += _U64.pack(size)
    return [head]


def _segment_nbytes(seg: Segment) -> int:
    return seg.nbytes if isinstance(seg, memoryview) else len(seg)


def encode_shm_data(parts: List[tuple]) -> List[Segment]:
    """A message whose large segments were parked in the shm arena.

    *parts* reproduce the original segment list in order; each entry is
    ``("inline", segment)`` for a small segment that still travels over
    TCP, or ``("shm", block_offset, length)`` for a payload placed in the
    arena.  Inline segments are emitted as separate scatter-gather
    segments, so the zero-copy send path is preserved.
    """
    segs: List[Segment] = []
    cur = bytearray(_U8.pack(MSG_SHM))
    cur += _U16.pack(len(parts))
    for part in parts:
        if part[0] == "shm":
            cur += _U8.pack(1)
            cur += _SHM_PART.pack(part[1], part[2])
        else:
            seg = part[1]
            cur += _U8.pack(0)
            cur += _U32.pack(_segment_nbytes(seg))
            segs.append(cur)
            segs.append(seg)
            cur = bytearray()
    if cur:
        segs.append(cur)
    return segs


def encode_group_total(group_id: int, total: int) -> List[Segment]:
    head = bytearray(_U8.pack(MSG_GROUP_TOTAL))
    head += _U64.pack(group_id)
    head += _U64.pack(total)
    return [head]


def encode_result(kind: int, ctx_id: int, token: Token,
                  reg: TokenRegistry = registry) -> List[Segment]:
    """A depth-0 result (MSG_RESULT) or scatter output (MSG_SCATTER_RESULT)."""
    if kind not in (MSG_RESULT, MSG_SCATTER_RESULT):
        raise ValueError(f"not a result message kind: {kind}")
    head = bytearray(_U8.pack(kind))
    head += _U64.pack(ctx_id)
    return [head, *encode_segments(token, reg)]


def encode_scatter_total(ctx_id: int, total: int) -> List[Segment]:
    head = bytearray(_U8.pack(MSG_SCATTER_TOTAL))
    head += _U64.pack(ctx_id)
    head += _U64.pack(total)
    return [head]


def encode_failure(exc: BaseException) -> List[Segment]:
    head = bytearray(_U8.pack(MSG_FAILURE))
    try:
        raw = pickle.dumps(exc)
        pickle.loads(raw)  # ensure the receiving side can rebuild it
    except Exception:
        raw = pickle.dumps(RemoteFailure(f"{type(exc).__name__}: {exc}"))
    head += raw
    return [head]


def encode_shutdown() -> List[Segment]:
    return [bytearray(_U8.pack(MSG_SHUTDOWN))]


def encode_trace_flush(reply_to: str) -> List[Segment]:
    """Ask a kernel to ship its trace buffer to kernel *reply_to*."""
    head = bytearray(_U8.pack(MSG_TRACE_FLUSH))
    _pack_str(head, reply_to)
    return [head]


def encode_trace(kernel_name: str, events: List[tuple],
                 metrics_snapshot: Dict[str, Any]) -> List[Segment]:
    """One kernel's trace buffer: ``(time, kind, fields)`` tuples plus a
    :meth:`~repro.trace.MetricsRegistry.snapshot` dict.  Event fields are
    plain scalars/strings, so pickle suffices (this is a once-per-run
    control message, not a data-path one)."""
    head = bytearray(_U8.pack(MSG_TRACE))
    head += pickle.dumps((kernel_name, events, metrics_snapshot))
    return [head]


def encode_kernel_down(kernel_name: str, reason: str) -> List[Segment]:
    """Worker → console: the connection to *kernel_name* broke."""
    head = bytearray(_U8.pack(MSG_KERNEL_DOWN))
    _pack_str(head, kernel_name)
    _pack_str(head, reason)
    return [head]


def encode_remap(epoch: int, mapping: Dict[str, List[str]],
                 dead: str) -> List[Segment]:
    """Console → survivors: new placements after *dead* failed.

    Placement lists are short strings — pickle suffices (once-per-failure
    control message, like MSG_TRACE)."""
    head = bytearray(_U8.pack(MSG_REMAP))
    head += pickle.dumps((epoch, mapping, dead))
    return [head]


def encode_remap_ok(kernel_name: str, epoch: int) -> List[Segment]:
    head = bytearray(_U8.pack(MSG_REMAP_OK))
    _pack_str(head, kernel_name)
    head += _U32.pack(epoch)
    return [head]


def encode_replay(epoch: int) -> List[Segment]:
    head = bytearray(_U8.pack(MSG_REPLAY))
    head += _U32.pack(epoch)
    return [head]


def encode_replay_done(kernel_name: str, epoch: int,
                       count: int) -> List[Segment]:
    head = bytearray(_U8.pack(MSG_REPLAY_DONE))
    _pack_str(head, kernel_name)
    head += _U32.pack(epoch)
    head += _U32.pack(count)
    return [head]


def encode_member(epoch: int, old_map: Dict[str, List[str]],
                  new_map: Dict[str, List[str]], joined: List[str],
                  retired: List[str]) -> List[Segment]:
    """Console → kernels: a voluntary membership rebalance.

    Placement maps are short string lists — pickle suffices
    (once-per-rebalance control message, like MSG_REMAP)."""
    head = bytearray(_U8.pack(MSG_MEMBER))
    head += pickle.dumps((epoch, old_map, new_map,
                          list(joined), list(retired)))
    return [head]


def encode_thread_state(collection_name: str, index: int, epoch: int,
                        thread) -> List[Segment]:
    """Donor kernel → new owner: one migrating thread instance's state."""
    head = bytearray(_U8.pack(MSG_THREAD_STATE))
    head += pickle.dumps((collection_name, index, epoch, thread))
    return [head]


def encode_svc_open(client_name: str, window: int = 0) -> List[Segment]:
    """Open a service session; ``window=0`` asks for the server default."""
    head = bytearray(_U8.pack(MSG_SVC_OPEN))
    _pack_str(head, client_name)
    head += _U32.pack(window)
    return [head]


def encode_svc_open_ok(granted: int, session_id: int) -> List[Segment]:
    head = bytearray(_U8.pack(MSG_SVC_OPEN_OK))
    head += _U32.pack(granted)
    head += _U64.pack(session_id)
    return [head]


def encode_svc_call(client_name: str, request_id: int, service: str,
                    token: Token,
                    reg: TokenRegistry = registry) -> List[Segment]:
    """One graph call: correlation header + token, zero-copy payload."""
    head = bytearray(_U8.pack(MSG_SVC_CALL))
    _pack_str(head, client_name)
    head += _U64.pack(request_id)
    _pack_str(head, service)
    return [head, *encode_segments(token, reg)]


def encode_svc_reply(request_id: int, token: Token,
                     reg: TokenRegistry = registry) -> List[Segment]:
    head = bytearray(_U8.pack(MSG_SVC_REPLY))
    head += _U64.pack(request_id)
    return [head, *encode_segments(token, reg)]


def encode_svc_busy(request_id: int, reason: str) -> List[Segment]:
    head = bytearray(_U8.pack(MSG_SVC_BUSY))
    head += _U64.pack(request_id)
    _pack_str(head, reason)
    return [head]


def encode_svc_error(request_id: int, exc: BaseException) -> List[Segment]:
    head = bytearray(_U8.pack(MSG_SVC_ERROR))
    head += _U64.pack(request_id)
    try:
        raw = pickle.dumps(exc)
        pickle.loads(raw)  # ensure the receiving side can rebuild it
    except Exception:
        raw = pickle.dumps(RemoteFailure(f"{type(exc).__name__}: {exc}"))
    head += raw
    return [head]


def encode_svc_close(client_name: str) -> List[Segment]:
    head = bytearray(_U8.pack(MSG_SVC_CLOSE))
    _pack_str(head, client_name)
    return [head]


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------

def _unpack_str(view: memoryview, offset: int) -> Tuple[str, int]:
    (n,) = _U16.unpack_from(view, offset)
    offset += 2
    return str(view[offset:offset + n], "utf-8"), offset + n


def decode_message(payload: "bytes | bytearray | memoryview",
                   graphs: Dict[str, Flowgraph],
                   reg: TokenRegistry = registry) -> Tuple[int, Any]:
    """Decode one message payload into ``(kind, value)``.

    ``value`` depends on the kind: a :class:`DataEnvelope` (token borrowed
    from *payload* — the caller must own the buffer), an :class:`AckWire`,
    ``(group_id, total)``, ``(ctx_id, token)``, ``(ctx_id, total)``, an
    exception instance, a kernel name (hello), or ``None`` (shutdown).
    """
    view = memoryview(payload)
    if view.nbytes < 1:
        raise WireError("empty protocol message")
    kind = view[0]
    offset = 1
    if kind == MSG_DATA:
        graph_name, offset = _unpack_str(view, offset)
        graph = graphs.get(graph_name)
        if graph is None:
            raise WireError(f"data message for unknown graph {graph_name!r}")
        node_id, instance, ctx_id = _DATA_IDS.unpack_from(view, offset)
        offset += _DATA_IDS.size
        ctx_origin, offset = _unpack_str(view, offset)
        (n_frames,) = _U16.unpack_from(view, offset)
        offset += 2
        frames = []
        for _ in range(n_frames):
            group_id, index, opener, opener_instance, routed_instance = \
                _FRAME_FIELDS.unpack_from(view, offset)
            offset += _FRAME_FIELDS.size
            origin_node, offset = _unpack_str(view, offset)
            frames.append(GroupFrame(group_id, index, opener,
                                     opener_instance, origin_node,
                                     routed_instance))
        token = decode(view[offset:], reg, copy=False)
        return MSG_DATA, DataEnvelope(token, graph, node_id, instance,
                                      ctx_id, tuple(frames),
                                      ctx_origin=ctx_origin or None)
    if kind == MSG_ACK:
        graph_name, offset = _unpack_str(view, offset)
        opener, opener_instance, routed_instance, group_id, index = \
            _ACK_IDS.unpack_from(view, offset)
        return MSG_ACK, AckWire(graph_name, opener, opener_instance,
                                routed_instance, group_id, index)
    if kind == MSG_ACK_BATCH:
        (n_runs,) = _U16.unpack_from(view, offset)
        offset += 2
        runs = []
        for _ in range(n_runs):
            graph_name, offset = _unpack_str(view, offset)
            group_id, index, opener, opener_instance, routed_instance, \
                count = _ACK_RUN.unpack_from(view, offset)
            offset += _ACK_RUN.size
            runs.append((AckWire(graph_name, opener, opener_instance,
                                 routed_instance, group_id, index), count))
        return MSG_ACK_BATCH, runs
    if kind == MSG_SHM_ATTACH:
        arena_name, offset = _unpack_str(view, offset)
        (size,) = _U64.unpack_from(view, offset)
        return MSG_SHM_ATTACH, (arena_name, size)
    if kind == MSG_SHM:
        (n_parts,) = _U16.unpack_from(view, offset)
        offset += 2
        parts = []
        for _ in range(n_parts):
            tag = view[offset]
            offset += 1
            if tag == 1:
                block, length = _SHM_PART.unpack_from(view, offset)
                offset += _SHM_PART.size
                parts.append(("shm", block, length))
            elif tag == 0:
                (length,) = _U32.unpack_from(view, offset)
                offset += 4
                parts.append(("inline", view[offset:offset + length]))
                offset += length
            else:
                raise WireError(f"unknown shm part tag {tag}")
        return MSG_SHM, parts
    if kind == MSG_GROUP_TOTAL:
        group_id, total = _U64_PAIR.unpack_from(view, offset)
        return MSG_GROUP_TOTAL, (group_id, total)
    if kind in (MSG_RESULT, MSG_SCATTER_RESULT):
        (ctx_id,) = _U64.unpack_from(view, offset)
        token = decode(view[offset + 8:], reg, copy=False)
        return kind, (ctx_id, token)
    if kind == MSG_SCATTER_TOTAL:
        ctx_id, total = _U64_PAIR.unpack_from(view, offset)
        return MSG_SCATTER_TOTAL, (ctx_id, total)
    if kind == MSG_FAILURE:
        try:
            exc = pickle.loads(bytes(view[offset:]))
        except Exception as err:
            exc = RemoteFailure(f"undecodable remote failure: {err}")
        if not isinstance(exc, BaseException):
            exc = RemoteFailure(f"remote failure payload {exc!r}")
        return MSG_FAILURE, exc
    if kind == MSG_SHUTDOWN:
        return MSG_SHUTDOWN, None
    if kind == MSG_HELLO:
        name, _ = _unpack_str(view, offset)
        return MSG_HELLO, name
    if kind == MSG_TRACE_FLUSH:
        reply_to, _ = _unpack_str(view, offset)
        return MSG_TRACE_FLUSH, reply_to
    if kind == MSG_TRACE:
        try:
            kernel_name, events, metrics_snapshot = pickle.loads(
                bytes(view[offset:]))
        except Exception as err:
            raise WireError(f"undecodable trace message: {err}") from None
        return MSG_TRACE, (kernel_name, events, metrics_snapshot)
    if kind == MSG_KERNEL_DOWN:
        name, offset = _unpack_str(view, offset)
        reason, _ = _unpack_str(view, offset)
        return MSG_KERNEL_DOWN, (name, reason)
    if kind == MSG_REMAP:
        try:
            epoch, mapping, dead = pickle.loads(bytes(view[offset:]))
        except Exception as err:
            raise WireError(f"undecodable remap message: {err}") from None
        return MSG_REMAP, (epoch, mapping, dead)
    if kind == MSG_REMAP_OK:
        name, offset = _unpack_str(view, offset)
        (epoch,) = _U32.unpack_from(view, offset)
        return MSG_REMAP_OK, (name, epoch)
    if kind == MSG_REPLAY:
        (epoch,) = _U32.unpack_from(view, offset)
        return MSG_REPLAY, epoch
    if kind == MSG_REPLAY_DONE:
        name, offset = _unpack_str(view, offset)
        epoch, count = _U32_PAIR.unpack_from(view, offset)
        return MSG_REPLAY_DONE, (name, epoch, count)
    if kind == MSG_SVC_OPEN:
        name, offset = _unpack_str(view, offset)
        (window,) = _U32.unpack_from(view, offset)
        return MSG_SVC_OPEN, (name, window)
    if kind == MSG_SVC_OPEN_OK:
        (granted,) = _U32.unpack_from(view, offset)
        (session_id,) = _U64.unpack_from(view, offset + 4)
        return MSG_SVC_OPEN_OK, (granted, session_id)
    if kind == MSG_SVC_CALL:
        name, offset = _unpack_str(view, offset)
        (request_id,) = _U64.unpack_from(view, offset)
        offset += 8
        service, offset = _unpack_str(view, offset)
        token = decode(view[offset:], reg, copy=False)
        return MSG_SVC_CALL, (name, request_id, service, token)
    if kind == MSG_SVC_REPLY:
        (request_id,) = _U64.unpack_from(view, offset)
        token = decode(view[offset + 8:], reg, copy=False)
        return MSG_SVC_REPLY, (request_id, token)
    if kind == MSG_SVC_BUSY:
        (request_id,) = _U64.unpack_from(view, offset)
        reason, _ = _unpack_str(view, offset + 8)
        return MSG_SVC_BUSY, (request_id, reason)
    if kind == MSG_SVC_ERROR:
        (request_id,) = _U64.unpack_from(view, offset)
        try:
            exc = pickle.loads(bytes(view[offset + 8:]))
        except Exception as err:
            exc = RemoteFailure(f"undecodable remote failure: {err}")
        if not isinstance(exc, BaseException):
            exc = RemoteFailure(f"remote failure payload {exc!r}")
        return MSG_SVC_ERROR, (request_id, exc)
    if kind == MSG_SVC_CLOSE:
        name, _ = _unpack_str(view, offset)
        return MSG_SVC_CLOSE, name
    if kind == MSG_MEMBER:
        try:
            epoch, old_map, new_map, joined, retired = pickle.loads(
                bytes(view[offset:]))
        except Exception as err:
            raise WireError(f"undecodable member message: {err}") from None
        return MSG_MEMBER, (epoch, old_map, new_map, joined, retired)
    if kind == MSG_THREAD_STATE:
        try:
            collection_name, index, epoch, thread = pickle.loads(
                bytes(view[offset:]))
        except Exception as err:
            raise WireError(
                f"undecodable thread-state message: {err}") from None
        return MSG_THREAD_STATE, (collection_name, index, epoch, thread)
    raise WireError(f"unknown protocol message kind {kind}")
