"""Real distributed runtime substrate: framing, discovery, kernels.

This package carries DPS tokens between OS processes over TCP: framed
scatter-gather socket I/O (:mod:`~repro.net.framing`), the kernel-to-
kernel message protocol (:mod:`~repro.net.protocol`), name-server
discovery with lazy connection establishment
(:mod:`~repro.net.nameserver`, :mod:`~repro.net.connections`) and the
distributed kernel itself (:mod:`~repro.net.kernel`).
"""

from .connections import (
    ConnectionPool,
    DialError,
    PeerConnection,
    TransportPolicy,
    dial_kernel,
)
from .eventloop import (
    EventLoopPeer,
    IOLoop,
    VectoredSender,
    eventloop_supported,
)
from .framing import (
    MAX_SENDMSG_SEGMENTS,
    FrameReader,
    recv_message,
    send_message,
    send_messages,
)
from .kernel import (
    CONSOLE_KERNEL,
    KERNEL_ORDINAL_SHIFT,
    DistributedKernel,
    run_kernel_process,
)
from .nameserver import (
    DuplicateRegistration,
    NameServer,
    NameServerClient,
    NameServerError,
    UnknownKernel,
    run_name_server,
)
from .recovery import (
    FaultPolicy,
    ReplayDedup,
    TokenJournal,
    apply_remap,
    plan_remap,
)
from .shm import ShmReceiver, ShmSender, host_fingerprint

__all__ = [
    "CONSOLE_KERNEL",
    "ConnectionPool",
    "DialError",
    "DistributedKernel",
    "DuplicateRegistration",
    "EventLoopPeer",
    "FaultPolicy",
    "FrameReader",
    "IOLoop",
    "KERNEL_ORDINAL_SHIFT",
    "MAX_SENDMSG_SEGMENTS",
    "NameServer",
    "NameServerClient",
    "NameServerError",
    "PeerConnection",
    "ReplayDedup",
    "ShmReceiver",
    "ShmSender",
    "TokenJournal",
    "TransportPolicy",
    "UnknownKernel",
    "VectoredSender",
    "apply_remap",
    "dial_kernel",
    "eventloop_supported",
    "host_fingerprint",
    "plan_remap",
    "recv_message",
    "run_kernel_process",
    "run_name_server",
    "send_message",
    "send_messages",
]
