"""Real distributed runtime substrate: framing, discovery, kernels.

This package carries DPS tokens between OS processes over TCP: framed
scatter-gather socket I/O (:mod:`~repro.net.framing`), the kernel-to-
kernel message protocol (:mod:`~repro.net.protocol`), name-server
discovery with lazy connection establishment
(:mod:`~repro.net.nameserver`, :mod:`~repro.net.connections`) and the
distributed kernel itself (:mod:`~repro.net.kernel`).
"""

from .connections import ConnectionPool, DialError, PeerConnection, dial_kernel
from .framing import MAX_SENDMSG_SEGMENTS, recv_message, send_message
from .kernel import (
    CONSOLE_KERNEL,
    KERNEL_ORDINAL_SHIFT,
    DistributedKernel,
    run_kernel_process,
)
from .nameserver import (
    DuplicateRegistration,
    NameServer,
    NameServerClient,
    NameServerError,
    UnknownKernel,
    run_name_server,
)

__all__ = [
    "CONSOLE_KERNEL",
    "ConnectionPool",
    "DialError",
    "DistributedKernel",
    "DuplicateRegistration",
    "KERNEL_ORDINAL_SHIFT",
    "MAX_SENDMSG_SEGMENTS",
    "NameServer",
    "NameServerClient",
    "NameServerError",
    "PeerConnection",
    "UnknownKernel",
    "dial_kernel",
    "recv_message",
    "run_kernel_process",
    "run_name_server",
    "send_message",
]
