"""Single-threaded I/O core for the distributed kernel (ISSUE 6).

PR 4's transport batched the syscalls but kept the PR 2 threading shape:
one writer thread per peer plus one reader thread per inbound
connection.  On an N-kernel cluster that is O(N) blocking threads per
process fighting the GIL for work that is almost never CPU-bound —
every token pays queue handoffs, lock wakeups and context switches
before a single byte moves.  This module replaces all of them with one
:class:`IOLoop` per kernel: a single thread owning a
``selectors.DefaultSelector`` (epoll on Linux, kqueue on BSD/macOS)
that multiplexes *every* peer socket, both directions.

- **Writes** drain per-peer outboxes with non-blocking vectored
  ``sendmsg`` (:class:`VectoredSender`), resuming partial writes with
  sliced ``memoryview``\\ s and registering for ``EVENT_WRITE`` only
  while the kernel socket buffer is full — natural backpressure that is
  *observable*: a blocked peer's queued frames show up in the
  ``outbox_depth`` gauge, and every short write increments
  ``partial_writes``.
- **Reads** are readiness-driven: accepted connections register for
  ``EVENT_READ`` and feed :meth:`~repro.net.framing.FrameReader.recv_ready`
  batches straight into the kernel's dispatch path.
- **Wakeups** use a ``socketpair`` self-pipe: posting a token from any
  engine thread is a lock-free ``deque.append`` plus (at most) one
  one-byte ``send`` — :meth:`IOLoop.call` never blocks and never takes
  a lock, so ``ConnectionPool.send`` stays safe under the engine lock.
  ``io_loop_wakeups`` counts loop iterations.

The per-peer writer threads and per-connection reader threads are gone
in this mode (accept/heartbeat/resend/ack-flush threads remain); the
threads flavour survives behind ``TransportPolicy(io_mode="threads")``
for A/B benchmarking and for platforms where
:func:`eventloop_supported` fails.  Wire bytes are bit-identical across
modes — an eventloop sender interoperates with a threads receiver and
vice versa.
"""

from __future__ import annotations

import heapq
import selectors
import socket
import sys
import threading
import time
import traceback
from collections import deque
from typing import Callable, List, Optional

from ..serial.wire import Segment, frame
from .framing import MAX_SENDMSG_SEGMENTS, _as_byte_views
from .nameserver import NameServerError
from .protocol import MSG_DATA
from .shm import ShmSender, host_fingerprint

__all__ = ["IOLoop", "VectoredSender", "EventLoopPeer",
           "eventloop_supported"]

_WAKE = b"\x00"

#: Consecutive single-frame window expiries before the adaptive flush
#: window turns itself off (the delay bought no coalescing, only
#: latency).  It re-arms as soon as a pump observes a multi-frame
#: backlog — pipelined traffic where holding the flush pays off.
_WINDOW_MISS_LIMIT = 3


class _Timer:
    """Cancelable one-shot deadline scheduled on the loop thread."""

    __slots__ = ("deadline", "fn", "cancelled")

    def __init__(self, deadline: float, fn: Callable[[], None]):
        self.deadline = deadline
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


def eventloop_supported() -> bool:
    """Whether this platform can run the selectors I/O core.

    ``DefaultSelector`` and ``socketpair`` exist on every platform
    CPython supports, but both can fail in exotic sandboxes (no epoll
    device, no AF_UNIX); the threads transport remains as the fallback.
    """
    try:
        sel = selectors.DefaultSelector()
        sel.close()
        r, w = socket.socketpair()
        r.close()
        w.close()
        return True
    except (AttributeError, OSError):  # pragma: no cover - exotic platforms
        return False


class VectoredSender:
    """Non-blocking vectored frame writer with partial-write resumption.

    Framed messages are queued whole (:meth:`push`); :meth:`pump` then
    flushes them through as few ``sendmsg`` calls as the socket buffer
    allows — chunked under ``MAX_SENDMSG_SEGMENTS`` and a byte budget
    when *coalescing*, exactly one frame per syscall otherwise (the A/B
    baseline).  A short write (``EAGAIN`` or fewer bytes accepted than
    offered) leaves the remainder queued with the partially-sent view
    sliced, so the next :meth:`pump` resumes mid-frame; frame bytes on
    the wire are identical to the blocking
    :func:`~repro.net.framing.send_messages` path.

    Single-consumer: only the loop thread pumps.  The class itself owns
    no socket, which keeps it drivable by property tests with a mock
    whose ``sendmsg`` accepts arbitrary byte counts.
    """

    def __init__(self, *, coalescing: bool = True,
                 max_batch_bytes: int = 1 << 20,
                 max_batch_segments: int = MAX_SENDMSG_SEGMENTS):
        self._coalescing = coalescing
        self._max_batch_bytes = max_batch_bytes
        self._max_batch_segments = max_batch_segments
        #: queued frames, each a list of byte views (header first)
        self._frames: deque = deque()
        self._pending_bytes = 0
        # per-drain-episode accounting for the frames_per_syscall series
        self._episode_frames = 0
        self._episode_syscalls = 0
        #: total short writes (EAGAIN or partial sendmsg) observed
        self.partial_writes = 0

    @property
    def pending_frames(self) -> int:
        return len(self._frames)

    @property
    def pending_bytes(self) -> int:
        return self._pending_bytes

    def push(self, message: List[Segment]) -> None:
        """Queue one message (an unframed segment list) for sending."""
        # Empty views carry no wire bytes but would wedge the
        # consume-by-sent-bytes walk below; drop them up front.
        views = [v for v in _as_byte_views(frame(message)) if v.nbytes]
        self._frames.append(views)
        self._pending_bytes += sum(v.nbytes for v in views)
        self._episode_frames += 1

    def pump(self, sock) -> bool:
        """Write queued frames until drained or the socket would block.

        Returns ``True`` when everything queued has hit the socket.
        Propagates ``OSError`` other than ``EAGAIN``/``EINTR`` (broken
        pipe, reset) to the caller.
        """
        frames = self._frames
        while frames:
            iov: List[memoryview] = []
            nbytes = 0
            if self._coalescing:
                for views in frames:
                    take = len(views)
                    for i, v in enumerate(views):
                        if iov and (
                                len(iov) >= self._max_batch_segments
                                or nbytes + v.nbytes > self._max_batch_bytes):
                            take = i
                            break
                        iov.append(v)
                        nbytes += v.nbytes
                    if take < len(views):
                        break
            else:
                iov = list(frames[0])
                nbytes = sum(v.nbytes for v in iov)
            try:
                sent = sock.sendmsg(iov)
            except InterruptedError:  # pragma: no cover - signal race
                continue
            except BlockingIOError:
                self.partial_writes += 1
                return False
            self._episode_syscalls += 1
            self._pending_bytes -= sent
            if sent < nbytes:
                self.partial_writes += 1
            while sent and frames:
                views = frames[0]
                head = views[0]
                if sent >= head.nbytes:
                    sent -= head.nbytes
                    views.pop(0)
                    if not views:
                        frames.popleft()
                else:
                    views[0] = head[sent:]
                    sent = 0
        return True

    def take_episode(self) -> "tuple[int, int]":
        """``(frames, syscalls)`` since the last fully-drained flush."""
        episode = (self._episode_frames, self._episode_syscalls)
        self._episode_frames = self._episode_syscalls = 0
        return episode

    def clear(self) -> int:
        """Drop everything queued; returns the number of frames dropped."""
        dropped = len(self._frames)
        self._frames.clear()
        self._pending_bytes = 0
        self._episode_frames = self._episode_syscalls = 0
        return dropped


class IOLoop:
    """One ``selectors`` event loop owning all of a kernel's socket I/O.

    Everything that touches the selector or per-peer write state runs on
    the loop thread; other threads hand work over with :meth:`call`
    (lock-free append + self-pipe wakeup).  Readers are registered with
    :meth:`add_connection`; writers are :class:`EventLoopPeer` objects
    that register themselves for ``EVENT_WRITE`` only while blocked.
    """

    def __init__(self, name: str, metrics=None):
        self.name = name
        self._metrics = metrics
        self._selector = selectors.DefaultSelector()
        r, w = socket.socketpair()
        r.setblocking(False)
        w.setblocking(False)
        self._wake_r, self._wake_w = r, w
        self._selector.register(r, selectors.EVENT_READ, self._on_wake)
        self._pending: deque = deque()
        self._timers: list = []  # heap of (deadline, seq, _Timer)
        self._timer_seq = 0
        # key -> fn, run once at the end of the current loop pass (the
        # flush-coalescing point: see at_pass_end)
        self._pass_end: dict = {}
        self._wake_pending = False
        self._in_select = False
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name=f"dps-io:{name}", daemon=True)

    # -- cross-thread interface ----------------------------------------
    def start(self) -> "IOLoop":
        self._thread.start()
        return self

    @property
    def closed(self) -> bool:
        return self._closed

    def on_loop_thread(self) -> bool:
        return threading.current_thread() is self._thread

    def call(self, fn: Callable[[], None]) -> None:
        """Run *fn* on the loop thread, soon; never blocks.

        After :meth:`close` the loop thread is gone, so *fn* runs inline
        (teardown-only; callbacks must tolerate a closed selector).
        """
        if self._closed:
            fn()
            return
        self._pending.append(fn)
        # The byte is only needed to interrupt a blocking select(); when
        # the loop is mid-pass it re-checks the queue before blocking
        # (the zero-timeout guard in _run), so skipping the syscall here
        # is safe — and avoids a GIL drop per call() under bursts.
        if self._in_select and not self._wake_pending:
            self._wake_pending = True
            try:
                self._wake_w.send(_WAKE)
            except (BlockingIOError, OSError):
                pass  # a wakeup is already queued, or we are closing

    def close(self) -> None:
        """Stop the loop and close every socket it still owns."""
        if self._closed:
            return
        self._closed = True
        try:
            self._wake_w.send(_WAKE)
        except (BlockingIOError, OSError):
            pass
        if self._thread.is_alive() and not self.on_loop_thread():
            self._thread.join(timeout=2.0)
        for key in list(self._selector.get_map().values()):
            if key.fileobj is self._wake_r:
                continue
            try:
                key.fileobj.close()
            except OSError:
                pass
        self._selector.close()
        self._wake_r.close()
        self._wake_w.close()

    # -- reading side ---------------------------------------------------
    def add_connection(self, sock: socket.socket, *, recv_bytes: int,
                       on_frames: Callable[[list], None],
                       on_close: Callable[[Optional[Exception]], None],
                       ) -> None:
        """Adopt an accepted connection: readiness-driven frame reads.

        *on_frames* receives each non-empty batch of complete frames (on
        the loop thread); *on_close* fires exactly once with ``None`` on
        clean EOF or the exception that broke the connection.  The
        socket is closed by the loop in either case.
        """
        from .framing import FrameReader  # late: framing imports nothing back
        sock.setblocking(False)
        reader = FrameReader(sock, recv_bytes=recv_bytes)
        done = [False]

        def finish(exc: Optional[Exception]) -> None:
            if done[0]:
                return
            done[0] = True
            try:
                self._selector.unregister(sock)
            except (KeyError, ValueError, OSError):
                pass
            try:
                sock.close()
            except OSError:
                pass
            on_close(exc)

        def on_readable(_mask: int) -> None:
            if done[0]:
                return
            try:
                frames, eof = reader.recv_ready()
            except Exception as exc:
                finish(exc)
                return
            if frames:
                try:
                    on_frames(frames)
                except Exception as exc:
                    finish(exc)
                    return
            if eof:
                finish(None)

        def register() -> None:
            if self._closed:
                try:
                    sock.close()
                except OSError:
                    pass
                return
            self._selector.register(sock, selectors.EVENT_READ, on_readable)

        self.call(register)

    # -- pass-end hooks (loop thread only) -------------------------------
    def at_pass_end(self, key, fn: Callable[[], None]) -> None:
        """Run *fn* at the loop's next quiescent point.

        The flush-coalescing point: hooks are carried across
        back-to-back zero-timeout passes (a burst of queued work) and
        run only when the loop is about to block in ``select`` — so
        frames produced anywhere in the burst (including by worker
        threads that got the GIL during its syscalls) share one flush
        instead of one syscall per wakeup.  Keyed registration dedups —
        a second ``at_pass_end`` for the same *key* replaces the first.
        Hooks always run before the loop blocks, so nothing registered
        here ever strands.  Loop-thread only.
        """
        self._pass_end[key] = fn

    # -- timers (loop thread only) --------------------------------------
    def call_later(self, delay: float, fn: Callable[[], None]) -> _Timer:
        """Schedule *fn* on the loop thread after *delay* seconds.

        Loop-thread only (no locking on the timer heap); returns a
        handle whose :meth:`_Timer.cancel` unschedules it.  Fired and
        cancelled timers leave the heap lazily.
        """
        timer = _Timer(time.monotonic() + delay, fn)
        self._timer_seq += 1
        heapq.heappush(self._timers, (timer.deadline, self._timer_seq,
                                      timer))
        return timer

    def _next_timeout(self) -> Optional[float]:
        """Select timeout honouring queued work and the timer heap."""
        timers = self._timers
        while timers and timers[0][2].cancelled:
            heapq.heappop(timers)
        if self._pending:
            return 0
        if not timers:
            return None
        return max(0.0, timers[0][0] - time.monotonic())

    def _fire_timers(self) -> None:
        timers = self._timers
        if not timers:
            return
        now = time.monotonic()
        while timers and (timers[0][2].cancelled
                          or timers[0][0] <= now):
            _, _, timer = heapq.heappop(timers)
            if timer.cancelled:
                continue
            try:
                timer.fn()
            except Exception:
                traceback.print_exc(file=sys.stderr)

    # -- loop internals -------------------------------------------------
    def _on_wake(self, _mask: int) -> None:
        try:
            self._wake_r.recv(4096)
        except (BlockingIOError, OSError):
            pass
        # Clear AFTER the recv: the flag may only read "wake queued"
        # while a byte is (about to be) in the pipe.  Clearing it at the
        # top of the loop pass instead loses wakeups: a byte sent
        # mid-pass gets consumed by this same recv while the flag stays
        # set, and the next call() then skips its wake with the pipe
        # empty — the loop blocks in select() over queued work.
        self._wake_pending = False

    def _run(self) -> None:
        selector = self._selector
        pending = self._pending
        counter = None
        if self._metrics is not None:
            counter = self._metrics.counter("io_loop_wakeups")
        while True:
            # Never block while work is queued: a call() racing the
            # flag/byte handoff above can leave pending non-empty with
            # no wake byte in flight for at most one pass.  _in_select
            # must go up BEFORE the timeout check: a producer that reads
            # it as False appended earlier, so this check sees its work;
            # one that reads True sends a (possibly spurious) wake byte.
            self._in_select = True
            timeout = self._next_timeout()
            if timeout != 0 and self._pass_end:
                # About to block: quiescence is the flush point.  While
                # back-to-back zero-timeout passes chain (a burst), the
                # registered flushes keep carrying forward and frames
                # keep accumulating; they run only once the burst ends,
                # right before the loop would go idle.
                self._in_select = False
                hooks = list(self._pass_end.values())
                self._pass_end.clear()
                for fn in hooks:
                    try:
                        fn()
                    except Exception:
                        traceback.print_exc(file=sys.stderr)
                self._in_select = True
                timeout = self._next_timeout()
            events = selector.select(timeout)
            self._in_select = False
            if self._closed:
                return
            if counter is not None:
                counter.inc()
            for key, mask in events:
                try:
                    key.data(mask)
                except Exception:
                    traceback.print_exc(file=sys.stderr)
            while pending:
                try:
                    fn = pending.popleft()
                except IndexError:  # pragma: no cover - producer race
                    break
                try:
                    fn()
                except Exception:
                    traceback.print_exc(file=sys.stderr)
            self._fire_timers()


class EventLoopPeer:
    """Send-only channel to one peer kernel, drained by the
    :class:`IOLoop` instead of a dedicated writer thread.

    Drop-in for :class:`~repro.net.connections.PeerConnection`:
    :meth:`send` is a lock-free queue append from any thread; the peer
    is dialed lazily (a transient ``dps-dial`` thread owns the blocking
    resolve/connect/backoff, then hands the non-blocking socket to the
    loop), the shm lane attaches exactly as in threads mode, transport
    errors are reported once through *on_error*, and messages queued
    after a failure are counted as ``token_drops``.  Per-peer FIFO
    order is preserved end to end: the outbox is drained in order onto
    the :class:`VectoredSender`, which never reorders frames.
    """

    def __init__(self, peer_name: str, ns, *, loop: IOLoop,
                 hello_from: str,
                 on_error: Callable[[str, Exception], None],
                 dial_deadline: float = 15.0,
                 transport=None,
                 metrics=None,
                 trace: Optional[Callable] = None):
        from .connections import TransportPolicy  # late: avoid cycle
        self.peer_name = peer_name
        self._ns = ns
        self._loop = loop
        self._hello_from = hello_from
        self._on_error = on_error
        self._dial_deadline = dial_deadline
        self._transport = transport if transport is not None \
            else TransportPolicy()
        self._metrics = metrics
        self._trace = trace
        self._outbox: deque = deque()
        self._scheduled = False
        self._sender = VectoredSender(
            coalescing=self._transport.coalescing,
            max_batch_bytes=self._transport.max_batch_bytes)
        self._partial_writes_reported = 0
        self._sock: Optional[socket.socket] = None
        self._shm: Optional[ShmSender] = None
        self._dialing = False
        self._failed = False
        self._closing = False
        self._write_registered = False
        self._flushed = threading.Event()
        # Adaptive Nagle-style flush window (loop-thread state only;
        # urgency is classified per-frame during the outbox drain).
        self._flush_delay = max(0, self._transport.flush_delay_us) / 1e6
        self._window_active = self._flush_delay > 0
        self._window_misses = 0
        self._flush_timer = None

    # -- any-thread interface ------------------------------------------
    def send(self, segments: List[Segment]) -> None:
        # Deliberately no caller-thread "inline write when idle" fast
        # path: measurement showed it serializes the post-sendmsg
        # reschedule penalty into the producing thread and defeats
        # outbox coalescing under pipelined load (one frame per syscall
        # instead of a batch per loop pass).  The append is lock-free
        # and the wake byte is elided whenever the loop is mid-pass, so
        # the handoff is already a deque.append most of the time.
        self._outbox.append(segments)
        if not self._scheduled:
            self._scheduled = True
            self._loop.call(self._pump)

    def close(self, flush_timeout: float = 5.0) -> None:
        """Flush what the loop can within *flush_timeout*, then close."""
        self._loop.call(self._begin_close)
        self._flushed.wait(timeout=flush_timeout)
        self._loop.call(self._teardown)

    # -- loop-thread internals -----------------------------------------
    def _pump(self) -> None:
        self._scheduled = False
        if self._failed or (self._closing and self._flushed.is_set()):
            self._count_drops(self._drop_queued())
            return
        if self._sock is None:
            if not self._dialing:
                self._dialing = True
                threading.Thread(
                    target=self._dial,
                    name=f"dps-dial:{self.peer_name}", daemon=True).start()
            return  # _attach re-pumps once the dial lands
        urgent = self._drain_outbox()
        if self._write_registered:
            # Socket buffer full: frames queue in the sender and
            # _on_writable resumes the flush; a timer adds nothing.
            return
        sender = self._sender
        if (urgent or self._closing or not self._window_active
                or sender.pending_bytes >= self._transport.max_batch_bytes
                or sender.pending_frames >= self._transport.max_batch_frames):
            if sender.pending_frames >= 2 and self._flush_delay > 0:
                # A multi-frame backlog means pipelined traffic: the
                # window pays for itself again, so (re-)arm it for
                # subsequent passes.
                self._window_active = True
                self._window_misses = 0
            self._cancel_window()
            if (sender.pending_bytes >= self._transport.max_batch_bytes
                    or sender.pending_frames
                    >= self._transport.max_batch_frames):
                # Budget hit: flush inline to bound queued memory.
                self._flush()
            else:
                # Flush at the loop's next quiescent point, not inline:
                # the rest of the burst (reads handing tokens to worker
                # threads, later pumps, timers) runs first, and frames
                # those produce ride the same vectored write.  Latency
                # cost is the burst remainder — the loop was busy anyway
                # — against one syscall per wakeup; this is where the
                # event loop recovers the natural backpressure batching
                # a blocking writer thread gets for free.
                self._loop.at_pass_end(self, self._flush)
        elif self._flush_timer is None and sender.pending_frames:
            self._flush_timer = self._loop.call_later(
                self._flush_delay, self._window_fire)
            if self._metrics is not None:
                # Held frames are visible backlog while the window is
                # open (the loop-health series the window adapts on).
                self._metrics.gauge("outbox_depth").set(
                    sender.pending_frames)

    def _drain_outbox(self) -> bool:
        """Move queued messages into the sender; report frame urgency.

        Returns ``True`` when any drained frame is *not* delay-eligible
        (its protocol kind byte is not ``MSG_DATA``): control traffic —
        acks, heartbeat-class frames, totals, results, barriers — must
        bypass the flush window, and FIFO ordering means everything
        queued before it flushes along with it.
        """
        sender = self._sender
        outbox = self._outbox
        shm = self._shm
        urgent = False
        while outbox:
            message = outbox.popleft()
            head = message[0]
            if not len(head) or head[0] != MSG_DATA:
                urgent = True
            if shm is not None:
                message = shm.rewrite(message)
            sender.push(message)
        return urgent

    def _flush(self) -> None:
        """Push the sender's queued frames to the socket (loop thread)."""
        if self._failed or self._sock is None or self._write_registered:
            return  # a pass-end hook may outlive a same-pass fail/detach
        try:
            drained = self._sender.pump(self._sock)
        except OSError as exc:
            self._fail(exc)
            return
        if drained:
            self._set_write_interest(False)
            self._note_drained()
        else:
            self._set_write_interest(True)
            self._report_partials()
            if self._metrics is not None:
                # Write-blocked: surface the backlog as backpressure so
                # queue-depth dashboards see the stalled peer.
                self._metrics.gauge("outbox_depth").set(
                    self._sender.pending_frames + len(self._outbox))

    def _window_fire(self) -> None:
        """The flush window elapsed: flush whatever accumulated."""
        self._flush_timer = None
        if self._failed or self._sock is None or self._write_registered:
            return
        self._drain_outbox()  # late arrivals ride the same flush
        frames = self._sender.pending_frames
        if not frames:
            return
        if frames <= 1:
            # The delay bought no coalescing; after a few such misses
            # stop paying latency until a multi-frame backlog re-arms.
            self._window_misses += 1
            if self._window_misses >= _WINDOW_MISS_LIMIT:
                self._window_active = False
        else:
            self._window_misses = 0
        if self._metrics is not None:
            self._metrics.counter("flush_window_hits").inc()
        if self._trace is not None:
            self._trace("flush_window", peer=self.peer_name, frames=frames)
        self._flush()

    def _cancel_window(self) -> None:
        timer = self._flush_timer
        if timer is not None:
            timer.cancel()
            self._flush_timer = None

    def _note_drained(self) -> None:
        """Post-flush bookkeeping once everything queued hit the socket."""
        self._report_partials()
        frames, syscalls = self._sender.take_episode()
        if self._metrics is not None:
            if frames:
                self._metrics.histogram("frames_per_syscall").observe(
                    frames / max(1, syscalls))
            self._metrics.gauge("outbox_depth").set(0)
        if self._closing:
            self._flushed.set()

    def _on_writable(self, _mask: int) -> None:
        # Resuming a blocked write: the window never delays here — the
        # socket buffer just drained and frames are already overdue.
        self._drain_outbox()
        self._set_write_interest(False)
        self._flush()

    def _set_write_interest(self, on: bool) -> None:
        if on == self._write_registered or self._sock is None:
            return
        self._write_registered = on
        try:
            if on:
                self._loop._selector.register(
                    self._sock, selectors.EVENT_WRITE, self._on_writable)
            else:
                self._loop._selector.unregister(self._sock)
        except (KeyError, ValueError, OSError):  # pragma: no cover - teardown
            self._write_registered = False

    def _dial(self) -> None:
        """Transient thread: blocking resolve + connect + handshakes."""
        from .connections import DialError, dial_kernel
        from .framing import send_message
        from .protocol import encode_shm_attach
        try:
            sock, meta = dial_kernel(
                self._ns, self.peer_name, hello_from=self._hello_from,
                deadline=self._dial_deadline, return_meta=True)
        except (OSError, NameServerError, DialError) as exc:
            # Bind now: `exc` is unbound once the except block exits.
            self._loop.call(lambda err=exc: self._fail(err))
            return
        shm: Optional[ShmSender] = None
        policy = self._transport
        if (policy.shm_enabled
                and meta.get("fingerprint") == host_fingerprint()):
            try:
                shm = ShmSender(policy.shm_arena_bytes, policy.shm_threshold,
                                metrics=self._metrics)
            except (OSError, ValueError):
                shm = None  # no shm on this platform; TCP lane still works
            if shm is not None:
                try:
                    # Must precede the first descriptor frame; the socket
                    # is still blocking here and nothing else has been
                    # queued on it, so FIFO is trivially preserved.
                    send_message(sock, encode_shm_attach(shm.name, shm.size))
                except OSError as exc:
                    shm.destroy()
                    sock.close()
                    self._loop.call(lambda err=exc: self._fail(err))
                    return
        sock.setblocking(False)

        def attach() -> None:
            if self._failed or self._loop.closed:
                try:
                    sock.close()
                except OSError:
                    pass
                if shm is not None:
                    shm.destroy()
                return
            self._sock = sock
            self._shm = shm
            self._pump()

        self._loop.call(attach)

    def _fail(self, exc: Exception) -> None:
        if self._failed:
            return
        self._failed = True
        self._cancel_window()
        self._count_drops(self._drop_queued())
        if self._shm is not None:
            # The peer is gone: blocks it never consumed would pin the
            # FIFO ring tail forever.  Safe here — the loop thread is
            # the arena's only producer and no more descriptors follow.
            self._shm.reclaim_all()
        self._set_write_interest(False)
        self._flushed.set()
        if not self._closing:
            self._on_error(self.peer_name, exc)

    def _begin_close(self) -> None:
        self._closing = True
        if self._failed or (self._sock is not None and not self._outbox
                            and not self._sender.pending_frames):
            self._flushed.set()
            return
        if self._sock is None and not self._dialing:
            # Never dialed and nothing forced it: nothing to flush.
            self._flushed.set()
            return
        self._pump()  # flush sets _flushed on drain (or _fail does)

    def _teardown(self) -> None:
        self._closing = True
        self._failed = True  # late sends become counted drops
        self._cancel_window()
        self._set_write_interest(False)
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        shm, self._shm = self._shm, None
        if shm is not None:
            shm.destroy()

    # -- bookkeeping ----------------------------------------------------
    def _drop_queued(self) -> int:
        dropped = len(self._outbox)
        self._outbox.clear()
        dropped += self._sender.clear()
        return dropped

    def _report_partials(self) -> None:
        total = self._sender.partial_writes
        delta = total - self._partial_writes_reported
        if delta and self._metrics is not None:
            self._metrics.counter("partial_writes").inc(delta)
        self._partial_writes_reported = total

    def _count_drops(self, n: int) -> None:
        if not n:
            return
        if self._metrics is not None:
            self._metrics.counter("token_drops").inc(n)
        if self._trace is not None:
            self._trace("token_drop", peer=self.peer_name, dropped=n)
