"""Shared-memory payload lane for co-located kernels.

``MultiprocessEngine`` forks every kernel onto the local machine, yet
PR 2's transport round-trips each payload through the TCP stack — two
copies through kernel socket buffers that a same-host peer does not
need.  This module gives each peer connection an optional
``multiprocessing.shared_memory`` arena: token segments above a size
threshold are copied once into the arena and only a small
``(offset, length)`` descriptor travels over TCP (``MSG_SHM``);
everything below the threshold stays inline on the existing zero-copy
path.

Co-location is detected at HELLO time by comparing
:func:`host_fingerprint` values published through the name server, so a
genuinely distributed deployment silently keeps the plain TCP lane.

Reclamation is a one-byte state flag per block, no reverse messages:
the sender writes ``1`` before publishing a block, the receiver clears
it to ``0`` after copying the payload out, and the sender lazily
reclaims cleared blocks (in FIFO ring order) the next time it
allocates.  The TCP descriptor frame orders the sender's arena writes
before the receiver's reads (a syscall on each side), and a stale flag
read can only *delay* reclamation, never corrupt a live block.  When
the arena is full the sender simply falls back to inline TCP for that
segment — the lane is an optimization, never a correctness dependency.
"""

from __future__ import annotations

import socket as _socket
from collections import deque
from multiprocessing import resource_tracker, shared_memory
from typing import Deque, List, Optional, Tuple

from ..serial.wire import Segment
from . import protocol as P

__all__ = ["host_fingerprint", "ShmSender", "ShmReceiver"]

#: One state byte per block: 1 = in flight, 0 = consumed (reclaimable).
_BLOCK_HEADER = 1

_fingerprint: Optional[str] = None


def host_fingerprint() -> str:
    """An identifier equal exactly for processes on the same machine.

    Hostname alone is forgeable across containers; the kernel boot id is
    unique per boot, so the pair distinguishes same-name hosts while
    matching every process of one machine.
    """
    global _fingerprint
    if _fingerprint is None:
        try:
            with open("/proc/sys/kernel/random/boot_id") as fh:
                boot_id = fh.read().strip()
        except OSError:
            boot_id = ""
        _fingerprint = f"{_socket.gethostname()}:{boot_id}"
    return _fingerprint


def _as_byte_view(seg: Segment) -> memoryview:
    view = seg if type(seg) is memoryview else memoryview(seg)
    if view.format != "B" or view.ndim != 1:
        view = view.cast("B")
    return view


class ShmSender:
    """The sending half of one connection's shared-memory arena.

    A ring ("bump") allocator over one ``SharedMemory`` block.  Blocks
    are allocated at the head, outstanding blocks form a FIFO (the
    receiver consumes frames in order), and consumed blocks are
    reclaimed from the tail before each allocation.  Single-producer
    (the connection's writer thread) / single-consumer (the peer's
    reader thread), so no locking is needed.
    """

    def __init__(self, arena_bytes: int, threshold: int, metrics=None):
        self._shm = shared_memory.SharedMemory(create=True, size=arena_bytes)
        self.name = self._shm.name
        self.size = self._shm.size  # may be page-rounded above arena_bytes
        self.threshold = threshold
        self._buf = self._shm.buf
        self._head = 0
        #: (block_offset, total_len) of in-flight blocks, ring order.
        self._pending: Deque[Tuple[int, int]] = deque()
        self._metrics = metrics

    # -- allocation ------------------------------------------------------
    def _reclaim(self) -> None:
        buf = self._buf
        pending = self._pending
        while pending and buf[pending[0][0]] == 0:
            pending.popleft()

    def _fit(self, total: int) -> Optional[int]:
        """Offset for a *total*-byte block, or ``None`` when full.

        Strict inequalities keep the head from ever catching the tail
        while blocks are outstanding, so "full" and "empty" stay
        distinguishable without a fill counter.
        """
        if not self._pending:
            self._head = 0
            return 0 if total <= self.size else None
        tail = self._pending[0][0]
        head = self._head
        if head >= tail:
            if self.size - head >= total:
                return head
            if tail > total:
                return 0  # wrap; the gap at the end is reclaimed with the tail
            return None
        if tail - head > total:
            return head
        return None

    def place(self, view: memoryview) -> Optional[Tuple[int, int]]:
        """Copy *view* into the arena; ``(block_offset, nbytes)`` or ``None``."""
        n = view.nbytes
        total = n + _BLOCK_HEADER
        self._reclaim()
        offset = self._fit(total)
        if offset is None:
            return None
        buf = self._buf
        buf[offset] = 1
        buf[offset + 1:offset + 1 + n] = view
        self._pending.append((offset, total))
        self._head = offset + total
        return offset, n

    # -- message rewriting -----------------------------------------------
    def rewrite(self, segments: List[Segment]) -> List[Segment]:
        """Divert a message's large segments through the arena.

        Returns *segments* unchanged when nothing crosses the threshold
        (or the arena is full), else an ``MSG_SHM`` descriptor message
        wrapping the original payload.
        """
        parts: Optional[List[tuple]] = None
        for i, seg in enumerate(segments):
            view = _as_byte_view(seg)
            if view.nbytes >= self.threshold:
                placed = self.place(view)
                if placed is not None:
                    if parts is None:
                        parts = [("inline", s) for s in segments[:i]]
                    parts.append(("shm",) + placed)
                    if self._metrics is not None:
                        self._metrics.counter("shm_bytes_bypassed").inc(
                            placed[1])
                    continue
            if parts is not None:
                parts.append(("inline", seg))
        if parts is None:
            return segments
        return P.encode_shm_data(parts)

    # -- lifecycle -------------------------------------------------------
    def reclaim_all(self) -> None:
        """Forcibly reclaim every in-flight block.

        A peer that dies mid-``MSG_SHM`` handoff never clears the state
        flags of the blocks whose descriptors it did not consume, and
        because reclamation is FIFO from the ring tail, one such block
        pins *everything* allocated after it — the arena silently shrinks
        to nothing and every send falls back to inline TCP.  Call only
        when the peer connection is torn down (the peer must never read
        the arena again).
        """
        buf = self._buf
        for offset, _ in self._pending:
            buf[offset] = 0
        self._pending.clear()
        self._head = 0

    def destroy(self) -> None:
        """Close and unlink the arena (creator owns the name)."""
        try:
            self._buf.release()
        except BufferError:  # pragma: no cover - no sub-views are retained
            pass
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass
        try:
            # When sender and receiver share one resource tracker (fork
            # start method: the engine's own mp primitives start it
            # before the kernels fork), the receiver's attach-time
            # unregister also removed *this* registration; re-register so
            # unlink()'s unregister always finds an entry.  Registering
            # twice is a no-op, so the separate-tracker case is unharmed.
            resource_tracker.register(self._shm._name, "shared_memory")
            self._shm.unlink()
        except (OSError, FileNotFoundError):
            pass


class ShmReceiver:
    """The receiving half: attach to a peer's arena and copy blocks out."""

    def __init__(self, name: str, size: int):
        self._shm = shared_memory.SharedMemory(name=name)
        # Python 3.11 registers *attachments* with the resource tracker
        # too (no track= parameter until 3.13), so this process would try
        # to unlink the arena at exit and race the creator; undo the
        # spurious registration — cleanup belongs to the creator alone.
        try:
            resource_tracker.unregister(self._shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
        if self._shm.size < size:
            raise ValueError(
                f"shm arena {name!r} smaller than announced: "
                f"{self._shm.size} < {size}")
        self._buf = self._shm.buf

    def reassemble(self, parts: List[tuple]) -> bytearray:
        """Rebuild the original message payload from an MSG_SHM part list.

        Arena blocks are released (state flag cleared) as soon as their
        bytes are copied out; the returned ``bytearray`` is owned by the
        caller and safe for ``decode(copy=False)``.
        """
        total = 0
        for part in parts:
            total += part[2] if part[0] == "shm" else part[1].nbytes
        out = bytearray(total)
        dest = memoryview(out)
        buf = self._buf
        pos = 0
        for part in parts:
            if part[0] == "shm":
                _, block, n = part
                dest[pos:pos + n] = buf[block + 1:block + 1 + n]
                buf[block] = 0  # hand the block back to the sender
            else:
                seg = part[1]
                n = seg.nbytes
                dest[pos:pos + n] = seg
            pos += n
        return out

    def close(self) -> None:
        try:
            self._buf.release()
        except BufferError:  # pragma: no cover
            pass
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass
