"""Distributed DPS kernel: the ThreadedEngine dispatch loop over TCP.

One :class:`DistributedKernel` runs in each OS process and hosts the DPS
threads whose collections are mapped onto its node name (kernel names
*are* logical node names, matching the paper's "kernels are named so that
applications do not need to be aware of the machines they are running
on").  It reuses the entire controller/operation dispatch machinery of
:class:`~repro.runtime.threaded_engine.ThreadedEngine` and overrides only
the points where the single-process engine assumes shared memory:

====================  =================================================
hook                  distributed behaviour
====================  =================================================
``_deliver``          envelopes for instances on another kernel are
                      protocol-encoded and queued on that peer's lazy
                      TCP connection (scatter-gather, zero-copy)
``_send_ack``         merge→split acks travel to the group frame's
                      ``origin_node`` kernel
``_announce_group_total``  totals are broadcast to every kernel hosting
                      instances of the matching merge collection
``_final_result`` / ``_scatter_result`` / ``_announce_scatter_total``
                      depth-0 results and scatter outputs are routed to
                      the activation's ``ctx_origin`` kernel
``_propagate_failure``  local worker exceptions are broadcast so every
                      kernel's callers fail fast instead of hanging
====================  =================================================

Activation and group ids are made globally unique by starting each
kernel's counters at ``ordinal << 40`` — two kernels can never mint the
same id, which matters because group ids key merge state everywhere.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.flowcontrol import FlowControlPolicy, StreamPolicy
from ..core.graph import Flowgraph
from ..core.routing import RoutingPolicy
from ..runtime.controller import KernelFailure
from ..runtime.threaded_engine import ThreadedEngine, _Body
from ..runtime.base import DataEnvelope
from ..serial import fastpath
from ..serial.token import Token
from ..serial.wire import WireError
from .connections import ConnectionPool, TransportPolicy
from .eventloop import IOLoop, eventloop_supported
from .framing import FrameReader
from .nameserver import NameServerClient
from .recovery import FaultPolicy, ReplayDedup, TokenJournal, apply_remap, \
    plan_rebalance, plan_remap
from .recovery import _unique_collections
from .shm import ShmReceiver, host_fingerprint
from . import protocol as P

__all__ = ["DistributedKernel", "CONSOLE_KERNEL", "KERNEL_ORDINAL_SHIFT",
           "run_kernel_process"]

#: The driver-process kernel: initiates runs, hosts no thread instances.
CONSOLE_KERNEL = "__driver__"

#: Per-kernel id-space partition for ctx and group counters.
KERNEL_ORDINAL_SHIFT = 40

#: With recovery on, journal entries un-acked for this long are
#: re-delivered (replay dedup makes duplicates harmless); this is what
#: turns injected frame drops into mere delays.
RESEND_AFTER = 1.0


class _ConnState:
    """Per-inbound-connection decode state (the peer's shm attachment).

    Shared by both receive paths: the per-connection reader thread in
    ``io_mode="threads"`` and the loop-registered readiness callback in
    ``io_mode="eventloop"``.
    """

    __slots__ = ("shm_rx",)

    def __init__(self) -> None:
        self.shm_rx: Optional[ShmReceiver] = None

    def close(self) -> None:
        shm_rx, self.shm_rx = self.shm_rx, None
        if shm_rx is not None:
            shm_rx.close()


class DistributedKernel(ThreadedEngine):
    """A ThreadedEngine whose peers live in other processes."""

    def __init__(self, name: str, ordinal: int,
                 ns_address: Tuple[str, int],
                 peers: Iterable[str] = (),
                 policy: Optional[FlowControlPolicy] = None,
                 host: str = "127.0.0.1",
                 dial_deadline: float = 15.0,
                 tracer=None,
                 metrics=None,
                 transport: Optional[TransportPolicy] = None,
                 recover: bool = False,
                 faults: Optional[FaultPolicy] = None,
                 heartbeat_interval: float = 0.0,
                 routing: Optional[RoutingPolicy] = None,
                 stream: Optional[StreamPolicy] = None):
        super().__init__(policy=policy, serialize_transfers=False,
                         tracer=tracer, metrics=metrics, routing=routing,
                         stream=stream)
        self.transport = transport if transport is not None \
            else TransportPolicy()
        # Codec selection is process-wide (the wire module is shared by
        # every connection), so the kernel's policy sets it once here.
        fastpath.set_codec(self.transport.codec)
        if ordinal < 0:
            raise ValueError("kernel ordinal must be >= 0")
        self.name = name
        self.ordinal = ordinal
        self._origin_name = name
        #: Trace events recorded in this process carry the kernel name, so
        #: the merged console timeline keeps per-process identity.
        self._trace_pid = name
        # Partition the id spaces so no two kernels mint the same
        # activation or group id (group ids key merge state globally).
        self._ctx_counter = ordinal << KERNEL_ORDINAL_SHIFT
        self._group_counter = ordinal << KERNEL_ORDINAL_SHIFT
        #: Every kernel in the cluster (failure-broadcast fan-out).
        self._peer_names = [p for p in peers if p != name]
        self._shutdown_requested = threading.Event()
        # trace-merge barrier: collect_traces() waits here until every
        # polled peer has answered with its MSG_TRACE reply
        self._trace_cond = threading.Condition()
        self._trace_pending: set = set()
        # ack aggregation: per-peer buckets of pending merge→split acks,
        # flushed by a timer thread, on batch fill, or piggybacked ahead
        # of any data message to the same peer.  _ack_lock is leaf-level:
        # it is taken with the engine lock held (from _send_ack) but
        # never the other way around.
        self._ack_lock = threading.Lock()
        self._ack_pending: Dict[
            str, Dict[Tuple[str, int, int, int, int, int], int]] = {}
        self._ack_counts: Dict[str, int] = {}
        self._ack_event = threading.Event()  # acks buffered, flusher needed
        self._ack_flusher: Optional[threading.Thread] = None

        # -- fault tolerance ------------------------------------------
        #: With recovery on, this kernel journals its windowed emissions
        #: (replayed after a remap) and dedups replayed frames at
        #: non-leaf inputs; see :mod:`repro.net.recovery`.
        self.recover = recover
        self.heartbeat_interval = heartbeat_interval
        if recover:
            self._journal = TokenJournal()
            self._dedup = ReplayDedup()
        self._recovery_lock = threading.Lock()
        self._dead_kernels: set = set()
        self._recovered = False
        self._replayed_tokens = 0
        self._recovery_epoch = 0
        # remap/replay barrier (console side), same shape as the
        # trace-merge barrier above
        self._recovery_cond = threading.Condition()
        self._barrier_epoch = 0
        self._barrier_pending: set = set()
        self._replay_counts: Dict[str, int] = {}

        # -- elastic membership ---------------------------------------
        # Voluntary rebalances quiesce the console first: new
        # activations park on this gate while a membership barrier is in
        # flight, and the rebalance waits for in-flight activations to
        # drain.  Nested graph calls (CallGraphRequest re-entering run()
        # on a worker thread of an active run) bypass the gate via the
        # per-thread depth, or the drain could never reach zero.
        self._run_gate = threading.Condition()
        self._active_runs = 0
        self._rebalancing = False
        self._run_tls = threading.local()
        #: Peers that retired gracefully; their connections breaking is
        #: expected, not a failure (and not a kernel-down event).
        self._retired_peers: set = set()
        #: Migrated thread state received over MSG_THREAD_STATE, keyed
        #: ``(collection_name, index)`` → ``(epoch, thread_obj)``; the
        #: membership applier thread waits here for its expected gains.
        self._state_cond = threading.Condition()
        self._incoming_states: Dict[Tuple[str, int], Tuple[int, object]] = {}
        # cumulative elastic counters (console side), mirrored into
        # RunResult by the multiprocess engine
        self._rebalances = 0
        self._tokens_moved = 0
        self._rebalance_seconds = 0.0
        # deterministic chaos injection
        self.faults = faults if faults is not None else FaultPolicy()
        self._fault_rng = None
        self._kill_after_messages: Optional[int] = None
        if self.faults.drop_rate or self.faults.delay_ms:
            self._fault_rng = self.faults.rng_for(name)
        if self.faults.kills(name):
            self._kill_after_messages = self.faults.kill_after_messages
        self._data_message_counter = itertools.count(1)

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(64)
        self.address: Tuple[str, int] = self._listener.getsockname()[:2]

        # I/O core: one selectors loop thread multiplexing every peer
        # socket, unless the policy (or a platform without a working
        # selector) picks the per-peer/per-connection thread flavour.
        io_mode = self.transport.io_mode
        if io_mode == "eventloop" and not eventloop_supported():
            io_mode = "threads"
        #: Resolved I/O mode ("eventloop" or "threads") for this kernel.
        self.io_mode = io_mode
        self._io_loop: Optional[IOLoop] = \
            IOLoop(name, metrics=metrics) if io_mode == "eventloop" else None

        self._ns = NameServerClient(ns_address)
        self._pool = ConnectionPool(
            self._ns, hello_from=name, on_error=self._on_peer_error,
            dial_deadline=dial_deadline, transport=self.transport,
            metrics=metrics, trace=self.trace if tracer is not None else None,
            io_loop=self._io_loop)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"dps-accept:{name}", daemon=True)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "DistributedKernel":
        """Register with the name server and begin accepting peers."""
        self._ns.register(self.name, *self.address,
                          meta={"fingerprint": host_fingerprint(),
                                "kernel": True})
        if self._io_loop is not None:
            self._io_loop.start()
        self._accept_thread.start()
        if self.transport.ack_aggregation:
            self._ack_flusher = threading.Thread(
                target=self._ack_flush_loop,
                name=f"dps-ackflush:{self.name}", daemon=True)
            self._ack_flusher.start()
        if self.heartbeat_interval > 0:
            threading.Thread(target=self._heartbeat_loop,
                             name=f"dps-heartbeat:{self.name}",
                             daemon=True).start()
        if self.recover:
            threading.Thread(target=self._resend_loop,
                             name=f"dps-resend:{self.name}",
                             daemon=True).start()
        if self.faults.kills(self.name) and self.faults.kill_after is not None:
            # Wall-clock kill; the message-count flavour lives in
            # _dispatch_message.  os._exit skips every finally/atexit —
            # as close to SIGKILL as the process can do to itself.
            timer = threading.Timer(self.faults.kill_after, os._exit,
                                    args=(137,))
            timer.daemon = True
            timer.start()
        return self

    def _local_queue_depth(self) -> int:
        """Total pending tokens across this kernel's thread inboxes."""
        with self._lock:
            depth = sum(w.inbox.qsize() for w in self._workers.values())
        if self.metrics is not None:
            self.metrics.gauge("queue_depth_total").set(depth)
        return depth

    def _heartbeat_loop(self) -> None:
        while not self._shutdown_requested.wait(self.heartbeat_interval):
            try:
                self._ns.heartbeat(self.name, load=self._local_queue_depth())
            except Exception:
                return  # name server gone: the cluster is tearing down

    # ------------------------------------------------------------------
    # run gate (quiesce point for voluntary rebalances)
    # ------------------------------------------------------------------
    def run(self, graph, token: Token, timeout: float = 60.0) -> Token:
        # Nested activations (CallGraphRequest bodies) arrive on dps
        # worker threads and must bypass the gate: the enclosing
        # activation is already counted, and parking the inner call
        # would deadlock the drain.
        nested = (getattr(self._run_tls, "depth", 0) > 0
                  or threading.current_thread().name.startswith("dps:"))
        if not nested:
            with self._run_gate:
                self._run_gate.wait_for(lambda: not self._rebalancing)
                self._active_runs += 1
        self._run_tls.depth = getattr(self._run_tls, "depth", 0) + 1
        try:
            return super().run(graph, token, timeout=timeout)
        finally:
            self._run_tls.depth -= 1
            if not nested:
                with self._run_gate:
                    self._active_runs -= 1
                    self._run_gate.notify_all()

    def _resend_loop(self) -> None:
        while not self._shutdown_requested.wait(RESEND_AFTER / 2):
            journal = self._journal
            if journal is None or not len(journal):
                continue
            now = time.monotonic()
            with self._lock:
                stale = journal.stale(RESEND_AFTER, now)
            for env in stale:
                self._deliver(env)

    def wait_for_shutdown(self) -> None:
        """Block until a peer (normally the console) orders shutdown."""
        self._shutdown_requested.wait()

    def request_shutdown(self, peer: str) -> None:
        """Ask *peer* to shut down (part of the console's exit barrier)."""
        self._pool.send(peer, P.encode_shutdown())

    # ------------------------------------------------------------------
    # trace aggregation (console side)
    # ------------------------------------------------------------------
    def collect_traces(self, peers: Iterable[str],
                       timeout: float = 5.0) -> List[str]:
        """Pull every peer kernel's trace buffer and metrics into ours.

        Sends ``MSG_TRACE_FLUSH`` to each peer and blocks until all
        replies arrive (or *timeout* passes).  Merged events keep their
        originating kernel name in a ``pid`` field; metrics snapshots
        fold into this kernel's registry.  Returns the peers that did
        not answer in time (normally empty).
        """
        self._fold_codec_counters()
        peers = [p for p in peers if p != self.name]
        if not peers or (self.tracer is None and self.metrics is None):
            return []
        with self._trace_cond:
            self._trace_pending = set(peers)
        message = P.encode_trace_flush(self.name)
        for peer in peers:
            try:
                self._pool.send(peer, message)
            except Exception:
                with self._trace_cond:
                    self._trace_pending.discard(peer)
        with self._trace_cond:
            self._trace_cond.wait_for(
                lambda: not self._trace_pending, timeout=timeout)
            missing = sorted(self._trace_pending)
            self._trace_pending = set()
        return missing

    def _fold_codec_counters(self) -> None:
        """Fold the wire codec's fast-path tallies into the registry.

        The fastpath module keeps module-level counters (it sits below
        the metrics layer); draining them here, right before a snapshot
        leaves the process, surfaces ``codec_fast_path`` and friends in
        the merged console registry without a hot-path callback.
        """
        if self.metrics is None:
            return
        for key, value in fastpath.take_counters().items():
            if value:
                self.metrics.counter(key).inc(value)

    def _ship_trace(self, reply_to: str) -> None:
        """Answer a flush request with our buffered events and metrics."""
        self._fold_codec_counters()
        events = self.tracer.dump() if self.tracer is not None else []
        snapshot = self.metrics.snapshot() if self.metrics is not None else {}
        try:
            self._pool.send(reply_to, P.encode_trace(self.name, events,
                                                     snapshot))
        except Exception:
            return  # requester is gone; nothing useful to do
        # The buffer now lives at the requester; avoid re-shipping the
        # same events if another flush arrives.
        if self.tracer is not None:
            self.tracer.clear()
        if self.metrics is not None:
            self.metrics.clear()

    def shutdown(self) -> None:
        self._shutdown_requested.set()
        flusher = self._ack_flusher
        if flusher is not None:
            # Wakes immediately on the event; its final pass drains any
            # buffered acks through the pool before we close it.
            flusher.join(timeout=1.0)
        try:
            self._listener.close()
        except OSError:
            pass
        self._pool.close_all()  # flush needs the loop still running
        if self._io_loop is not None:
            self._io_loop.close()
        self._ns.close()
        super().shutdown()

    # ------------------------------------------------------------------
    # sending side: the ThreadedEngine distribution hooks
    # ------------------------------------------------------------------
    def _remote_send(self, target: str, segments) -> None:
        """Ship a data-path message, piggybacking any buffered acks.

        Pending acks for *target* are flushed onto its outbox *first*;
        both land in the same writer-thread drain, so the ack batch and
        the data frame usually share one vectored syscall.
        """
        if self._ack_pending and target in self._ack_pending:
            self._flush_acks(target)
        self._pool.send(target, segments)

    def _deliver(self, env: DataEnvelope) -> None:
        node = env.graph.node(env.node_id)
        target = node.collection.node_of(env.instance)
        if target == self.name:
            self._worker_for(node.collection, env.instance).inbox.put(env)
        elif self.tracer is None and self.metrics is None:
            self._remote_send(target, P.encode_data(env))
        else:
            t0 = time.monotonic()
            segments = P.encode_data(env)
            seconds = time.monotonic() - t0
            nbytes = sum(len(s) for s in segments)
            if self.tracer is not None:
                self.trace("serialize", node=self.name, seconds=seconds,
                           nbytes=nbytes)
                self.trace("token_send", src=self.name, dest=target,
                           nbytes=nbytes)
            if self.metrics is not None:
                self.metrics.counter("wire_messages").inc()
                self.metrics.counter("wire_bytes").inc(nbytes)
                self.metrics.histogram("serialize_seconds").observe(seconds)
            self._remote_send(target, segments)

    def _send_ack(self, graph_name: str, opener: int, opener_instance: int,
                  origin_node: str, routed_instance: int,
                  group_id: int = 0, index: int = 0) -> None:
        if origin_node == self.name:
            self._apply_ack(graph_name, opener, opener_instance,
                            routed_instance, group_id, index)
            return
        if not self.transport.ack_aggregation:
            # Queue append only — the caller holds the engine lock.
            self._pool.send(origin_node, P.encode_ack(
                graph_name, opener, opener_instance, routed_instance,
                group_id, index))
            return
        # Buffer the ack; it leaves on the next timed flush, when the
        # batch fills, or piggybacked ahead of a data message.  Delay is
        # bounded by the flush window, so flow-control slack at the
        # opener arrives a little late but never stalls forever.
        key = (graph_name, opener, opener_instance, routed_instance,
               group_id, index)
        with self._ack_lock:
            bucket = self._ack_pending.setdefault(origin_node, {})
            bucket[key] = bucket.get(key, 0) + 1
            count = self._ack_counts.get(origin_node, 0) + 1
            self._ack_counts[origin_node] = count
        if count >= self.transport.ack_batch_limit:
            self._flush_acks(origin_node)
        elif not self._ack_event.is_set():
            self._ack_event.set()

    def _flush_acks(self, peer: str) -> None:
        with self._ack_lock:
            bucket = self._ack_pending.pop(peer, None)
            self._ack_counts.pop(peer, None)
        if not bucket:
            return
        runs = [(P.AckWire(*key), count) for key, count in bucket.items()]
        n_acks = sum(count for _, count in runs)
        if self.metrics is not None and n_acks > 1:
            # Acks that rode along instead of paying for their own frame.
            self.metrics.counter("acks_coalesced").inc(n_acks - 1)
        self._pool.send(peer, P.encode_ack_batch(runs))

    def _flush_all_acks(self) -> None:
        for peer in list(self._ack_pending):
            self._flush_acks(peer)

    def _ack_flush_loop(self) -> None:
        # Event-driven, not a periodic tick: an idle kernel must not pay
        # 1/window wakeups per second (measurable on small machines).
        # The first buffered ack sets the event; the flusher then lets a
        # window's worth accumulate and drains everything.
        window = self.transport.ack_flush_window
        shutdown = self._shutdown_requested
        while not shutdown.is_set():
            if not self._ack_event.wait(timeout=0.5):
                continue
            if shutdown.wait(window):
                break
            self._ack_event.clear()
            self._flush_all_acks()
        self._flush_all_acks()

    def _announce_group_total(self, body: _Body, merge_id: int) -> None:
        # The opener cannot know which merge instance the group landed on,
        # so the total goes to every kernel hosting instances of the merge
        # collection; kernels that never see the group keep a placeholder
        # group record (bounded by group count, reclaimed at shutdown).
        merge_nodes = set(body.graph.node(merge_id).collection.placements)
        total = body.posted - body.shed
        message = None
        for kernel in merge_nodes:
            if kernel == self.name:
                self._apply_group_total(body.out_group_id, total)
            else:
                if message is None:
                    message = P.encode_group_total(body.out_group_id, total)
                self._pool.send(kernel, message)

    def _final_result(self, body: _Body, token: Token) -> None:
        origin = body.ctx_origin
        if origin is None or origin == self.name:
            super()._final_result(body, token)
        else:
            self._pool.send(origin, P.encode_result(
                P.MSG_RESULT, body.ctx_id, token))

    def _scatter_result(self, body: _Body, token: Token) -> None:
        origin = body.ctx_origin
        if origin is None or origin == self.name:
            super()._scatter_result(body, token)
        else:
            self._pool.send(origin, P.encode_result(
                P.MSG_SCATTER_RESULT, body.ctx_id, token))

    def _announce_scatter_total(self, body: _Body) -> None:
        origin = body.ctx_origin
        if origin is None or origin == self.name:
            super()._announce_scatter_total(body)
        else:
            self._pool.send(origin, P.encode_scatter_total(
                body.ctx_id, body.posted - body.shed))

    def _propagate_failure(self, exc: BaseException) -> None:
        message = P.encode_failure(exc)
        for peer in self._peer_names:
            try:
                self._pool.send(peer, message)
            except Exception:
                pass  # best effort: the peer may already be gone

    def _on_peer_error(self, peer: str, exc: Exception) -> None:
        if self._shutdown_requested.is_set():
            return
        with self._recovery_lock:
            if peer in self._retired_peers:
                return  # a graceful leaver's connection breaking is expected
        if self.recover:
            # Dead-connection detection: the writer thread is the first
            # to see a broken pipe to a dead peer.  Declare the peer
            # down instead of poisoning the run.
            self.handle_kernel_down(peer, f"peer connection failed: {exc}")
            return
        self._record_failure(
            KernelFailure(f"kernel {self.name!r} lost peer {peer!r}: {exc}"))

    # ------------------------------------------------------------------
    # failure recovery (remap + split-boundary replay)
    # ------------------------------------------------------------------
    def handle_kernel_down(self, name: str, reason: str = "",
                           propagate: bool = True) -> None:
        """Declare kernel *name* dead (idempotent).

        Without recovery the run fails fast with
        :class:`~repro.runtime.controller.KernelFailure`.  With recovery
        on, the console kernel orchestrates remap + replay; worker
        kernels forward the observation to the console.
        """
        with self._recovery_lock:
            if name in self._dead_kernels:
                return
            if name in self._retired_peers:
                # Retire racing a heartbeat miss: the kernel already
                # handed its state off and left the placement maps; a
                # stale expiry observation must not trigger recovery.
                return
            self._dead_kernels.add(name)
        if self._shutdown_requested.is_set():
            return
        if self.tracer is not None:
            self.trace("kernel_down", kernel=name, reason=reason)
        if self.metrics is not None:
            self.metrics.counter("kernels_down").inc()
        if not self.recover:
            self._record_failure(KernelFailure(
                f"kernel process {name!r} died unexpectedly ({reason})"),
                propagate=propagate)
            return
        if self.name == CONSOLE_KERNEL:
            # Orchestrate off the calling thread: this may be a
            # connection writer thread or the engine's child monitor,
            # and recovery blocks on cluster-wide barriers.
            threading.Thread(target=self._recover_from_failure,
                             args=(name,),
                             name=f"dps-recover:{self.name}",
                             daemon=True).start()
        else:
            try:
                self._pool.send(CONSOLE_KERNEL,
                                P.encode_kernel_down(name, reason))
            except Exception:
                pass  # console's own liveness checks will catch it

    def _recover_from_failure(self, dead: str) -> None:
        """Console side: remap the dead kernel's instances, then replay.

        Two cluster-wide barriers, strictly ordered: every survivor must
        have applied the remap before *any* journal replays, or a
        replayed token could be routed to the dead kernel by a survivor
        still holding the old placements and be lost forever.
        """
        try:
            with self._recovery_lock:
                survivors = [p for p in self._peer_names
                             if p != dead and p not in self._dead_kernels]
                self._recovery_epoch += 1
                epoch = self._recovery_epoch
            with self._lock:
                graphs = list(self._graphs.values())
                mapping = plan_remap(graphs, dead, survivors)
                apply_remap(graphs, mapping)
            if self.tracer is not None:
                self.trace("remap", dead=dead,
                           collections=sorted(mapping), epoch=epoch)
            self._recovery_barrier("remap", epoch, survivors,
                                   P.encode_remap(epoch, mapping, dead))
            counts = self._recovery_barrier("replay", epoch, survivors,
                                            P.encode_replay(epoch))
            replayed = sum(counts.values()) + self._replay_local()
            with self._recovery_lock:
                self._recovered = True
                self._replayed_tokens += replayed
            if self.tracer is not None:
                self.trace("replay", epoch=epoch, tokens=replayed)
            if self.metrics is not None:
                self.metrics.counter("tokens_replayed").inc(replayed)
        except BaseException as exc:
            failure = exc if isinstance(exc, KernelFailure) else \
                KernelFailure(f"recovery from dead kernel {dead!r} "
                              f"failed: {exc}")
            self._record_failure(failure)

    def _recovery_barrier(self, kind: str, epoch: int, peers: List[str],
                          message, timeout: float = 10.0) -> Dict[str, int]:
        with self._recovery_cond:
            self._barrier_epoch = epoch
            self._barrier_pending = set(peers)
            self._replay_counts = {}
        for peer in peers:
            self._pool.send(peer, message)
        with self._recovery_cond:
            if not self._recovery_cond.wait_for(
                    lambda: not self._barrier_pending, timeout=timeout):
                raise KernelFailure(
                    f"recovery {kind} barrier timed out waiting for "
                    f"{sorted(self._barrier_pending)} (cascading failure?)")
            return dict(self._replay_counts)

    def _barrier_done(self, peer: str, epoch: int,
                      count: Optional[int] = None) -> None:
        with self._recovery_cond:
            if epoch != self._barrier_epoch:
                return
            if count is not None:
                self._replay_counts[peer] = count
            self._barrier_pending.discard(peer)
            self._recovery_cond.notify_all()

    def _apply_remote_remap(self, epoch: int, mapping: Dict[str, List[str]],
                            dead: str) -> None:
        with self._recovery_lock:
            self._dead_kernels.add(dead)
        with self._lock:
            apply_remap(self._graphs.values(), mapping)
        try:
            self._pool.send(CONSOLE_KERNEL,
                            P.encode_remap_ok(self.name, epoch))
        except Exception:
            pass

    def _replay_local(self) -> int:
        """Re-deliver every journaled (un-acked) emission; routing is
        recomputed from the post-remap placements in ``_deliver``."""
        journal = self._journal
        if journal is None:
            return 0
        now = time.monotonic()
        with self._lock:
            envs = journal.replay_all(now)
        for env in envs:
            self._deliver(env)
        return len(envs)

    def recovery_snapshot(self) -> Tuple[bool, int]:
        """``(recovered, replayed_tokens)`` so far on this kernel."""
        with self._recovery_lock:
            return self._recovered, self._replayed_tokens

    # ------------------------------------------------------------------
    # elastic membership (voluntary join / retire)
    # ------------------------------------------------------------------
    def rebalance(self, joined: Iterable[str] = (),
                  retired: Iterable[str] = (),
                  depths: Optional[Dict[str, int]] = None,
                  timeout: float = 30.0) -> int:
        """Console side: admit *joined* kernels and/or drain *retired*.

        Quiesce-then-move, unlike the failure path: the console stops
        admitting activations, waits for in-flight ones to drain, plans
        a minimal-move rebalance over the new member set, and runs one
        **member barrier** — every kernel (old, joining and retiring)
        applies the new placements, ships the live thread state of
        instances it loses straight to their new owners, and replies
        ``MSG_REMAP_OK`` only once every instance it gains has arrived.
        Retiring kernels hand their state off before leaving, so there
        is no journal replay storm; a replay barrier still runs on joins
        as an exactly-once backstop (it replays ~0 tokens when
        quiesced).  Returns the number of thread instances moved.
        """
        joined = list(joined)
        retired = list(retired)
        t0 = time.monotonic()
        with self._run_gate:
            self._rebalancing = True
            if not self._run_gate.wait_for(lambda: self._active_runs == 0,
                                           timeout=timeout):
                self._rebalancing = False
                self._run_gate.notify_all()
                raise KernelFailure(
                    f"rebalance timed out waiting for {self._active_runs} "
                    f"active activation(s) to drain")
        try:
            with self._recovery_lock:
                current = [p for p in self._peer_names
                           if p not in self._dead_kernels]
                self._recovery_epoch += 1
                epoch = self._recovery_epoch
            members = sorted((set(current) | set(joined)) - set(retired)
                             - {self.name})
            if not members:
                raise KernelFailure(
                    "rebalance would leave no execution kernels")
            with self._lock:
                graphs = list(self._graphs.values())
                old_map = {coll.name: list(coll.placements)
                           for coll in _unique_collections(graphs)}
                mapping, moved = plan_rebalance(graphs, members,
                                                depths=depths, joined=joined)
            new_map = {name: list(mapping.get(name, places))
                       for name, places in old_map.items()}
            if self.tracer is not None:
                self.trace("rebalance", joined=sorted(joined),
                           retired=sorted(retired), epoch=epoch,
                           moved=moved, collections=sorted(mapping))
            # Everyone participates: retirees must hand their state off
            # and joiners must normalize their placements before the
            # first token flows.
            barrier_peers = sorted((set(current) | set(joined))
                                   - {self.name})
            self._recovery_barrier(
                "member", epoch, barrier_peers,
                P.encode_member(epoch, old_map, new_map, joined, retired),
                timeout=timeout)
            with self._lock:
                apply_remap(graphs, mapping)
            with self._recovery_lock:
                self._peer_names = list(members)
                self._retired_peers.update(retired)
            if joined:
                # Exactly-once backstop for the join path; quiesced
                # journals make this a ~0-token barrier.
                counts = self._recovery_barrier("replay", epoch, members,
                                                P.encode_replay(epoch))
                replayed = sum(counts.values()) + self._replay_local()
                with self._recovery_lock:
                    self._replayed_tokens += replayed
            with self._recovery_lock:
                self._rebalances += 1
                self._tokens_moved += moved
                self._rebalance_seconds += time.monotonic() - t0
            if self.metrics is not None:
                self.metrics.counter("rebalances").inc()
                self.metrics.counter("tokens_moved").inc(moved)
                self.metrics.histogram("rebalance_seconds").observe(
                    time.monotonic() - t0)
            return moved
        finally:
            with self._run_gate:
                self._rebalancing = False
                self._run_gate.notify_all()

    def _apply_membership(self, epoch: int, old_map: Dict[str, List[str]],
                          new_map: Dict[str, List[str]], joined: List[str],
                          retired: List[str]) -> None:
        """Worker side of the member barrier (runs on its own thread).

        The console has quiesced the cluster, so local inboxes drain to
        empty and the journal prunes to nothing; after that this kernel
        computes its losses and gains from the *shipped* placement maps
        (its local graphs may be stale — a CLI joiner rebuilt them from
        source), evicts and ships lost instances' thread objects, adopts
        gained ones, and only then acknowledges the barrier.
        """
        try:
            self._flush_all_acks()
            journal = self._journal
            deadline = time.monotonic() + 5.0
            while journal is not None and len(journal) \
                    and time.monotonic() < deadline:
                time.sleep(0.02)
            with self._lock:
                colls = {coll.name: coll for coll in
                         _unique_collections(self._graphs.values())}
            losses: List[Tuple[str, int, str]] = []
            gains: set = set()
            for name, old_places in old_map.items():
                new_places = new_map.get(name, old_places)
                for i, (old, new) in enumerate(zip(old_places, new_places)):
                    if old == new:
                        continue
                    if old == self.name:
                        losses.append((name, i, new))
                    if new == self.name:
                        gains.add((name, i))
            with self._recovery_lock:
                self._retired_peers.update(retired)
                self._peer_names = sorted(
                    (set(self._peer_names) | set(joined)) - set(retired)
                    - {self.name})
            for name, index, target in losses:
                coll = colls.get(name)
                thread = self._evict_thread(coll, index) \
                    if coll is not None else None
                self._pool.send(target, P.encode_thread_state(
                    name, index, epoch, thread))
            with self._lock:
                apply_remap(self._graphs.values(), new_map)
            if gains:
                with self._state_cond:
                    arrived = self._state_cond.wait_for(
                        lambda: all(
                            key in self._incoming_states
                            and self._incoming_states[key][0] >= epoch
                            for key in gains),
                        timeout=20.0)
                    states = {key: self._incoming_states.pop(key)[1]
                              for key in gains
                              if key in self._incoming_states}
                if not arrived:
                    raise KernelFailure(
                        f"kernel {self.name!r} never received migrated "
                        f"state for {sorted(gains - set(states))} "
                        f"(donor died mid-rebalance?)")
                for (name, index), thread in states.items():
                    coll = colls.get(name)
                    if coll is not None:
                        self._adopt_thread(coll, index, thread)
            if self.tracer is not None:
                self.trace("member", epoch=epoch, lost=len(losses),
                           gained=len(gains))
            if self.metrics is not None and losses:
                self.metrics.counter("tokens_moved").inc(len(losses))
            self._pool.send(CONSOLE_KERNEL,
                            P.encode_remap_ok(self.name, epoch))
        except BaseException as exc:
            failure = exc if isinstance(exc, KernelFailure) else \
                KernelFailure(f"membership change failed on "
                              f"{self.name!r}: {exc}")
            self._record_failure(failure)

    def rebalance_snapshot(self) -> Tuple[int, int, float]:
        """``(rebalances, tokens_moved, rebalance_seconds)`` so far."""
        with self._recovery_lock:
            return (self._rebalances, self._tokens_moved,
                    self._rebalance_seconds)

    # ------------------------------------------------------------------
    # receiving side
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed during shutdown
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if self._io_loop is not None:
                state = _ConnState()
                self._io_loop.add_connection(
                    conn, recv_bytes=self.transport.recv_buffer_bytes,
                    on_frames=lambda frames, s=state:
                        self._process_frames(s, frames),
                    on_close=lambda exc, s=state:
                        self._on_conn_close(s, exc))
            else:
                threading.Thread(target=self._reader_loop, args=(conn,),
                                 name=f"dps-recv:{self.name}",
                                 daemon=True).start()

    def _process_frames(self, state: _ConnState, frames) -> None:
        for payload in frames:
            kind, value = P.decode_message(payload, self._graphs)
            if kind == P.MSG_SHM_ATTACH:
                arena_name, size = value
                state.shm_rx = ShmReceiver(arena_name, size)
                continue
            if kind == P.MSG_SHM:
                if state.shm_rx is None:
                    raise WireError(
                        "shm descriptor frame before MSG_SHM_ATTACH")
                raw = state.shm_rx.reassemble(value)
                kind, value = P.decode_message(raw, self._graphs)
            self._dispatch_message(kind, value)

    def _on_conn_close(self, state: _ConnState,
                       exc: Optional[Exception]) -> None:
        """Loop-side mirror of the reader thread's failure handling."""
        state.close()
        if exc is None or self._shutdown_requested.is_set():
            return
        if self.recover:
            # A broken inbound connection is anonymous (no peer name
            # here); liveness is owned by the heartbeat/sentinel
            # machinery and the named writer-side _on_peer_error.
            return
        self._record_failure(KernelFailure(
            f"kernel {self.name!r} receive path failed: {exc}"))

    def _reader_loop(self, conn: socket.socket) -> None:
        reader = FrameReader(conn,
                             recv_bytes=self.transport.recv_buffer_bytes)
        state = _ConnState()
        try:
            while True:
                frames = reader.recv_batch()
                if frames is None:
                    return  # peer closed cleanly
                self._process_frames(state, frames)
        except (OSError, WireError) as exc:
            if self._shutdown_requested.is_set():
                pass
            elif self.recover:
                # See _on_conn_close: anonymous inbound failures defer
                # to heartbeats and the writer-side _on_peer_error.
                pass
            else:
                self._record_failure(KernelFailure(
                    f"kernel {self.name!r} receive path failed: {exc}"))
        finally:
            state.close()
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch_message(self, kind: int, value) -> None:
        if kind == P.MSG_DATA:
            if self._kill_after_messages is not None:
                # Deterministic mid-phase death: die *before* processing
                # the Nth data message, so its token is provably lost and
                # must come back through journal replay.
                if next(self._data_message_counter) >= \
                        self._kill_after_messages:
                    os._exit(137)
            rng = self._fault_rng
            if rng is not None:
                # Injection applies to data frames only — dropping acks
                # or barrier messages would test the injector, not the
                # recovery protocol.
                if self.faults.drop_rate and \
                        rng.random() < self.faults.drop_rate:
                    if self.metrics is not None:
                        self.metrics.counter(
                            "frames_dropped_injected").inc()
                    return
                if self.faults.delay_ms:
                    time.sleep(rng.random() * self.faults.delay_ms / 1000.0)
            env: DataEnvelope = value
            node = env.graph.node(env.node_id)
            self._worker_for(node.collection, env.instance).inbox.put(env)
        elif kind == P.MSG_ACK:
            with self._lock:
                self._apply_ack(value.graph_name, value.opener,
                                value.opener_instance, value.routed_instance,
                                value.group_id, value.index)
        elif kind == P.MSG_ACK_BATCH:
            # One lock acquisition for the whole batch — the receive-side
            # half of the aggregation win.
            with self._lock:
                for ack, count in value:
                    for _ in range(count):
                        self._apply_ack(ack.graph_name, ack.opener,
                                        ack.opener_instance,
                                        ack.routed_instance,
                                        ack.group_id, ack.index)
        elif kind == P.MSG_GROUP_TOTAL:
            group_id, total = value
            self._apply_group_total(group_id, total)
        elif kind == P.MSG_RESULT:
            ctx_id, token = value
            with self._lock:
                result_q = self._results.get(ctx_id)
            if result_q is not None:
                result_q.put(token)
        elif kind == P.MSG_SCATTER_RESULT:
            ctx_id, token = value
            self._scatter_token(ctx_id, token)
        elif kind == P.MSG_SCATTER_TOTAL:
            ctx_id, total = value
            self.scatter_total(ctx_id, total)
        elif kind == P.MSG_FAILURE:
            self._record_failure(value, propagate=False)
        elif kind == P.MSG_TRACE_FLUSH:
            self._ship_trace(value)
        elif kind == P.MSG_TRACE:
            kernel_name, events, snapshot = value
            if self.tracer is not None and events:
                self.tracer.merge(events, pid=kernel_name)
            if self.metrics is not None and snapshot:
                self.metrics.merge(snapshot)
            with self._trace_cond:
                self._trace_pending.discard(kernel_name)
                self._trace_cond.notify_all()
        elif kind == P.MSG_KERNEL_DOWN:
            name, reason = value
            self.handle_kernel_down(name, reason)
        elif kind == P.MSG_REMAP:
            epoch, mapping, dead = value
            self._apply_remote_remap(epoch, mapping, dead)
        elif kind == P.MSG_REPLAY:
            count = self._replay_local()
            try:
                self._pool.send(CONSOLE_KERNEL,
                                P.encode_replay_done(self.name, value, count))
            except Exception:
                pass  # console gone: barrier timeout handles it
        elif kind == P.MSG_REPLAY_DONE:
            name, epoch, count = value
            self._barrier_done(name, epoch, count)
        elif kind == P.MSG_REMAP_OK:
            name, epoch = value
            self._barrier_done(name, epoch)
        elif kind == P.MSG_MEMBER:
            epoch, old_map, new_map, joined, retired = value
            # Off the reader thread: applying a membership change blocks
            # on journal drain and on migrated state from other kernels.
            threading.Thread(target=self._apply_membership,
                             args=(epoch, old_map, new_map, joined, retired),
                             name=f"dps-member:{self.name}",
                             daemon=True).start()
        elif kind == P.MSG_THREAD_STATE:
            cname, index, epoch, thread = value
            with self._state_cond:
                self._incoming_states[(cname, index)] = (epoch, thread)
                self._state_cond.notify_all()
        elif kind == P.MSG_SHUTDOWN:
            self._shutdown_requested.set()
        elif kind == P.MSG_HELLO:
            pass  # informational; connections are identified lazily
        else:  # pragma: no cover - decode_message already validates
            raise WireError(f"unhandled message kind {kind}")


def run_kernel_process(name: str, ordinal: int,
                       ns_address: Tuple[str, int],
                       peers: List[str],
                       graphs: List[Flowgraph],
                       policy: Optional[FlowControlPolicy] = None,
                       ready=None,
                       trace: bool = False,
                       transport: Optional[TransportPolicy] = None,
                       recover: bool = False,
                       faults: Optional[FaultPolicy] = None,
                       heartbeat_interval: float = 0.0,
                       routing: Optional[RoutingPolicy] = None,
                       stream: Optional[StreamPolicy] = None) -> None:
    """Child-process main for one kernel (forked by MultiprocessEngine).

    With *trace* set, the kernel records into a process-local tracer and
    metrics registry; the console pulls both through ``MSG_TRACE_FLUSH``
    before the shutdown barrier and merges them into one timeline.
    """
    tracer = metrics = None
    if trace:
        from ..trace import MetricsRegistry, Tracer
        tracer = Tracer()
        metrics = MetricsRegistry()
    kernel = DistributedKernel(
        name, ordinal, ns_address, peers,
        policy=policy if policy is not None else FlowControlPolicy(),
        tracer=tracer, metrics=metrics,
        transport=transport if transport is not None
        else TransportPolicy.from_env(),
        recover=recover, faults=faults,
        heartbeat_interval=heartbeat_interval,
        routing=routing if routing is not None else RoutingPolicy.from_env(),
        stream=stream)
    for graph in graphs:
        kernel.register_graph(graph)
    kernel.start()
    if ready is not None:
        ready.set()
    try:
        kernel.wait_for_shutdown()
    finally:
        kernel.shutdown()
