"""Lazy peer connections between kernels (paper §4).

"Connections between kernels are established lazily": a kernel does not
dial a peer until the first token routed to it, and the peer may not even
be listening yet when the cluster is still starting up.  The dial path
therefore resolves the peer through the name server and retries with
exponential backoff both the lookup (``UnknownKernel`` — the peer has not
registered yet) and the TCP connect (connection refused — the peer
registered between listen() and our connect losing a race, or the
directory is briefly stale).

Each peer gets one unidirectional send channel: an outbox queue drained
by a writer thread that owns all blocking socket I/O, so posting a token
to a remote kernel is a queue append — never a network wait under the
engine lock — and per-peer FIFO ordering is preserved (acks must not
overtake the data tokens they answer).

The writer drains the *whole* outbox each wakeup and flushes the batch
with a single vectored :func:`~repro.net.framing.send_messages` call
(chunked below IOV_MAX and a byte budget), so a burst of small tokens
costs one syscall instead of one per frame.  When the peer's HELLO-time
host fingerprint matches ours, payload segments above a size threshold
take the :mod:`~repro.net.shm` shared-memory lane and only descriptor
frames hit the TCP stack.  Everything is tuned through a
:class:`TransportPolicy`.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..serial.wire import Segment
from .framing import send_message, send_messages
from .nameserver import NameServerClient, NameServerError, UnknownKernel
from .protocol import encode_hello, encode_shm_attach
from .shm import ShmSender, host_fingerprint

__all__ = ["dial_kernel", "PeerConnection", "ConnectionPool", "DialError",
           "TransportPolicy"]

_CLOSE = object()


@dataclass(frozen=True)
class TransportPolicy:
    """Tuning knobs for the kernel-to-kernel wire path.

    The defaults enable everything: outbox coalescing, ack aggregation
    and the shared-memory lane for co-located kernels.  Pass an instance
    to ``MultiprocessEngine(transport=...)`` (or export the environment
    variables read by :meth:`from_env`) to tune or disable parts of it;
    :meth:`unbatched` reproduces the frame-at-a-time PR 2 behaviour for
    A/B benchmarking.
    """

    #: Drain the whole outbox per writer wakeup and flush it with
    #: vectored multi-frame sends.
    coalescing: bool = True
    #: Byte budget per ``sendmsg`` when coalescing (segments are never
    #: split; one oversized segment still goes out whole).
    max_batch_bytes: int = 1 << 20
    #: Frames drained from the outbox per flush.
    max_batch_frames: int = 256
    #: Seconds buffered acks may wait before a timed flush; ``0``
    #: disables aggregation entirely.
    ack_flush_window: float = 0.001
    #: Buffered acks per peer that force an immediate flush; ``<= 1``
    #: disables aggregation entirely.
    ack_batch_limit: int = 128
    #: Use a shared-memory arena towards same-host peers.
    shm_enabled: bool = True
    #: Segments at or above this size take the shm lane.
    shm_threshold: int = 1 << 14
    #: Arena size per peer connection.
    shm_arena_bytes: int = 1 << 24
    #: ``recv`` size of the batch-aware frame reader.
    recv_buffer_bytes: int = 1 << 18
    #: I/O core for the kernel wire path: ``"eventloop"`` multiplexes
    #: every peer socket on one selectors loop thread per kernel;
    #: ``"threads"`` keeps the per-peer writer / per-connection reader
    #: threads (the PR 4 shape) for A/B runs and as the fallback on
    #: platforms without a working selector.
    io_mode: str = "eventloop"
    #: Wire codec selection: ``"auto"`` uses per-token-type plans plus
    #: the compiled visitor when the optional ``_wirec`` extension built
    #: (pure-Python fallback otherwise), ``"fast"`` is the same
    #: selection named explicitly for A/B runs, ``"pure"`` forces the
    #: generic visitor.  Wire bytes are identical across all three.
    codec: str = "auto"
    #: Nagle-style flush window for the eventloop sender: delay-eligible
    #: data frames may wait up to this long (microseconds) for the
    #: outbox to accumulate before a flush.  Control frames (acks,
    #: results, totals, shutdown — everything that is not ``MSG_DATA``)
    #: bypass the window and flush everything queued before them.  ``0``
    #: (the default) disables the *timer* window; coalescing still
    #: happens at the loop's quiescent points, which is free — a timer
    #: delay additionally taxes every flow-control round trip (select
    #: oversleep can stretch a 200 us window past 1 ms on a contended
    #: host), so reserve ``> 0`` for syscall-bound pipelined workloads
    #: where RTT does not gate throughput.
    flush_delay_us: int = 0

    def __post_init__(self) -> None:
        if self.io_mode not in ("eventloop", "threads"):
            raise ValueError(
                f"io_mode must be 'eventloop' or 'threads', "
                f"got {self.io_mode!r}"
            )
        if self.codec not in ("auto", "fast", "pure"):
            raise ValueError(
                f"codec must be 'auto', 'fast' or 'pure', "
                f"got {self.codec!r}"
            )
        if not 0 <= self.flush_delay_us <= 1_000_000:
            raise ValueError(
                f"flush_delay_us must be in [0, 1000000], "
                f"got {self.flush_delay_us!r}"
            )

    @property
    def ack_aggregation(self) -> bool:
        return self.ack_batch_limit > 1 and self.ack_flush_window > 0

    @classmethod
    def unbatched(cls) -> "TransportPolicy":
        """The PR 2 wire path: one syscall per frame, one frame per ack,
        every payload through TCP.  Kept for A/B benchmarks."""
        return cls(coalescing=False, ack_flush_window=0.0, ack_batch_limit=1,
                   shm_enabled=False, flush_delay_us=0)

    @classmethod
    def from_env(cls, env=None) -> "TransportPolicy":
        """Defaults overridden by environment variables:

        - ``REPRO_TRANSPORT_BATCH=0`` — disable coalescing *and* ack
          aggregation (the frame-at-a-time path);
        - ``REPRO_SHM=0`` / ``REPRO_SHM=1`` — force the shm lane off/on;
        - ``REPRO_SHM_THRESHOLD=<bytes>`` — shm size threshold;
        - ``REPRO_IO_MODE=eventloop|threads`` — pick the I/O core;
        - ``REPRO_CODEC=auto|fast|pure`` — wire codec selection;
        - ``REPRO_FLUSH_DELAY_US=<us>`` — eventloop flush window.
        """
        env = os.environ if env is None else env
        policy = cls()
        if env.get("REPRO_TRANSPORT_BATCH", "1") == "0":
            policy = replace(policy, coalescing=False,
                             ack_flush_window=0.0, ack_batch_limit=1)
        if "REPRO_SHM" in env:
            policy = replace(policy, shm_enabled=env["REPRO_SHM"] != "0")
        if "REPRO_SHM_THRESHOLD" in env:
            policy = replace(policy,
                             shm_threshold=int(env["REPRO_SHM_THRESHOLD"]))
        if "REPRO_IO_MODE" in env:
            policy = replace(policy, io_mode=env["REPRO_IO_MODE"])
        if "REPRO_CODEC" in env:
            policy = replace(policy, codec=env["REPRO_CODEC"])
        if "REPRO_FLUSH_DELAY_US" in env:
            policy = replace(policy,
                             flush_delay_us=int(env["REPRO_FLUSH_DELAY_US"]))
        return policy


class DialError(ConnectionError):
    """A peer kernel could not be reached before the deadline."""


def dial_kernel(ns: NameServerClient, name: str, *,
                hello_from: Optional[str] = None,
                deadline: float = 15.0,
                base_delay: float = 0.02,
                max_delay: float = 0.5,
                return_meta: bool = False,
                ) -> Union[socket.socket, Tuple[socket.socket, dict]]:
    """Resolve *name* through the name server and connect to it.

    Retries lookup failures (peer not yet registered) and refused
    connections with exponential backoff until *deadline* seconds have
    elapsed.  When *hello_from* is given, a HELLO message identifying the
    dialing kernel is sent before the socket is returned.  With
    *return_meta* the peer's registration metadata (e.g. its host
    fingerprint) comes back alongside the socket.
    """
    give_up_at = time.monotonic() + deadline
    delay = base_delay
    last_error: Optional[Exception] = None
    while True:
        try:
            host, port, meta = ns.lookup_entry(name)
            sock = socket.create_connection(
                (host, port), timeout=max(0.1, give_up_at - time.monotonic()))
            break
        except UnknownKernel as exc:
            last_error = exc
        except OSError as exc:
            last_error = exc
        if time.monotonic() + delay > give_up_at:
            raise DialError(
                f"could not reach kernel {name!r} within {deadline}s"
            ) from last_error
        time.sleep(delay)
        delay = min(delay * 2, max_delay)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    if hello_from is not None:
        send_message(sock, encode_hello(hello_from))
    return (sock, meta) if return_meta else sock


class PeerConnection:
    """Send-only channel to one peer kernel.

    Messages are segment lists queued by any thread; a dedicated writer
    thread dials the peer lazily on the first message and then drains the
    outbox with vectored sends — the whole backlog per wakeup when the
    transport policy enables coalescing.  Transport errors are reported
    once through *on_error*; messages queued after a failure are dropped,
    but the drops are *counted* (``token_drops`` metric, one
    ``token_drop`` trace event per drained batch) so a peer loss shows up
    in the run's observability instead of as a silent hang.
    """

    def __init__(self, peer_name: str, ns: NameServerClient, *,
                 hello_from: str,
                 on_error: Callable[[str, Exception], None],
                 dial_deadline: float = 15.0,
                 transport: Optional[TransportPolicy] = None,
                 metrics=None,
                 trace: Optional[Callable] = None):
        self.peer_name = peer_name
        self._ns = ns
        self._hello_from = hello_from
        self._on_error = on_error
        self._dial_deadline = dial_deadline
        self._transport = transport if transport is not None \
            else TransportPolicy()
        self._metrics = metrics
        self._trace = trace
        self._outbox: "queue.Queue" = queue.Queue()
        self._sock: Optional[socket.socket] = None
        self._shm: Optional[ShmSender] = None
        self._failed = False
        self._writer = threading.Thread(
            target=self._drain, name=f"dps-send:{peer_name}", daemon=True)
        self._writer.start()

    def send(self, segments: List[Segment]) -> None:
        self._outbox.put(segments)

    def close(self, flush_timeout: float = 5.0) -> None:
        self._outbox.put(_CLOSE)
        self._writer.join(timeout=flush_timeout)
        sock = self._sock
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        shm, self._shm = self._shm, None
        if shm is not None:
            shm.destroy()

    # -- writer thread ---------------------------------------------------
    def _drain(self) -> None:
        max_frames = self._transport.max_batch_frames \
            if self._transport.coalescing else 1
        while True:
            item = self._outbox.get()
            batch = [item]
            try:
                while len(batch) < max_frames:
                    batch.append(self._outbox.get_nowait())
            except queue.Empty:
                pass
            closing = False
            if any(item is _CLOSE for item in batch):
                batch = batch[:batch.index(_CLOSE)]
                closing = True
            if batch:
                if self._failed:
                    self._count_drops(len(batch))
                else:
                    try:
                        self._flush(batch)
                    except (OSError, NameServerError, DialError) as exc:
                        self._failed = True
                        if self._shm is not None:
                            # The peer is gone: blocks it never consumed
                            # would pin the ring tail forever (reclaim is
                            # FIFO).  Safe here — this writer thread is
                            # the arena's only producer, and no further
                            # descriptors will be flushed.
                            self._shm.reclaim_all()
                        self._on_error(self.peer_name, exc)
            if closing:
                return

    def _flush(self, batch: List[List[Segment]]) -> None:
        if self._sock is None:
            self._connect()
        if self._shm is not None:
            batch = [self._shm.rewrite(message) for message in batch]
        if self._transport.coalescing:
            _, syscalls = send_messages(
                self._sock, batch,
                max_batch_bytes=self._transport.max_batch_bytes)
        else:
            for message in batch:
                send_message(self._sock, message)
            syscalls = len(batch)
        if self._metrics is not None:
            self._metrics.histogram("frames_per_syscall").observe(
                len(batch) / max(1, syscalls))

    def _connect(self) -> None:
        sock, meta = dial_kernel(
            self._ns, self.peer_name, hello_from=self._hello_from,
            deadline=self._dial_deadline, return_meta=True)
        self._sock = sock
        policy = self._transport
        if (policy.shm_enabled
                and meta.get("fingerprint") == host_fingerprint()):
            try:
                shm = ShmSender(policy.shm_arena_bytes, policy.shm_threshold,
                                metrics=self._metrics)
            except (OSError, ValueError):
                return  # no shm on this platform; TCP lane still works
            # The attach must reach the peer before the first descriptor
            # frame; same socket, same writer thread, so FIFO guarantees it.
            send_message(sock, encode_shm_attach(shm.name, shm.size))
            self._shm = shm

    def _count_drops(self, n: int) -> None:
        if self._metrics is not None:
            self._metrics.counter("token_drops").inc(n)
        if self._trace is not None:
            self._trace("token_drop", peer=self.peer_name, dropped=n)


class ConnectionPool:
    """All of one kernel's outgoing peer connections.

    The hot path — :meth:`send` to an already-dialed peer — is a single
    lock-free dict probe (GIL-atomic; connections are only ever added,
    under the lock, and cleared at close).  The lock is taken only to
    create a connection on first use.

    When an *io_loop* is attached, new peers are
    :class:`~repro.net.eventloop.EventLoopPeer` channels drained by that
    loop; otherwise each peer gets a :class:`PeerConnection` writer
    thread.
    """

    def __init__(self, ns: NameServerClient, *, hello_from: str,
                 on_error: Callable[[str, Exception], None],
                 dial_deadline: float = 15.0,
                 transport: Optional[TransportPolicy] = None,
                 metrics=None,
                 trace: Optional[Callable] = None,
                 io_loop=None):
        self._ns = ns
        self._hello_from = hello_from
        self._on_error = on_error
        self._dial_deadline = dial_deadline
        self._transport = transport
        self._metrics = metrics
        self._trace = trace
        self._io_loop = io_loop
        self._lock = threading.Lock()
        self._peers: Dict[str, PeerConnection] = {}

    def peer(self, name: str) -> PeerConnection:
        with self._lock:
            conn = self._peers.get(name)
            if conn is None:
                if self._io_loop is not None:
                    from .eventloop import EventLoopPeer  # avoid cycle
                    conn = EventLoopPeer(
                        name, self._ns, loop=self._io_loop,
                        hello_from=self._hello_from,
                        on_error=self._on_error,
                        dial_deadline=self._dial_deadline,
                        transport=self._transport,
                        metrics=self._metrics,
                        trace=self._trace)
                else:
                    conn = PeerConnection(
                        name, self._ns, hello_from=self._hello_from,
                        on_error=self._on_error,
                        dial_deadline=self._dial_deadline,
                        transport=self._transport,
                        metrics=self._metrics,
                        trace=self._trace)
                self._peers[name] = conn
            return conn

    def send(self, name: str, segments: List[Segment]) -> None:
        conn = self._peers.get(name)
        if conn is None:
            conn = self.peer(name)
        conn.send(segments)

    def peer_names(self) -> List[str]:
        with self._lock:
            return list(self._peers)

    def close_all(self) -> None:
        with self._lock:
            peers = list(self._peers.values())
            self._peers.clear()
        for conn in peers:
            conn.close()
