"""Lazy peer connections between kernels (paper §4).

"Connections between kernels are established lazily": a kernel does not
dial a peer until the first token routed to it, and the peer may not even
be listening yet when the cluster is still starting up.  The dial path
therefore resolves the peer through the name server and retries with
exponential backoff both the lookup (``UnknownKernel`` — the peer has not
registered yet) and the TCP connect (connection refused — the peer
registered between listen() and our connect losing a race, or the
directory is briefly stale).

Each peer gets one unidirectional send channel: an outbox queue drained
by a writer thread that owns all blocking socket I/O, so posting a token
to a remote kernel is a queue append — never a network wait under the
engine lock — and per-peer FIFO ordering is preserved (acks must not
overtake the data tokens they answer).
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..serial.wire import Segment
from .framing import send_message
from .nameserver import NameServerClient, NameServerError, UnknownKernel
from .protocol import encode_hello

__all__ = ["dial_kernel", "PeerConnection", "ConnectionPool", "DialError"]

_CLOSE = object()


class DialError(ConnectionError):
    """A peer kernel could not be reached before the deadline."""


def dial_kernel(ns: NameServerClient, name: str, *,
                hello_from: Optional[str] = None,
                deadline: float = 15.0,
                base_delay: float = 0.02,
                max_delay: float = 0.5) -> socket.socket:
    """Resolve *name* through the name server and connect to it.

    Retries lookup failures (peer not yet registered) and refused
    connections with exponential backoff until *deadline* seconds have
    elapsed.  When *hello_from* is given, a HELLO message identifying the
    dialing kernel is sent before the socket is returned.
    """
    give_up_at = time.monotonic() + deadline
    delay = base_delay
    last_error: Optional[Exception] = None
    while True:
        try:
            host, port = ns.lookup(name)
            sock = socket.create_connection(
                (host, port), timeout=max(0.1, give_up_at - time.monotonic()))
            break
        except UnknownKernel as exc:
            last_error = exc
        except OSError as exc:
            last_error = exc
        if time.monotonic() + delay > give_up_at:
            raise DialError(
                f"could not reach kernel {name!r} within {deadline}s"
            ) from last_error
        time.sleep(delay)
        delay = min(delay * 2, max_delay)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    if hello_from is not None:
        send_message(sock, encode_hello(hello_from))
    return sock


class PeerConnection:
    """Send-only channel to one peer kernel.

    Messages are segment lists queued by any thread; a dedicated writer
    thread dials the peer lazily on the first message and then drains the
    outbox with vectored sends.  Transport errors are reported once
    through *on_error* and the connection stops accepting messages.
    """

    def __init__(self, peer_name: str, ns: NameServerClient, *,
                 hello_from: str,
                 on_error: Callable[[str, Exception], None],
                 dial_deadline: float = 15.0):
        self.peer_name = peer_name
        self._ns = ns
        self._hello_from = hello_from
        self._on_error = on_error
        self._dial_deadline = dial_deadline
        self._outbox: "queue.Queue" = queue.Queue()
        self._sock: Optional[socket.socket] = None
        self._failed = False
        self._writer = threading.Thread(
            target=self._drain, name=f"dps-send:{peer_name}", daemon=True)
        self._writer.start()

    def send(self, segments: List[Segment]) -> None:
        self._outbox.put(segments)

    def close(self, flush_timeout: float = 5.0) -> None:
        self._outbox.put(_CLOSE)
        self._writer.join(timeout=flush_timeout)
        sock = self._sock
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    # -- writer thread ---------------------------------------------------
    def _drain(self) -> None:
        while True:
            item = self._outbox.get()
            if item is _CLOSE:
                return
            if self._failed:
                continue  # drop: the engine already knows this peer is gone
            try:
                if self._sock is None:
                    self._sock = dial_kernel(
                        self._ns, self.peer_name,
                        hello_from=self._hello_from,
                        deadline=self._dial_deadline)
                send_message(self._sock, item)
            except (OSError, NameServerError, DialError) as exc:
                self._failed = True
                self._on_error(self.peer_name, exc)


class ConnectionPool:
    """All of one kernel's outgoing peer connections."""

    def __init__(self, ns: NameServerClient, *, hello_from: str,
                 on_error: Callable[[str, Exception], None],
                 dial_deadline: float = 15.0):
        self._ns = ns
        self._hello_from = hello_from
        self._on_error = on_error
        self._dial_deadline = dial_deadline
        self._lock = threading.Lock()
        self._peers: Dict[str, PeerConnection] = {}

    def peer(self, name: str) -> PeerConnection:
        with self._lock:
            conn = self._peers.get(name)
            if conn is None:
                conn = PeerConnection(
                    name, self._ns, hello_from=self._hello_from,
                    on_error=self._on_error,
                    dial_deadline=self._dial_deadline)
                self._peers[name] = conn
            return conn

    def send(self, name: str, segments: List[Segment]) -> None:
        self.peer(name).send(segments)

    def peer_names(self) -> List[str]:
        with self._lock:
            return list(self._peers)

    def close_all(self) -> None:
        with self._lock:
            peers = list(self._peers.values())
            self._peers.clear()
        for conn in peers:
            conn.close()
