"""Framed message I/O over stream sockets (zero-copy send path).

One *message* on the wire is a :func:`repro.serial.wire.frame` header
(length prefix + protocol-version byte) followed by the payload bytes.
:func:`send_message` transmits the payload as a scatter-gather segment
list via vectored ``sendmsg`` calls, so large
:func:`~repro.serial.wire.encode_segments` payloads (borrowed ndarray
memoryviews) go from the array's own storage to the kernel socket buffer
without ever being coalesced into an intermediate Python buffer — the
"pointer-arithmetic serializer straight onto the wire" behaviour of the
C++ library.  :func:`recv_message` reads exactly one message and returns
an *owned* ``bytearray``, suitable for ``decode(copy=False)``.

The batched transport builds on two extensions: :func:`send_messages`
flushes *many* framed messages through as few ``sendmsg`` calls as the
platform allows (an outbox drained in one syscall instead of one syscall
per frame), and :class:`FrameReader` turns each ``recv`` into every
complete frame it delivered instead of exactly one.  Both preserve the
frame format bit-for-bit — a batched sender interoperates with a
frame-at-a-time receiver and vice versa.
"""

from __future__ import annotations

import socket
from typing import List, Optional, Tuple, Union

from ..serial.wire import (
    FRAME_HEADER_BYTES,
    FRAME_VERSION,
    Segment,
    WireError,
    frame,
)
from ..serial.wire import _FRAME_HEADER  # shared header layout

__all__ = [
    "send_message",
    "send_messages",
    "recv_message",
    "FrameReader",
    "MAX_SENDMSG_SEGMENTS",
    "DEFAULT_MAX_BATCH_BYTES",
    "DEFAULT_RECV_BYTES",
]

#: Cap on buffers per ``sendmsg`` call, below every platform's IOV_MAX.
MAX_SENDMSG_SEGMENTS = 512

#: Default byte budget per ``sendmsg`` in :func:`send_messages`.
DEFAULT_MAX_BATCH_BYTES = 1 << 20

#: Default ``recv`` size for :class:`FrameReader`.
DEFAULT_RECV_BYTES = 1 << 18


def _as_byte_views(segments: List[Segment]) -> List[memoryview]:
    views = []
    for seg in segments:
        view = seg if type(seg) is memoryview else memoryview(seg)
        if view.format != "B" or view.ndim != 1:
            view = view.cast("B")
        views.append(view)
    return views


def send_message(sock: socket.socket,
                 payload: Union[bytes, bytearray, memoryview, List[Segment]],
                 ) -> int:
    """Send one framed message; returns total bytes written.

    *payload* is the message body — a single buffer or a scatter-gather
    segment list (e.g. a protocol header followed by
    ``encode_segments()`` output).  Segments are never coalesced; partial
    sends are resumed with sliced views.
    """
    views = _as_byte_views(frame(payload))
    total = sum(v.nbytes for v in views)
    while views:
        sent = sock.sendmsg(views[:MAX_SENDMSG_SEGMENTS])
        while views and sent >= views[0].nbytes:
            sent -= views[0].nbytes
            views.pop(0)
        if sent and views:
            views[0] = views[0][sent:]
    return total


def send_messages(sock: socket.socket,
                  payloads: List[Union[bytes, bytearray, memoryview,
                                       List[Segment]]],
                  *, max_batch_bytes: int = DEFAULT_MAX_BATCH_BYTES,
                  ) -> Tuple[int, int]:
    """Send many framed messages with as few ``sendmsg`` calls as possible.

    All payloads are framed up front, then their segments are flushed in
    chunks bounded by ``MAX_SENDMSG_SEGMENTS`` (below every platform's
    IOV_MAX) and *max_batch_bytes*; a segment larger than the byte budget
    still goes out whole (segments are never split except to resume a
    partial send).  Frame boundaries on the wire are identical to calling
    :func:`send_message` once per payload.  Returns
    ``(total_bytes, syscalls)``.
    """
    views: List[memoryview] = []
    for payload in payloads:
        views.extend(_as_byte_views(frame(payload)))
    total = sum(v.nbytes for v in views)
    syscalls = 0
    i, n = 0, len(views)
    while i < n:
        j, batch_bytes = i, 0
        while j < n and j - i < MAX_SENDMSG_SEGMENTS:
            nbytes = views[j].nbytes
            if j > i and batch_bytes + nbytes > max_batch_bytes:
                break
            batch_bytes += nbytes
            j += 1
        sent = sock.sendmsg(views[i:j])
        syscalls += 1
        while i < j and sent >= views[i].nbytes:
            sent -= views[i].nbytes
            i += 1
        if sent:
            views[i] = views[i][sent:]
    return total, syscalls


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytearray]:
    """Read exactly *n* bytes; ``None`` on clean EOF before any byte."""
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        received = sock.recv_into(view[got:], n - got)
        if received == 0:
            if got == 0:
                return None
            raise WireError(
                f"connection closed mid-message: got {got} of {n} bytes"
            )
        got += received
    return buf


def recv_message(sock: socket.socket) -> Optional[bytearray]:
    """Read one framed message; returns its payload, or ``None`` on EOF.

    The returned ``bytearray`` is freshly allocated and owned by the
    caller, so tokens may be decoded out of it with ``copy=False``.
    Raises :class:`~repro.serial.wire.WireError` on a version mismatch or
    a connection that dies mid-message.
    """
    header = _recv_exact(sock, FRAME_HEADER_BYTES)
    if header is None:
        return None
    length, version = _FRAME_HEADER.unpack_from(header)
    if version != FRAME_VERSION:
        raise WireError(
            f"frame protocol version mismatch: got {version}, "
            f"expected {FRAME_VERSION}"
        )
    payload = _recv_exact(sock, length)
    if payload is None and length > 0:
        raise WireError("connection closed between header and payload")
    return payload if payload is not None else bytearray()


class FrameReader:
    """Batch-aware framed-message reader for one stream socket.

    A sender draining its outbox with :func:`send_messages` packs many
    frames into each TCP segment; reading them back one blocking
    ``recv`` per frame would undo the batching on the receive side.
    :meth:`recv_batch` instead decodes *every* complete frame each
    ``recv`` delivers.  Payloads are returned as freshly-allocated
    ``bytearray`` objects owned by the caller (``decode(copy=False)``
    safe), exactly like :func:`recv_message`.

    Frames larger than the staging buffer are read straight into their
    own destination buffer (one copy, no staging-buffer growth), so the
    large-payload path stays as cheap as the frame-at-a-time reader.
    Every ``recv`` lands in one persistent staging buffer via
    ``recv_into`` — the reader itself allocates nothing per call beyond
    the frames it hands back.

    :meth:`recv_ready` is the non-blocking flavour for the event-loop
    I/O core: called on read-readiness, it drains the socket until
    ``EAGAIN`` and returns every complete frame plus an EOF flag, with
    partial frames (including a partially-received oversized frame)
    carried across calls.
    """

    def __init__(self, sock: socket.socket, *,
                 recv_bytes: int = DEFAULT_RECV_BYTES):
        self._sock = sock
        self._recv_bytes = recv_bytes
        self._buf = bytearray()
        # Persistent staging buffer reused across every recv.
        self._staging = bytearray(recv_bytes)
        self._staging_view = memoryview(self._staging)
        # Incremental oversized-frame state: destination buffer, its
        # view, and how many payload bytes have landed so far.
        self._large_buf: Optional[bytearray] = None
        self._large_view: Optional[memoryview] = None
        self._large_have = 0

    def recv_batch(self) -> Optional[List[bytearray]]:
        """Block until at least one complete frame is available.

        Returns every complete frame received so far (at least one), or
        ``None`` on clean EOF.  Raises :class:`~repro.serial.wire.WireError`
        on a version mismatch or a connection that dies mid-frame.
        """
        while True:
            got, _ = self._recv_once()
            if got == 0:
                self._check_clean_eof()
                return None
            frames = self._harvest()
            if frames:
                return frames

    def recv_ready(self) -> Tuple[List[bytearray], bool]:
        """Drain a non-blocking socket without blocking.

        Returns ``(frames, eof)``: every complete frame the socket had
        ready, and whether it reached EOF.  Partial frames are carried
        over to the next call.  Raises
        :class:`~repro.serial.wire.WireError` on a version mismatch or
        EOF mid-frame.
        """
        frames: List[bytearray] = []
        while True:
            try:
                got, asked = self._recv_once()
            except (BlockingIOError, InterruptedError):
                return frames, False
            if got == 0:
                self._check_clean_eof()
                return frames, True
            frames.extend(self._harvest())
            if got < asked:
                # Short read == the kernel buffer is drained; skip the
                # EAGAIN probe recv.  If more bytes race in, the
                # level-triggered selector re-fires immediately.
                return frames, False

    # -- internals ------------------------------------------------------
    def _recv_once(self) -> "Tuple[int, int]":
        """One ``recv_into`` step; ``(received, asked)``, 0 == EOF."""
        if self._large_buf is not None:
            need = len(self._large_buf) - self._large_have
            got = self._sock.recv_into(self._large_view[self._large_have:],
                                       need)
            self._large_have += got
            return got, need
        got = self._sock.recv_into(self._staging_view, self._recv_bytes)
        if got:
            self._buf += self._staging_view[:got]
        return got, self._recv_bytes

    def _harvest(self) -> List[bytearray]:
        """Emit every frame completed so far; arm oversized mode."""
        frames: List[bytearray] = []
        large = self._large_buf
        if large is not None:
            if self._large_have < len(large):
                return frames
            self._large_buf = self._large_view = None
            self._large_have = 0
            frames.append(large)
        frames.extend(self._extract_frames())
        buf = self._buf
        if len(buf) >= FRAME_HEADER_BYTES:
            # _extract_frames validated the header; if the pending frame
            # dwarfs the staging buffer, stream the rest of its payload
            # directly into the destination bytearray.
            length = _FRAME_HEADER.unpack_from(buf, 0)[0]
            if length > self._recv_bytes:
                self._begin_large(length)
        return frames

    def _begin_large(self, length: int) -> None:
        buf = self._buf
        out = bytearray(length)
        view = memoryview(out)
        have = len(buf) - FRAME_HEADER_BYTES
        # All buffered bytes past the header belong to this frame —
        # _extract_frames already consumed every complete predecessor.
        view[:have] = memoryview(buf)[FRAME_HEADER_BYTES:]
        buf.clear()
        self._large_buf = out
        self._large_view = view
        self._large_have = have

    def _check_clean_eof(self) -> None:
        if self._large_buf is not None:
            raise WireError(
                f"connection closed mid-message: got {self._large_have} "
                f"of {len(self._large_buf)} bytes"
            )
        if self._buf:
            raise WireError(
                f"connection closed mid-message: {len(self._buf)} "
                f"trailing bytes"
            )

    def _extract_frames(self) -> List[bytearray]:
        buf = self._buf
        frames: List[bytearray] = []
        pos, n = 0, len(buf)
        while n - pos >= FRAME_HEADER_BYTES:
            length, version = _FRAME_HEADER.unpack_from(buf, pos)
            if version != FRAME_VERSION:
                raise WireError(
                    f"frame protocol version mismatch: got {version}, "
                    f"expected {FRAME_VERSION}"
                )
            end = pos + FRAME_HEADER_BYTES + length
            if end > n:
                break
            frames.append(bytearray(memoryview(buf)[pos + FRAME_HEADER_BYTES:end]))
            pos = end
        if pos:
            del buf[:pos]
        return frames
