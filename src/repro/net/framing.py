"""Framed message I/O over stream sockets (zero-copy send path).

One *message* on the wire is a :func:`repro.serial.wire.frame` header
(length prefix + protocol-version byte) followed by the payload bytes.
:func:`send_message` transmits the payload as a scatter-gather segment
list via vectored ``sendmsg`` calls, so large
:func:`~repro.serial.wire.encode_segments` payloads (borrowed ndarray
memoryviews) go from the array's own storage to the kernel socket buffer
without ever being coalesced into an intermediate Python buffer — the
"pointer-arithmetic serializer straight onto the wire" behaviour of the
C++ library.  :func:`recv_message` reads exactly one message and returns
an *owned* ``bytearray``, suitable for ``decode(copy=False)``.
"""

from __future__ import annotations

import socket
from typing import List, Optional, Union

from ..serial.wire import (
    FRAME_HEADER_BYTES,
    FRAME_VERSION,
    Segment,
    WireError,
    frame,
)
from ..serial.wire import _FRAME_HEADER  # shared header layout

__all__ = ["send_message", "recv_message", "MAX_SENDMSG_SEGMENTS"]

#: Cap on buffers per ``sendmsg`` call, below every platform's IOV_MAX.
MAX_SENDMSG_SEGMENTS = 512


def _as_byte_views(segments: List[Segment]) -> List[memoryview]:
    views = []
    for seg in segments:
        view = seg if type(seg) is memoryview else memoryview(seg)
        if view.format != "B" or view.ndim != 1:
            view = view.cast("B")
        views.append(view)
    return views


def send_message(sock: socket.socket,
                 payload: Union[bytes, bytearray, memoryview, List[Segment]],
                 ) -> int:
    """Send one framed message; returns total bytes written.

    *payload* is the message body — a single buffer or a scatter-gather
    segment list (e.g. a protocol header followed by
    ``encode_segments()`` output).  Segments are never coalesced; partial
    sends are resumed with sliced views.
    """
    views = _as_byte_views(frame(payload))
    total = sum(v.nbytes for v in views)
    while views:
        sent = sock.sendmsg(views[:MAX_SENDMSG_SEGMENTS])
        while views and sent >= views[0].nbytes:
            sent -= views[0].nbytes
            views.pop(0)
        if sent and views:
            views[0] = views[0][sent:]
    return total


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytearray]:
    """Read exactly *n* bytes; ``None`` on clean EOF before any byte."""
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        received = sock.recv_into(view[got:], n - got)
        if received == 0:
            if got == 0:
                return None
            raise WireError(
                f"connection closed mid-message: got {got} of {n} bytes"
            )
        got += received
    return buf


def recv_message(sock: socket.socket) -> Optional[bytearray]:
    """Read one framed message; returns its payload, or ``None`` on EOF.

    The returned ``bytearray`` is freshly allocated and owned by the
    caller, so tokens may be decoded out of it with ``copy=False``.
    Raises :class:`~repro.serial.wire.WireError` on a version mismatch or
    a connection that dies mid-message.
    """
    header = _recv_exact(sock, FRAME_HEADER_BYTES)
    if header is None:
        return None
    length, version = _FRAME_HEADER.unpack(bytes(header))
    if version != FRAME_VERSION:
        raise WireError(
            f"frame protocol version mismatch: got {version}, "
            f"expected {FRAME_VERSION}"
        )
    payload = _recv_exact(sock, length)
    if payload is None and length > 0:
        raise WireError("connection closed between header and payload")
    return payload if payload is not None else bytearray()
