"""Node model: a cluster machine with CPUs and NIC endpoints.

A :class:`NodeSpec` describes a machine (how many CPUs, effective FLOP
rate); binding a spec to a simulator yields a :class:`Node` holding the
simulation resources: a counting CPU resource (capacity = number of CPUs,
the paper's machines are bi-processor) and full-duplex NIC send/receive
resources used by :class:`~repro.cluster.network.Network`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..simkernel import Resource, Simulator

__all__ = ["NodeSpec", "Node"]


@dataclass(frozen=True)
class NodeSpec:
    """Static description of a machine.

    Parameters mirror the paper's testbed: bi-processor 733 MHz Pentium
    III PCs.  ``flops`` is the *effective* double-precision rate of the
    unoptimized C++ kernels the paper used (no tuned BLAS), not the chip's
    peak.
    """

    name: str
    cpus: int = 2
    flops: float = 80e6
    #: Delay charged when the DPS kernel lazily launches an application
    #: instance on this node (paper §4: ~1 s for full 8-node startup).
    launch_delay: float = 0.125
    #: Physical machine hosting this node.  Defaults to the node name;
    #: several nodes may share a host (the paper's multiple-kernels-per-
    #: host debugging setup), in which case transfers between them use
    #: the loopback parameters of the network model.
    host: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")
        if not self.host:
            object.__setattr__(self, "host", self.name)
        if self.cpus < 1:
            raise ValueError("node needs at least one CPU")
        if self.flops <= 0:
            raise ValueError("flops must be positive")
        if self.launch_delay < 0:
            raise ValueError("launch_delay must be >= 0")


class Node:
    """A machine bound to a running simulation."""

    def __init__(self, sim: Simulator, spec: NodeSpec):
        self.sim = sim
        self.spec = spec
        self.cpu = Resource(sim, capacity=spec.cpus, name=f"{spec.name}.cpu")
        self.nic_tx = Resource(sim, capacity=1, name=f"{spec.name}.tx")
        self.nic_rx = Resource(sim, capacity=1, name=f"{spec.name}.rx")
        #: Cumulative virtual seconds of computation charged on this node.
        self.compute_time = 0.0

    @property
    def name(self) -> str:
        return self.spec.name

    def compute_seconds(self, seconds: float):
        """Process: occupy one CPU for *seconds* of virtual time."""
        if seconds < 0:
            raise ValueError("compute time must be >= 0")
        req = self.cpu.request()
        yield req
        try:
            yield self.sim.timeout(seconds)
            self.compute_time += seconds
        finally:
            req.release()

    def compute_flops(self, flops: float):
        """Process: occupy one CPU for ``flops / spec.flops`` seconds."""
        return self.compute_seconds(flops / self.spec.flops)

    def seconds_for_flops(self, flops: float) -> float:
        """Virtual duration of a computation of *flops* on this node."""
        return flops / self.spec.flops

    def cpu_utilization(self) -> float:
        """Fraction of available CPU-time spent computing so far."""
        return self.cpu.utilization()

    def __repr__(self) -> str:
        return f"<Node {self.spec.name} cpus={self.spec.cpus}>"
