"""Cluster assembly and the paper's testbed preset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..simkernel import Simulator
from .network import Network, NetworkSpec
from .node import Node, NodeSpec

__all__ = ["ClusterSpec", "Cluster", "paper_cluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """Static cluster description: machines plus interconnect."""

    nodes: tuple[NodeSpec, ...]
    network: NetworkSpec = field(default_factory=NetworkSpec)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("cluster needs at least one node")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names: {names}")

    @property
    def node_names(self) -> List[str]:
        return [n.name for n in self.nodes]

    def with_nodes(self, count: int) -> "ClusterSpec":
        """A copy restricted to the first *count* nodes."""
        if not 1 <= count <= len(self.nodes):
            raise ValueError(
                f"cannot take {count} nodes from a {len(self.nodes)}-node cluster"
            )
        return ClusterSpec(self.nodes[:count], self.network)


class Cluster:
    """A cluster spec bound to a simulator: live nodes plus network."""

    def __init__(self, sim: Simulator, spec: ClusterSpec):
        self.sim = sim
        self.spec = spec
        self.nodes: Dict[str, Node] = {
            ns.name: Node(sim, ns) for ns in spec.nodes
        }
        self.network = Network(sim, spec.network)

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise KeyError(
                f"unknown node {name!r}; cluster has {sorted(self.nodes)}"
            ) from None

    def add_node(self, spec: NodeSpec) -> Node:
        """Grow the live cluster by one machine (elastic membership).

        The frozen :class:`ClusterSpec` is rebuilt to include the new
        node, so later inspection (``cluster.spec.node_names``) reflects
        the grown topology.
        """
        if spec.name in self.nodes:
            raise ValueError(
                f"node {spec.name!r} already in cluster {sorted(self.nodes)}"
            )
        node = Node(self.sim, spec)
        self.nodes[spec.name] = node
        self.spec = ClusterSpec(self.spec.nodes + (spec,), self.spec.network)
        return node

    @property
    def node_names(self) -> List[str]:
        return list(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)


def paper_cluster(
    n_nodes: int = 8,
    cpus: int = 2,
    flops: float = 80e6,
    network: NetworkSpec | None = None,
    name_prefix: str = "node",
) -> ClusterSpec:
    """The testbed of the paper's evaluation (section 4).

    Eight bi-processor 733 MHz Pentium III PCs with 512 MB RAM behind a
    Gigabit Ethernet switch.  ``flops`` is the effective rate of the
    paper's plain C++ numeric kernels ("no optimized linear algebra
    library was used").
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    nodes = tuple(
        NodeSpec(name=f"{name_prefix}{i + 1:02d}", cpus=cpus, flops=flops)
        for i in range(n_nodes)
    )
    return ClusterSpec(nodes=nodes, network=network or NetworkSpec())
