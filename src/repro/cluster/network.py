"""Network model: full-duplex NICs behind a non-blocking switch.

The model follows the LogGP family: a message of ``S`` bytes from node A
to node B costs

- ``send_overhead + S / bandwidth`` on A's transmit NIC (FIFO),
- ``latency`` of wire/switch propagation,
- ``recv_overhead + S / bandwidth`` on B's receive NIC (FIFO),

with transmit and receive pipelined across successive messages, so a
steady unidirectional stream saturates at ``bandwidth`` and a node can
send and receive simultaneously at full rate (full duplex, as the ring
experiment of the paper's Figure 6 requires).  The switch backplane is
non-blocking (a Gigabit switch), so contention arises only at NICs.

Intra-node transfers bypass the NIC entirely and cost ``local_delay``
(the paper: "the pointer to the data object is transferred directly
to the destination thread ... at a negligible cost").

Calibration: defaults are tuned so a socket-level ring throughput sweep
reproduces the paper's Figure 6 socket curve (rising from a few MB/s at
1 KB transfers to a ≈35–40 MB/s plateau at 100 KB–1 MB on Gigabit
Ethernet with a Windows-2000-era stack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..simkernel import Event, Process, Simulator
from .node import Node

__all__ = ["NetworkSpec", "Network", "Message"]


@dataclass(frozen=True)
class NetworkSpec:
    """Static description of the interconnect."""

    #: Effective per-direction NIC bandwidth in bytes/second (the paper's
    #: Gigabit switch sustains ~35-40 MB/s with a Windows-2000-era stack).
    bandwidth: float = 40e6
    #: Wire + switch propagation latency in seconds.
    latency: float = 60e-6
    #: Per-message software overhead on the sender (syscall, stack).
    send_overhead: float = 150e-6
    #: Per-message software overhead on the receiver.
    recv_overhead: float = 150e-6
    #: Cost of handing a message to a thread on the same node (pointer pass).
    local_delay: float = 2e-6
    #: One-time cost of opening a TCP connection between two application
    #: instances, charged on the initiator's network stack when the first
    #: data object needs to reach that node (the paper's delayed
    #: connection mechanism, §4).
    connect_overhead: float = 60e-3
    #: Loopback parameters for nodes sharing a physical host (the
    #: debugging setup of paper §4: multiple kernels on one machine
    #: exercise the full networking code over the local TCP stack).
    loopback_bandwidth: float = 250e6
    loopback_latency: float = 10e-6
    loopback_send_overhead: float = 30e-6
    loopback_recv_overhead: float = 30e-6

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.loopback_bandwidth <= 0:
            raise ValueError("loopback_bandwidth must be positive")
        for attr in ("latency", "send_overhead", "recv_overhead", "local_delay",
                     "loopback_latency", "loopback_send_overhead",
                     "loopback_recv_overhead", "connect_overhead"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0")

    def wire_time(self, nbytes: int) -> float:
        """Time for *nbytes* to cross one NIC direction."""
        return nbytes / self.bandwidth

    def message_time(self, nbytes: int) -> float:
        """End-to-end time of an isolated message (no contention)."""
        return (
            self.send_overhead
            + self.wire_time(nbytes)
            + self.latency
            + self.recv_overhead
            + self.wire_time(nbytes)
        )


class Message:
    """A payload in flight between two nodes."""

    __slots__ = ("src", "dst", "nbytes", "payload", "sent_at", "delivered_at")

    def __init__(self, src: str, dst: str, nbytes: int, payload: Any = None,
                 sent_at: float = 0.0, delivered_at: float = 0.0):
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.payload = payload
        self.sent_at = sent_at
        self.delivered_at = delivered_at

    def __repr__(self) -> str:
        return (f"Message(src={self.src!r}, dst={self.dst!r}, "
                f"nbytes={self.nbytes}, payload={self.payload!r}, "
                f"sent_at={self.sent_at}, delivered_at={self.delivered_at})")


class Network:
    """The interconnect bound to a running simulation.

    :meth:`transfer` moves a payload between nodes and returns an
    :class:`~repro.simkernel.Event` that succeeds with the
    :class:`Message` when it has been fully received.
    """

    def __init__(self, sim: Simulator, spec: NetworkSpec):
        self.sim = sim
        self.spec = spec
        # traffic accounting
        self.bytes_sent = 0
        self.messages_sent = 0
        self.local_messages = 0
        self.loopback_messages = 0

    def transfer(
        self,
        src: Node,
        dst: Node,
        nbytes: int,
        payload: Any = None,
        on_delivered: Optional[Callable[[Message], None]] = None,
        tx_extra: float = 0.0,
        rx_extra: float = 0.0,
    ) -> Event:
        """Start moving *nbytes* from *src* to *dst*.

        Returns an event succeeding with the :class:`Message` once the
        receiver has it.  ``on_delivered`` (if given) runs at delivery
        time before the event triggers.  ``tx_extra`` / ``rx_extra`` add
        per-message inline costs to the NIC occupancy (the DPS
        communication-layer overhead).
        """
        if nbytes < 0:
            raise ValueError("message size must be >= 0")
        sim = self.sim
        msg = Message(src.name, dst.name, nbytes, payload, sent_at=sim.now)
        done = Event(sim)
        if src is dst:
            self.local_messages += 1
            Process(sim, _local_xfer(sim, self.spec.local_delay, msg,
                                     on_delivered, done), "local")
            return done

        self.messages_sent += 1
        self.bytes_sent += nbytes
        if src.spec.host == dst.spec.host:
            # distinct kernels on one machine: loopback TCP, full
            # networking code but no physical wire
            send_oh = self.spec.loopback_send_overhead
            recv_oh = self.spec.loopback_recv_overhead
            latency = self.spec.loopback_latency
            wire = nbytes / self.spec.loopback_bandwidth
            self.loopback_messages += 1
        else:
            send_oh = self.spec.send_overhead
            recv_oh = self.spec.recv_overhead
            latency = self.spec.latency
            wire = self.spec.wire_time(nbytes)
        Process(sim, _remote_xfer(sim, src, dst, send_oh + tx_extra + wire,
                                  latency, recv_oh + rx_extra + wire, msg,
                                  on_delivered, done), "xfer")
        return done


def _local_xfer(sim, delay, msg, on_delivered, done):
    yield sim.timeout(delay)
    msg.delivered_at = sim.now
    if on_delivered:
        on_delivered(msg)
    done.succeed(msg)


def _remote_xfer(sim, src, dst, tx_time, latency, rx_time, msg,
                 on_delivered, done):
    tx = src.nic_tx.request()
    yield tx
    try:
        yield sim.timeout(tx_time)
    finally:
        tx.release()
    yield sim.timeout(latency)
    rx = dst.nic_rx.request()
    yield rx
    try:
        yield sim.timeout(rx_time)
    finally:
        rx.release()
    msg.delivered_at = sim.now
    if on_delivered:
        on_delivered(msg)
    done.succeed(msg)
