"""Cost models: virtual compute durations for the paper's kernels.

The simulated cluster charges operations with virtual CPU seconds derived
from classic flop counts.  Keeping these formulas in one module makes the
calibration auditable and lets benchmarks reason about communication /
computation ratios analytically (as Table 1 of the paper does).
"""

from __future__ import annotations

__all__ = [
    "dps_wire_overhead_seconds",
    "matmul_flops",
    "matmul_accumulate_flops",
    "lu_panel_flops",
    "trsm_flops",
    "gol_cell_flops",
    "gol_band_flops",
    "gol_read_flops",
    "serialize_cpu_seconds",
    "MEMCPY_BYTES_PER_SECOND",
    "SERIALIZE_PER_MESSAGE_SECONDS",
]

#: Effective memory-copy bandwidth of the paper's PCs (PIII-733, PC133
#: SDRAM): used to charge CPU time for token serialization copies.
MEMCPY_BYTES_PER_SECOND = 250e6

#: Fixed per-message CPU cost of building/parsing DPS token control
#: structures (graph position, group frames).
SERIALIZE_PER_MESSAGE_SECONDS = 50e-6


def matmul_flops(m: int, n: int, k: int) -> float:
    """Flops of a dense ``(m×k) @ (k×n)`` multiply (fused multiply-add = 2)."""
    return 2.0 * m * n * k


def matmul_accumulate_flops(m: int, n: int, k: int) -> float:
    """Flops of ``C += A @ B`` — same leading term as :func:`matmul_flops`."""
    return 2.0 * m * n * k + m * n


def lu_panel_flops(rows: int, cols: int) -> float:
    """Flops of a rectangular LU panel factorization with partial pivoting.

    For an ``rows × cols`` panel (rows ≥ cols) eliminating ``cols``
    columns, step j scales the pivot column and applies a rank-1 update:
    ``sum_j 2·(rows−j)·(cols−j) ≈ rows·cols² − cols³/3`` flops.
    """
    r, c = float(rows), float(cols)
    return 2.0 * (r * c * c - (r + c) * c * (c - 1) / 2.0 + c * (c - 1) * (2 * c - 1) / 6.0)


def trsm_flops(rows: int, cols: int) -> float:
    """Flops of a triangular solve ``L⁻¹ · B`` with L ``rows×rows``, B ``rows×cols``."""
    return float(rows) * rows * cols


def gol_cell_flops(cells: int) -> float:
    """Equivalent flops for updating *cells* Game-of-Life cells.

    A cell update is 8 neighbour adds plus rule logic; the paper's C++
    implementation spends roughly 25 simple operations per cell.
    """
    return 25.0 * cells


def gol_band_flops(width: int, rows: int) -> float:
    """Equivalent flops for updating a band of ``rows`` lines of ``width``."""
    return gol_cell_flops(width * rows)


def gol_read_flops(cells: int) -> float:
    """Equivalent flops for reading *cells* world cells into a block.

    Extracting a sub-block walks the cells with bounds handling (the
    paper's Table 2 "processing time: reading the world data from
    memory"), costing roughly 10 simple operations per cell.
    """
    return 10.0 * cells


#: Per-byte descriptor-touching cost of the DPS serializer.  The paper's
#: serializer works "with pointer arithmetic ... without requiring
#: redundant data declarations" — it avoids bulk copies, so the inline
#: per-byte cost is tiny (the payload itself is streamed by the NIC).
SERIALIZE_TOUCH_SECONDS_PER_BYTE = 1e-9


def serialize_cpu_seconds(nbytes: int) -> float:
    """CPU time to serialize or deserialize a token of *nbytes*.

    One traversal copy at memcpy speed plus the fixed control-structure
    cost — used where a full copy is actually made (e.g. reading world
    blocks out of thread storage).
    """
    return SERIALIZE_PER_MESSAGE_SECONDS + nbytes / MEMCPY_BYTES_PER_SECOND


def dps_wire_overhead_seconds(nbytes: int) -> float:
    """Inline communication-layer cost of one DPS data object.

    Charged on the NIC occupancy on each side of a transfer: building /
    parsing the control structures plus the near-zero-copy serializer
    traversal.  This is the overhead Figure 6 quantifies against raw
    sockets.
    """
    return SERIALIZE_PER_MESSAGE_SECONDS + nbytes * SERIALIZE_TOUCH_SECONDS_PER_BYTE
