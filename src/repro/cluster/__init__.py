"""Hardware model substrate: nodes, network, cluster presets, cost models."""

from . import costs
from .cluster import Cluster, ClusterSpec, paper_cluster
from .network import Message, Network, NetworkSpec
from .node import Node, NodeSpec

__all__ = [
    "Cluster",
    "ClusterSpec",
    "Message",
    "Network",
    "NetworkSpec",
    "Node",
    "NodeSpec",
    "costs",
    "paper_cluster",
]
