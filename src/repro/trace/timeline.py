"""Text reports over traces: per-node activity timelines and summaries.

The flow graph "can be easily visualized and represents therefore a
valuable tool for thinking and experimenting with different
parallelization strategies" (paper §6); these helpers provide the
terminal-friendly equivalent for *executions*: who fired what when, and
how busy each node was.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional

from .tracer import Tracer

__all__ = ["activity_timeline", "op_summary", "message_summary",
           "op_durations", "utilization_report"]


def activity_timeline(
    tracer: Tracer,
    width: int = 72,
    until: Optional[float] = None,
) -> str:
    """An ASCII density timeline of op firings per node.

    Each row is a node; each column a time bucket; the glyph encodes how
    many operations fired in that bucket (`` .:-=+*#%@`` scale).
    """
    events = tracer.filter("op_token")
    if not events:
        return "(no op events traced)"
    t_end = until if until is not None else max(ev.time for ev in events)
    t_end = max(t_end, 1e-12)
    buckets: Dict[str, List[int]] = defaultdict(lambda: [0] * width)
    for ev in events:
        col = min(int(ev.time / t_end * width), width - 1)
        buckets[ev.fields["node"]][col] += 1
    glyphs = " .:-=+*#%@"
    peak = max(max(row) for row in buckets.values()) or 1
    lines = [f"timeline 0 .. {t_end:.6g} s ({width} buckets)"]
    for node in sorted(buckets):
        row = buckets[node]
        chars = "".join(
            glyphs[min(int(c / peak * (len(glyphs) - 1) + (c > 0)), len(glyphs) - 1)]
            for c in row
        )
        lines.append(f"{node:>10} |{chars}|")
    return "\n".join(lines)


def op_summary(tracer: Tracer) -> str:
    """Operation firing counts per (node, op) pair."""
    counts = Counter(
        (ev.fields["node"], ev.fields["op"]) for ev in tracer.filter("op_token")
    )
    if not counts:
        return "(no op events traced)"
    lines = [f"{'node':>10} {'operation':<24} firings"]
    for (node, op), n in sorted(counts.items()):
        lines.append(f"{node:>10} {op:<24} {n}")
    return "\n".join(lines)


def message_summary(tracer: Tracer) -> str:
    """Bytes and message counts per (src, dest) pair."""
    bytes_by_pair: Dict[tuple, int] = Counter()
    msgs_by_pair: Dict[tuple, int] = Counter()
    for ev in tracer.filter("msg"):
        pair = (ev.fields["src"], ev.fields["dest"])
        bytes_by_pair[pair] += ev.fields["nbytes"]
        msgs_by_pair[pair] += 1
    if not msgs_by_pair:
        return "(no messages traced)"
    lines = [f"{'src':>10} -> {'dest':<10} {'messages':>9} {'bytes':>12}"]
    for pair in sorted(msgs_by_pair):
        lines.append(
            f"{pair[0]:>10} -> {pair[1]:<10} {msgs_by_pair[pair]:>9} "
            f"{bytes_by_pair[pair]:>12}"
        )
    return "\n".join(lines)


def op_durations(tracer: Tracer) -> str:
    """Total/mean busy duration per operation (from op_done events).

    Durations include time a merge/stream body spent parked waiting for
    its group, so long-lived collectors legitimately dominate.
    """
    totals: Dict[tuple, float] = defaultdict(float)
    counts: Dict[tuple, int] = Counter()
    for ev in tracer.filter("op_done"):
        key = (ev.fields["node"], ev.fields["op"])
        totals[key] += ev.fields["duration"]
        counts[key] += 1
    if not counts:
        return "(no op_done events traced)"
    lines = [f"{'node':>10} {'operation':<24} {'bodies':>7} "
             f"{'total [s]':>10} {'mean [ms]':>10}"]
    for key in sorted(counts):
        n = counts[key]
        total = totals[key]
        lines.append(
            f"{key[0]:>10} {key[1]:<24} {n:>7} {total:>10.4f} "
            f"{total / n * 1e3:>10.3f}"
        )
    return "\n".join(lines)


def utilization_report(engine) -> str:
    """CPU and NIC busy fractions per node of a finished (or paused) run.

    Reads the resource occupancy integrals of the simulated cluster —
    the quickest way to see whether a schedule is compute-, send- or
    receive-bound on each machine.
    """
    elapsed = engine.sim.now
    if elapsed <= 0:
        return "(no virtual time has passed)"
    lines = [
        f"utilization over {elapsed:.6g} virtual seconds",
        f"{'node':>10} {'cpu':>7} {'nic tx':>7} {'nic rx':>7} "
        f"{'compute [s]':>12}",
    ]
    for name, node in sorted(engine.cluster.nodes.items()):
        lines.append(
            f"{name:>10} {node.cpu.utilization() * 100:>6.1f}% "
            f"{node.nic_tx.utilization() * 100:>6.1f}% "
            f"{node.nic_rx.utilization() * 100:>6.1f}% "
            f"{node.compute_time:>12.4f}"
        )
    return "\n".join(lines)
