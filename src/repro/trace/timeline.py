"""Reports and exports over traces: text timelines and Chrome trace JSON.

The flow graph "can be easily visualized and represents therefore a
valuable tool for thinking and experimenting with different
parallelization strategies" (paper §6); these helpers provide the
equivalent for *executions*: terminal-friendly summaries of who fired
what when and how busy each node was, plus a Chrome trace-event JSON
export (:func:`export_chrome_trace`) loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing`` for interactive
inspection of computation/communication overlap.

All report functions consume the unified event vocabulary of
:mod:`repro.trace.events`, so they work identically on traces from the
simulated, threaded and multiprocess engines.  Real-engine timestamps
are raw monotonic seconds; every report normalises to the first event.
"""

from __future__ import annotations

import json
from collections import Counter, defaultdict
from typing import Any, Dict, List, Optional

from . import events as ev_kinds
from .tracer import Tracer

__all__ = ["activity_timeline", "op_summary", "message_summary",
           "op_durations", "utilization_report",
           "chrome_trace_events", "export_chrome_trace"]


def activity_timeline(
    tracer: Tracer,
    width: int = 72,
    until: Optional[float] = None,
) -> str:
    """An ASCII density timeline of op firings per node.

    Each row is a node; each column a time bucket; the glyph encodes how
    many operations fired in that bucket (`` .:-=+*#%@`` scale).  Times
    are relative to the first token arrival (real engines trace raw
    monotonic clocks).
    """
    events = tracer.filter(ev_kinds.TOKEN_RECV)
    if not events:
        return "(no op events traced)"
    t0 = min(ev.time for ev in events)
    t_end = (until if until is not None
             else max(ev.time for ev in events) - t0)
    t_end = max(t_end, 1e-12)
    buckets: Dict[str, List[int]] = defaultdict(lambda: [0] * width)
    for ev in events:
        col = min(int((ev.time - t0) / t_end * width), width - 1)
        buckets[ev.fields["node"]][col] += 1
    glyphs = " .:-=+*#%@"
    peak = max(max(row) for row in buckets.values()) or 1
    lines = [f"timeline 0 .. {t_end:.6g} s ({width} buckets)"]
    for node in sorted(buckets):
        row = buckets[node]
        chars = "".join(
            glyphs[min(int(c / peak * (len(glyphs) - 1) + (c > 0)), len(glyphs) - 1)]
            for c in row
        )
        lines.append(f"{node:>10} |{chars}|")
    return "\n".join(lines)


def op_summary(tracer: Tracer) -> str:
    """Token-arrival counts per (node, op) pair."""
    counts = Counter(
        (ev.fields["node"], ev.fields["op"])
        for ev in tracer.filter(ev_kinds.TOKEN_RECV)
    )
    if not counts:
        return "(no op events traced)"
    lines = [f"{'node':>10} {'operation':<24} firings"]
    for (node, op), n in sorted(counts.items()):
        lines.append(f"{node:>10} {op:<24} {n}")
    return "\n".join(lines)


def message_summary(tracer: Tracer) -> str:
    """Bytes and message counts per (src, dest) pair."""
    bytes_by_pair: Dict[tuple, int] = Counter()
    msgs_by_pair: Dict[tuple, int] = Counter()
    for ev in tracer.filter(ev_kinds.TOKEN_SEND):
        pair = (ev.fields["src"], ev.fields["dest"])
        bytes_by_pair[pair] += ev.fields["nbytes"]
        msgs_by_pair[pair] += 1
    if not msgs_by_pair:
        return "(no messages traced)"
    lines = [f"{'src':>10} -> {'dest':<10} {'messages':>9} {'bytes':>12}"]
    for pair in sorted(msgs_by_pair):
        lines.append(
            f"{pair[0]:>10} -> {pair[1]:<10} {msgs_by_pair[pair]:>9} "
            f"{bytes_by_pair[pair]:>12}"
        )
    return "\n".join(lines)


def op_durations(tracer: Tracer) -> str:
    """Total/mean busy duration per operation (from op_end events).

    Durations include time a merge/stream body spent parked waiting for
    its group, so long-lived collectors legitimately dominate.
    """
    totals: Dict[tuple, float] = defaultdict(float)
    counts: Dict[tuple, int] = Counter()
    for ev in tracer.filter(ev_kinds.OP_END):
        key = (ev.fields["node"], ev.fields["op"])
        totals[key] += ev.fields["duration"]
        counts[key] += 1
    if not counts:
        return "(no op_end events traced)"
    lines = [f"{'node':>10} {'operation':<24} {'bodies':>7} "
             f"{'total [s]':>10} {'mean [ms]':>10}"]
    for key in sorted(counts):
        n = counts[key]
        total = totals[key]
        lines.append(
            f"{key[0]:>10} {key[1]:<24} {n:>7} {total:>10.4f} "
            f"{total / n * 1e3:>10.3f}"
        )
    return "\n".join(lines)


def utilization_report(engine) -> str:
    """CPU and NIC busy fractions per node of a finished (or paused) run.

    Reads the resource occupancy integrals of the simulated cluster —
    the quickest way to see whether a schedule is compute-, send- or
    receive-bound on each machine.
    """
    elapsed = engine.sim.now
    if elapsed <= 0:
        return "(no virtual time has passed)"
    lines = [
        f"utilization over {elapsed:.6g} virtual seconds",
        f"{'node':>10} {'cpu':>7} {'nic tx':>7} {'nic rx':>7} "
        f"{'compute [s]':>12}",
    ]
    for name, node in sorted(engine.cluster.nodes.items()):
        lines.append(
            f"{name:>10} {node.cpu.utilization() * 100:>6.1f}% "
            f"{node.nic_tx.utilization() * 100:>6.1f}% "
            f"{node.nic_rx.utilization() * 100:>6.1f}% "
            f"{node.compute_time:>12.4f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Chrome trace-event export (Perfetto / chrome://tracing)
# ---------------------------------------------------------------------------

_DEFAULT_PID = "run"


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Translate a trace into Chrome trace-event JSON records.

    The mapping: process rows are ``pid`` fields (kernel names on merged
    multiprocess traces, one ``run`` process otherwise), thread rows are
    nodes, ``op_end`` becomes a complete ("X") slice spanning the body's
    duration, everything else an instant ("i").  Metadata ("M") records
    name the rows.  Every event carries the required
    ``ph``/``ts``/``pid``/``tid``/``name`` keys; timestamps are
    microseconds relative to the first event.
    """
    if not tracer.events:
        return []
    t0 = min(e.time for e in tracer.events)

    pid_ids: Dict[str, int] = {}
    tid_ids: Dict[tuple, int] = {}
    out: List[Dict[str, Any]] = []

    def pid_of(ev) -> int:
        name = ev.fields.get("pid", _DEFAULT_PID)
        pid = pid_ids.get(name)
        if pid is None:
            pid = pid_ids[name] = len(pid_ids) + 1
            out.append({"ph": "M", "ts": 0, "pid": pid, "tid": 0,
                        "name": "process_name", "args": {"name": name}})
        return pid

    def tid_of(ev, pid: int) -> int:
        node = ev.fields.get("node") or ev.fields.get("dest") \
            or ev.fields.get("driver") or "engine"
        tid = tid_ids.get((pid, node))
        if tid is None:
            tid = tid_ids[(pid, node)] = \
                sum(1 for key in tid_ids if key[0] == pid) + 1
            out.append({"ph": "M", "ts": 0, "pid": pid, "tid": tid,
                        "name": "thread_name", "args": {"name": str(node)}})
        return tid

    for ev in tracer.events:
        pid = pid_of(ev)
        tid = tid_of(ev, pid)
        ts = (ev.time - t0) * 1e6
        args = {k: v for k, v in ev.fields.items()
                if isinstance(v, (str, int, float, bool))}
        if ev.kind == ev_kinds.OP_END:
            dur = ev.fields.get("duration", 0.0) * 1e6
            out.append({
                "ph": "X",
                "ts": max(ts - dur, 0.0),
                "dur": dur,
                "pid": pid,
                "tid": tid,
                "name": str(ev.fields.get("op", ev.kind)),
                "cat": ev.kind,
                "args": args,
            })
        else:
            out.append({
                "ph": "i",
                "ts": ts,
                "pid": pid,
                "tid": tid,
                "name": ev.kind,
                "cat": ev.kind,
                "s": "t",
                "args": args,
            })
    return out


def export_chrome_trace(tracer: Tracer, path: str) -> int:
    """Write the trace as Chrome trace-event JSON to *path*.

    Open the file in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``.  Returns the number of records written
    (including row-naming metadata).
    """
    records = chrome_trace_events(tracer)
    with open(path, "w") as fh:
        json.dump({"traceEvents": records,
                   "displayTimeUnit": "ms"}, fh)
    return len(records)
