"""Execution tracing, metrics, timeline reports and Perfetto export."""

from . import events
from .events import DETERMINISTIC_KINDS, EVENT_KINDS
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .timeline import (
    activity_timeline,
    chrome_trace_events,
    export_chrome_trace,
    message_summary,
    op_durations,
    op_summary,
    utilization_report,
)
from .tracer import TraceEvent, Tracer

__all__ = [
    "Counter",
    "DETERMINISTIC_KINDS",
    "EVENT_KINDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "Tracer",
    "activity_timeline",
    "chrome_trace_events",
    "events",
    "export_chrome_trace",
    "message_summary",
    "op_durations",
    "op_summary",
    "utilization_report",
]
