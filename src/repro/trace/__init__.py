"""Execution tracing and text timeline reports."""

from .timeline import (
    activity_timeline,
    message_summary,
    op_durations,
    op_summary,
    utilization_report,
)
from .tracer import TraceEvent, Tracer

__all__ = [
    "TraceEvent",
    "Tracer",
    "activity_timeline",
    "message_summary",
    "op_durations",
    "op_summary",
    "utilization_report",
]
