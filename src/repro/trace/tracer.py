"""Structured trace of schedule execution events.

Attach a :class:`Tracer` to any execution engine (``tracer=`` is accepted
uniformly by :class:`~repro.runtime.SimEngine`,
:class:`~repro.runtime.ThreadedEngine` and
:class:`~repro.runtime.MultiprocessEngine`, or via
:func:`~repro.runtime.create_engine`) to record the unified event
vocabulary of :mod:`repro.trace.events`: operation bodies, token
movement with byte sizes, serialization, flow-control stalls and acks.
Traces are the raw material for the text timelines in
:mod:`repro.trace.timeline`, for the Chrome-trace/Perfetto export, and
for debugging scheduling behaviour (e.g. visually confirming that
computation and communication overlap).

Timestamps are virtual seconds on the simulated engine and monotonic
wall-clock seconds on the real-execution engines.  On the multiprocess
engine each kernel process records into its own tracer; the buffers are
shipped to the console kernel on flush/shutdown and merged (with a
``pid`` field naming the kernel) into the tracer the caller attached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    kind: str
    fields: Dict[str, Any]

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None


class Tracer:
    """Append-only event recorder with simple query helpers."""

    def __init__(self, capacity: Optional[int] = None):
        """*capacity* bounds memory; oldest events are dropped beyond it."""
        self.events: List[TraceEvent] = []
        self.capacity = capacity
        self.dropped = 0

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Record an event (engine hook)."""
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.events.pop(0)
            self.dropped += 1
        self.events.append(TraceEvent(time, kind, fields))

    def merge(
        self,
        events: Iterable[Tuple[float, str, Dict[str, Any]]],
        pid: Optional[str] = None,
    ) -> int:
        """Fold raw ``(time, kind, fields)`` records into this tracer.

        Used for cross-process aggregation: each kernel ships its buffer
        as plain tuples and the console merges them here, stamping *pid*
        (the kernel name) on every event that does not carry one.
        Returns the number of events merged.
        """
        n = 0
        for time, kind, fields in events:
            if pid is not None and "pid" not in fields:
                fields = {**fields, "pid": pid}
            self.emit(time, kind, **fields)
            n += 1
        return n

    def dump(self) -> List[Tuple[float, str, Dict[str, Any]]]:
        """The buffer as picklable plain tuples (wire-friendly)."""
        return [(ev.time, ev.kind, ev.fields) for ev in self.events]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def filter(
        self,
        kind: Optional[str] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Events matching *kind* and/or an arbitrary predicate."""
        out = []
        for ev in self.events:
            if kind is not None and ev.kind != kind:
                continue
            if predicate is not None and not predicate(ev):
                continue
            out.append(ev)
        return out

    def count(self, kind: str) -> int:
        return sum(1 for ev in self.events if ev.kind == kind)

    def kinds(self) -> Dict[str, int]:
        """Event counts per kind (the parity-test fingerprint)."""
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def pids(self) -> set:
        """Distinct ``pid`` fields seen (kernel names on merged traces)."""
        return {ev.fields["pid"] for ev in self.events if "pid" in ev.fields}

    def span(self) -> tuple[float, float]:
        """(first, last) event times; (0, 0) when empty."""
        if not self.events:
            return (0.0, 0.0)
        return (self.events[0].time, self.events[-1].time)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
