"""Structured trace of schedule execution events.

Attach a :class:`Tracer` to a :class:`~repro.runtime.SimEngine` to record
operation firings, message transfers and activation boundaries with their
virtual timestamps.  Traces are the raw material for the text timelines in
:mod:`repro.trace.timeline` and for debugging scheduling behaviour
(e.g. visually confirming that computation and communication overlap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    kind: str
    fields: Dict[str, Any]

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None


class Tracer:
    """Append-only event recorder with simple query helpers."""

    def __init__(self, capacity: Optional[int] = None):
        """*capacity* bounds memory; oldest events are dropped beyond it."""
        self.events: List[TraceEvent] = []
        self.capacity = capacity
        self.dropped = 0

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Record an event (engine hook)."""
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.events.pop(0)
            self.dropped += 1
        self.events.append(TraceEvent(time, kind, fields))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def filter(
        self,
        kind: Optional[str] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Events matching *kind* and/or an arbitrary predicate."""
        out = []
        for ev in self.events:
            if kind is not None and ev.kind != kind:
                continue
            if predicate is not None and not predicate(ev):
                continue
            out.append(ev)
        return out

    def count(self, kind: str) -> int:
        return sum(1 for ev in self.events if ev.kind == kind)

    def span(self) -> tuple[float, float]:
        """(first, last) event times; (0, 0) when empty."""
        if not self.events:
            return (0.0, 0.0)
        return (self.events[0].time, self.events[-1].time)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
