"""Lightweight metrics registry shared by all execution engines.

Counters, gauges and histograms keyed by name, created lazily on first
use so instrumentation sites stay one-liners::

    metrics = MetricsRegistry()
    engine = create_engine("threaded", metrics=metrics)
    ...
    metrics.counter("tokens_posted").value
    print(metrics.report())

The registry is deliberately tiny: plain attributes mutated under the
GIL (best-effort accuracy under free-threaded contention, which is the
right trade for hot-path instrumentation), a :meth:`MetricsRegistry.snapshot`
for shipping across process boundaries, and :meth:`MetricsRegistry.merge`
for cross-kernel aggregation — the multiprocess runtime ships each
kernel's snapshot to the console in the shutdown trace message and merges
them here (counters add, gauges keep the max, histograms combine their
moments).

Engines populate a common set of series when a registry is attached:
``tokens_posted``, ``wire_bytes``, ``wire_messages``, ``acks``,
``stalls`` (counters), ``queue_depth`` (gauge, peak inbox depth),
``stall_seconds`` and ``serialize_seconds`` (histograms).  Token rate is
derived: ``tokens_posted / elapsed``.  The multiprocess transport adds
``frames_per_syscall`` (histogram — mean > 1 means outbox coalescing is
amortizing syscalls), ``acks_coalesced`` (acks that rode in a batch
frame instead of paying for their own), ``shm_bytes_bypassed`` (payload
bytes that took the shared-memory lane instead of TCP) and
``token_drops`` (messages discarded after a peer kernel failed).  The
event-loop I/O core (``TransportPolicy(io_mode="eventloop")``, the
default) adds ``io_loop_wakeups`` (counter — selector passes; zero in
threads mode), ``partial_writes`` (counter — short ``sendmsg`` calls,
i.e. EAGAIN or fewer bytes accepted than offered) and ``outbox_depth``
(gauge — frames queued behind a write-blocked peer socket; its peak is
the high-water backpressure mark).  The resident service tier
(``repro.service``) adds ``svc_calls`` (admitted graph calls),
``svc_shed`` (requests answered ``MSG_SVC_BUSY``) and
``svc_duplicates`` (same-id resends dropped by exactly-once dedup)
counters; ``svc_sessions``, ``svc_inflight`` and ``svc_queue_depth``
gauges; and per-service ``svc_latency_seconds:<name>`` histograms
(admission-to-reply wall seconds).  The elastic-membership layer adds
``queue_depth_total`` (gauge — the per-kernel pending-token total each
kernel ships with its heartbeat lease; the feed behind queue-depth
adaptive routing and :class:`~repro.runtime.scaling.ScalingPolicy`),
``rebalances`` and ``tokens_moved`` (counters — voluntary membership
changes and the thread instances they migrated), ``heartbeats_missed``
(counter — liveness-lease expiries observed by the console) and
``rebalance_seconds`` (histogram — quiesce-to-resume wall seconds per
membership change).
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A sampled value; remembers the peak seen."""

    __slots__ = ("value", "peak")

    def __init__(self) -> None:
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.peak:
            self.peak = value


class Histogram:
    """Count / sum / min / max of observed values (no buckets)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named counters/gauges/histograms with snapshot/merge support."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- accessors (create on first use) --------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    # -- aggregation ----------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A picklable plain-dict view (for the wire / for reports)."""
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: (g.value, g.peak) for k, g in self._gauges.items()},
            "histograms": {
                k: (h.count, h.total, h.min, h.max)
                for k, h in self._histograms.items()
            },
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, (value, peak) in snapshot.get("gauges", {}).items():
            g = self.gauge(name)
            g.set(value)
            if peak > g.peak:
                g.peak = peak
        for name, (count, total, mn, mx) in snapshot.get(
                "histograms", {}).items():
            h = self.histogram(name)
            if count:
                h.count += count
                h.total += total
                if mn < h.min:
                    h.min = mn
                if mx > h.max:
                    h.max = mx

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- reporting ------------------------------------------------------
    def report(self) -> str:
        """Human-readable dump of every series."""
        lines = []
        for name in sorted(self._counters):
            lines.append(f"counter   {name:<24} {self._counters[name].value}")
        for name in sorted(self._gauges):
            g = self._gauges[name]
            lines.append(f"gauge     {name:<24} {g.value:g} (peak {g.peak:g})")
        for name in sorted(self._histograms):
            h = self._histograms[name]
            mn = 0.0 if h.count == 0 else h.min
            lines.append(
                f"histogram {name:<24} n={h.count} mean={h.mean:.6g} "
                f"min={mn:.6g} max={h.max:.6g}"
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def __repr__(self) -> str:
        return (f"<MetricsRegistry counters={len(self._counters)} "
                f"gauges={len(self._gauges)} "
                f"histograms={len(self._histograms)}>")
