"""The engine-agnostic trace event vocabulary.

Every execution engine — simulated cluster, OS threads, multiprocess
kernels over TCP — emits the same event kinds, so one analysis/reporting
stack (:mod:`repro.trace.timeline`, the Chrome-trace export, the parity
tests) works against any of them.  Timestamps differ in *base* only:
virtual seconds on :class:`~repro.runtime.SimEngine`, monotonic wall
seconds on the real-execution engines; consumers normalise to the first
event.

Common fields (all optional unless noted):

==================  =====================================================
kind                fields
==================  =====================================================
ACTIVATION_START    ``graph``, ``driver``
ACTIVATION_DONE     ``ctx``
OP_START            ``node``, ``op``, ``graph`` — an operation body began
OP_END              ``node``, ``op``, ``graph``, ``duration``, ``posted``
TOKEN_SEND          ``src``, ``dest``, ``nbytes`` — a token crossed nodes
TOKEN_RECV          ``node``, ``op``, ``graph``, ``depth`` (queue depth)
SERIALIZE           ``node``, ``seconds``, ``nbytes``
STALL               ``node``/``graph`` — flow-control window was full
ADMIT               ``node``/``graph``, ``waited`` — a stalled post left
ACK                 ``node``, ``graph``, ``opener``, ``group``
TOKEN_DROP          ``peer``, ``dropped`` — messages discarded after a
                    peer kernel failed (multiprocess engine only)
KERNEL_DOWN         ``kernel``, ``reason`` — a kernel process was
                    declared dead (heartbeat lease expired, sentinel
                    fired, or a peer connection broke)
REMAP               ``dead``, ``collections``, ``epoch`` — thread
                    instances of the dead kernel were remapped onto
                    survivors
REPLAY              ``epoch``, ``tokens`` — journaled un-acked tokens
                    were re-delivered after a remap
SVC_CALL            ``client``, ``request``, ``service`` — a graph call
                    was admitted by the service console
SVC_REPLY           ``client``, ``request``, ``service``, ``seconds``
SVC_SHED            ``client``, ``request``, ``service``, ``reason`` —
                    admission control answered MSG_SVC_BUSY
SVC_CLOSE           ``client`` — a service session ended
FLUSH_WINDOW        ``peer``, ``frames`` — an adaptive flush window
                    expired and flushed the frames it coalesced
                    (eventloop transport only)
==================  =====================================================

Events recorded in a kernel process additionally carry ``pid`` (the
kernel name) once merged into the console timeline.
"""

from __future__ import annotations

__all__ = [
    "ACTIVATION_START",
    "ACTIVATION_DONE",
    "OP_START",
    "OP_END",
    "TOKEN_SEND",
    "TOKEN_RECV",
    "SERIALIZE",
    "STALL",
    "ADMIT",
    "ACK",
    "TOKEN_DROP",
    "KERNEL_DOWN",
    "REMAP",
    "REPLAY",
    "SVC_CALL",
    "SVC_REPLY",
    "SVC_SHED",
    "SVC_CLOSE",
    "FLUSH_WINDOW",
    "EVENT_KINDS",
    "DETERMINISTIC_KINDS",
]

ACTIVATION_START = "activation_start"
ACTIVATION_DONE = "activation_done"
OP_START = "op_start"
OP_END = "op_end"
TOKEN_SEND = "token_send"
TOKEN_RECV = "token_recv"
SERIALIZE = "serialize"
STALL = "stall"
ADMIT = "admit"
ACK = "ack"
TOKEN_DROP = "token_drop"
KERNEL_DOWN = "kernel_down"
REMAP = "remap"
REPLAY = "replay"
SVC_CALL = "svc_call"
SVC_REPLY = "svc_reply"
SVC_SHED = "svc_shed"
SVC_CLOSE = "svc_close"
FLUSH_WINDOW = "flush_window"

#: Every kind an engine may emit (open set: engines may add kinds such as
#: ``thread_migrated``; the unified vocabulary above is the guaranteed
#: common subset).
EVENT_KINDS = frozenset({
    ACTIVATION_START, ACTIVATION_DONE, OP_START, OP_END,
    TOKEN_SEND, TOKEN_RECV, SERIALIZE, STALL, ADMIT, ACK, TOKEN_DROP,
    KERNEL_DOWN, REMAP, REPLAY,
    SVC_CALL, SVC_REPLY, SVC_SHED, SVC_CLOSE,
    FLUSH_WINDOW,
})

#: Kinds whose *counts* are determined by the schedule alone (not by
#: timing, placement, or flow-control races) — the basis of the
#: cross-engine parity test.
DETERMINISTIC_KINDS = frozenset({
    ACTIVATION_START, ACTIVATION_DONE, OP_START, OP_END, TOKEN_RECV, ACK,
})
