"""Graph-call stubs: a remote resident service as a local leaf operation.

The paper's parallel services (§ "Parallel services", Figure 10) let one
application invoke another application's flow graph *as if it were a
leaf operation*: the caller posts a token, the service runs its whole
split/compute/merge schedule, and the merged result comes back as the
leaf's single output.  :func:`make_service_stub` manufactures exactly
that adapter for the resident service tier: given a callable that
performs one remote graph call (normally
``repro.service.ServiceClient.call``) and the service's token-type
signature from the name-server record, it returns a
:class:`~repro.core.ops.LeafOperation` subclass that can be dropped into
any local flow graph — the remote cluster becomes one node of the local
schedule.

:func:`resolve_token_types` turns the wire-format type names carried in
a service record back into registered token classes, so a discovered
service can be stubbed without importing the provider's modules by hand
(they must be imported *somewhere*, or the registry lookup fails with a
pointed message).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Tuple, Type

from ..serial.registry import TokenRegistry, registry
from ..serial.token import Token
from .ops import LeafOperation
from .threads import DpsThread

__all__ = ["make_service_stub", "resolve_token_types"]


def resolve_token_types(names: Iterable[str],
                        reg: TokenRegistry = registry
                        ) -> Tuple[Type[Token], ...]:
    """Map wire-format token-type *names* to registered token classes.

    Raises ``KeyError`` (with an import hint) for unknown names — the
    module defining a service's tokens must be imported before its
    record can be resolved into a stub signature.
    """
    return tuple(reg.lookup(str(name)) for name in names)


def make_service_stub(call: Callable[[str, Token], Token],
                      service: str, *,
                      in_types: Tuple[Type[Token], ...],
                      out_types: Tuple[Type[Token], ...],
                      thread_type: Type[DpsThread] = DpsThread,
                      name: Optional[str] = None) -> Type[LeafOperation]:
    """Build a leaf-operation class that proxies to a remote service.

    *call* performs one blocking graph call — ``call(service, token)``
    returning the result token; the stub's ``execute`` posts that result
    downstream.  *in_types* / *out_types* become the stub's declared
    signature so local graph type-checking still holds at the remote
    boundary (resolve them from a discovered record with
    :func:`resolve_token_types`).
    """
    if not in_types or not out_types:
        raise ValueError(
            f"service stub for {service!r} needs non-empty in_types and "
            f"out_types (got {in_types!r} / {out_types!r})")

    def execute(self, token: Token) -> None:
        self.post(call(service, token))

    cls_name = name or f"ServiceStub_{service.replace('.', '_')}"
    stub = type(cls_name, (LeafOperation,), {
        "thread_type": thread_type,
        "in_types": tuple(in_types),
        "out_types": tuple(out_types),
        "execute": execute,
        "__doc__": f"Graph-call stub for the remote service {service!r}.",
        "__module__": __name__,
    })
    stub.check_signature()
    return stub
