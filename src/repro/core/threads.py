"""DPS threads and thread collections (paper §2–3).

A *DPS thread* is an execution context with user-defined local state —
the place where distributed data structures live (e.g. a band of the Game
of Life world, a block-column of a matrix).  Threads are grouped into
*thread collections* which are mapped onto cluster nodes with mapping
strings such as ``"nodeA*2 nodeB"`` (two threads on nodeA, one on nodeB).

Operations within a thread execute sequentially, mirroring the paper's
mapping of DPS threads onto operating-system threads.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Sequence, Type

__all__ = ["DpsThread", "ThreadCollection", "parse_mapping"]

_MAP_ITEM = re.compile(r"^(?P<node>[^*\s]+)(\*(?P<mult>\d+))?$")


class DpsThread:
    """Base class for user thread state.

    Subclass and add attributes in ``__init__`` to hold per-thread data
    (the analog of C++ thread member variables).  The runtime fills in
    :attr:`index` (position within the collection) and :attr:`node_name`
    (the machine the thread runs on) before any operation executes.
    """

    #: Index of this thread within its collection (set by the runtime).
    index: int = -1
    #: Name of the node hosting this thread (set by the runtime).
    node_name: str = ""
    #: Name of the owning collection (set by the runtime).
    collection_name: str = ""

    def state_nbytes(self) -> int:
        """Approximate size of the thread-local state in bytes.

        Used to price state migration when a collection is remapped at
        runtime (:meth:`~repro.runtime.SimEngine.remap`).  Override for
        states the generic estimator cannot size.
        """
        from ..serial.token import _approx_nbytes

        try:
            return _approx_nbytes(
                {k: v for k, v in self.__dict__.items()
                 if not k.startswith("_")}
            )
        except TypeError:
            return 0

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.collection_name}[{self.index}]"
            f"@{self.node_name}>"
        )


def parse_mapping(mapping: str) -> List[str]:
    """Expand a mapping string into a node-name list.

    ``"nodeA*2 nodeB"`` → ``["nodeA", "nodeA", "nodeB"]``.  Multipliers
    must be ≥ 1; whitespace separates entries.
    """
    names: List[str] = []
    for item in mapping.split():
        m = _MAP_ITEM.match(item)
        if not m:
            raise ValueError(f"bad mapping item {item!r} in {mapping!r}")
        mult = int(m.group("mult") or 1)
        if mult < 1:
            raise ValueError(f"multiplier must be >= 1 in {item!r}")
        names.extend([m.group("node")] * mult)
    if not names:
        raise ValueError(f"mapping string {mapping!r} produced no threads")
    return names


class ThreadCollection:
    """A named group of DPS threads of one thread class.

    The collection is *mapped* onto nodes before a schedule using it can
    run; mapping is dynamic (at runtime), exactly as in the paper::

        workers = ThreadCollection(ComputeThread, "proc")
        workers.map("node01*2 node02")
    """

    def __init__(self, thread_class: Type[DpsThread] = DpsThread, name: str = ""):
        if not (isinstance(thread_class, type) and issubclass(thread_class, DpsThread)):
            raise TypeError("thread_class must be a DpsThread subclass")
        self.thread_class = thread_class
        self.name = name or thread_class.__name__
        self._placements: Optional[List[str]] = None

    # -- mapping ---------------------------------------------------------
    def map(self, mapping: str) -> "ThreadCollection":
        """Map threads onto nodes from a mapping string; returns self."""
        self._placements = parse_mapping(mapping)
        return self

    def map_nodes(self, nodes: Sequence[str] | Iterable[str]) -> "ThreadCollection":
        """Map one thread per entry of *nodes* (duplicates allowed)."""
        placements = list(nodes)
        if not placements:
            raise ValueError("map_nodes() requires at least one node")
        self._placements = placements
        return self

    @property
    def is_mapped(self) -> bool:
        return self._placements is not None

    @property
    def placements(self) -> List[str]:
        """Node name per thread index."""
        if self._placements is None:
            raise RuntimeError(
                f"thread collection {self.name!r} is not mapped; call "
                f".map('nodeA*2 nodeB') or .map_nodes([...]) first"
            )
        return list(self._placements)

    @property
    def thread_count(self) -> int:
        return len(self.placements)

    def node_of(self, index: int) -> str:
        """The node hosting thread *index*."""
        placements = self.placements
        if not 0 <= index < len(placements):
            raise IndexError(
                f"thread index {index} out of range for collection "
                f"{self.name!r} of size {len(placements)}"
            )
        return placements[index]

    def make_thread(self, index: int) -> DpsThread:
        """Instantiate the thread object for *index* (runtime hook)."""
        thread = self.thread_class()
        thread.index = index
        thread.node_name = self.node_of(index)
        thread.collection_name = self.name
        return thread

    def __repr__(self) -> str:
        mapped = self._placements if self._placements else "unmapped"
        return f"<ThreadCollection {self.name!r} {mapped}>"
