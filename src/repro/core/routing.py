"""Routing functions: which thread instance receives a token (paper §3).

A routing function maps a token to an index within the target thread
collection.  Routes are classes so they can be stateful (round-robin
counters, load-balance bookkeeping); the :func:`route_fn` helper is the
analog of the paper's ``ROUTE`` macro for one-expression routes.

The runtime instantiates one route object per (controller node, flow-graph
node), and injects a :class:`RoutingContext` before the first call.
"""

from __future__ import annotations

from typing import Callable, Optional, Type

from ..serial.token import Token
from .threads import ThreadCollection

__all__ = [
    "Route",
    "RoutingContext",
    "RoundRobinRoute",
    "ConstantRoute",
    "LoadBalancedRoute",
    "route_fn",
]


class RoutingContext:
    """What a route may consult: collection size and feedback counters."""

    def __init__(
        self,
        collection: ThreadCollection,
        outstanding: Optional[Callable[[int], int]] = None,
    ):
        self.collection = collection
        self._outstanding = outstanding

    @property
    def thread_count(self) -> int:
        return self.collection.thread_count

    def outstanding(self, index: int) -> int:
        """Tokens posted to thread *index* and not yet acknowledged.

        Fed by the flow-control ack stream (paper: "By incorporating
        additional information into posted data objects ... DPS achieves
        a simple form of load balancing").  Zero when no feedback is
        available.
        """
        if self._outstanding is None:
            return 0
        return self._outstanding(index)


class Route:
    """Base class for routing functions.

    Subclasses implement :meth:`route` returning a thread index in
    ``[0, thread_count)``.
    """

    def __init__(self) -> None:
        self._ctx: Optional[RoutingContext] = None

    def bind(self, ctx: RoutingContext) -> "Route":
        self._ctx = ctx
        return self

    @property
    def ctx(self) -> RoutingContext:
        if self._ctx is None:
            raise RuntimeError(f"{type(self).__name__} used before bind()")
        return self._ctx

    @property
    def thread_count(self) -> int:
        return self.ctx.thread_count

    def route(self, token: Token) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, token: Token) -> int:
        index = self.route(token)
        n = self.thread_count
        if not isinstance(index, int) or not 0 <= index < n:
            raise ValueError(
                f"{type(self).__name__} returned {index!r}; must be an int "
                f"in [0, {n})"
            )
        return index


class ConstantRoute(Route):
    """Always the same instance — the paper's ``MainRoute`` idiom."""

    def __init__(self, index: int = 0):
        super().__init__()
        self.index = index

    def route(self, token: Token) -> int:
        return self.index


class RoundRobinRoute(Route):
    """Cycle through the collection (stateful per routing site)."""

    def __init__(self) -> None:
        super().__init__()
        self._next = 0

    def route(self, token: Token) -> int:
        index = self._next % self.thread_count
        self._next = index + 1
        return index


class LoadBalancedRoute(Route):
    """Prefer the instance with the fewest unacknowledged tokens.

    Ties break towards the lowest index, keeping runs deterministic.
    This is the paper's feedback-based load balancing: route "data
    objects to those processing nodes which have previously posted data
    objects to the merge operation".
    """

    def route(self, token: Token) -> int:
        ctx = self.ctx
        best, best_load = 0, None
        for i in range(ctx.thread_count):
            load = ctx.outstanding(i)
            if best_load is None or load < best_load:
                best, best_load = i, load
        return best


def route_fn(
    name: str, fn: Callable[[Token, int], int]
) -> Type[Route]:
    """Create a Route subclass from an expression — the ``ROUTE`` macro.

    *fn* receives ``(token, thread_count)`` and returns the index::

        RoundRobin = route_fn("RoundRobin", lambda tok, n: tok.pos % n)
    """

    def route(self: Route, token: Token) -> int:
        return fn(token, self.thread_count)

    return type(name, (Route,), {"route": route, "__doc__": f"ROUTE({name})"})
