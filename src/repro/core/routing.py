"""Routing functions: which thread instance receives a token (paper §3).

A routing function maps a token to an index within the target thread
collection.  Routes are classes so they can be stateful (round-robin
counters, load-balance bookkeeping); the :func:`route_fn` helper is the
analog of the paper's ``ROUTE`` macro for one-expression routes.

The runtime instantiates one route object per (controller node, flow-graph
node), and injects a :class:`RoutingContext` before the first call.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional, Type

from ..serial.token import Token
from .threads import ThreadCollection

__all__ = [
    "Route",
    "RoutingContext",
    "RoutingPolicy",
    "ROUTING_KINDS",
    "RoundRobinRoute",
    "ConstantRoute",
    "LoadBalancedRoute",
    "QueueDepthRoute",
    "route_fn",
]


class RoutingContext:
    """What a route may consult: collection size and feedback counters."""

    def __init__(
        self,
        collection: ThreadCollection,
        outstanding: Optional[Callable[[int], int]] = None,
        depth: Optional[Callable[[int], int]] = None,
    ):
        self.collection = collection
        self._outstanding = outstanding
        self._depth = depth

    @property
    def thread_count(self) -> int:
        return self.collection.thread_count

    def outstanding(self, index: int) -> int:
        """Tokens posted to thread *index* and not yet acknowledged.

        Fed by the flow-control ack stream (paper: "By incorporating
        additional information into posted data objects ... DPS achieves
        a simple form of load balancing").  Zero when no feedback is
        available.
        """
        if self._outstanding is None:
            return 0
        return self._outstanding(index)

    def depth(self, index: int) -> int:
        """Observed inbox depth of thread *index*.

        Engines that can see per-instance queues (the simulated engine
        exactly, the real engines for locally hosted instances) bind a
        depth feed here; otherwise the un-acked counter stands in — it
        is the wire-visible shadow of the same queue.
        """
        if self._depth is not None:
            return self._depth(index)
        return self.outstanding(index)


class Route:
    """Base class for routing functions.

    Subclasses implement :meth:`route` returning a thread index in
    ``[0, thread_count)``.
    """

    def __init__(self) -> None:
        self._ctx: Optional[RoutingContext] = None

    def bind(self, ctx: RoutingContext) -> "Route":
        self._ctx = ctx
        return self

    @property
    def ctx(self) -> RoutingContext:
        if self._ctx is None:
            raise RuntimeError(f"{type(self).__name__} used before bind()")
        return self._ctx

    @property
    def thread_count(self) -> int:
        return self.ctx.thread_count

    def route(self, token: Token) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, token: Token) -> int:
        index = self.route(token)
        n = self.thread_count
        if not isinstance(index, int) or not 0 <= index < n:
            raise ValueError(
                f"{type(self).__name__} returned {index!r}; must be an int "
                f"in [0, {n})"
            )
        return index


class ConstantRoute(Route):
    """Always the same instance — the paper's ``MainRoute`` idiom."""

    def __init__(self, index: int = 0):
        super().__init__()
        self.index = index

    def route(self, token: Token) -> int:
        return self.index


class RoundRobinRoute(Route):
    """Cycle through the collection (stateful per routing site)."""

    def __init__(self) -> None:
        super().__init__()
        self._next = 0

    def route(self, token: Token) -> int:
        index = self._next % self.thread_count
        self._next = index + 1
        return index


class LoadBalancedRoute(Route):
    """Prefer the instance with the fewest unacknowledged tokens.

    Ties break towards the lowest index, keeping runs deterministic.
    This is the paper's feedback-based load balancing: route "data
    objects to those processing nodes which have previously posted data
    objects to the merge operation".
    """

    def route(self, token: Token) -> int:
        ctx = self.ctx
        best, best_load = 0, None
        for i in range(ctx.thread_count):
            load = ctx.outstanding(i)
            if best_load is None or load < best_load:
                best, best_load = i, load
        return best


class QueueDepthRoute(Route):
    """Prefer the instance with the shallowest observed inbox.

    The adaptive flavour of the paper's ack-based load balancing: where
    :class:`LoadBalancedRoute` counts un-acked emissions *from this
    routing site*, this route consults the engine's queue-depth feed —
    total demand on each instance from every producer — so one saturated
    instance is avoided even when this site never posted to it.  Ties
    break towards the lowest index, keeping runs deterministic.
    """

    def route(self, token: Token) -> int:
        ctx = self.ctx
        best, best_load = 0, None
        for i in range(ctx.thread_count):
            load = ctx.depth(i)
            if best_load is None or load < best_load:
                best, best_load = i, load
        return best


#: Routing policy kinds :class:`RoutingPolicy` understands.
ROUTING_KINDS = ("round_robin", "queue_depth")


@dataclass(frozen=True)
class RoutingPolicy:
    """How split emissions pick a target instance (engine-wide).

    Frozen, like :class:`~repro.net.connections.TransportPolicy` and
    :class:`~repro.net.recovery.FaultPolicy`, so one policy object can be
    shared across forked kernel processes.  ``round_robin`` keeps each
    graph node's declared route untouched; ``queue_depth`` substitutes
    :class:`QueueDepthRoute` for declared :class:`RoundRobinRoute` /
    :class:`LoadBalancedRoute` sites.  Content-addressed routes
    (:class:`ConstantRoute`, :func:`route_fn` customs) are never
    overridden — they encode merge affinity or data placement, not load
    spreading, and rerouting them would break group/merge invariants.
    """

    kind: str = "round_robin"

    def __post_init__(self):
        if self.kind not in ROUTING_KINDS:
            raise ValueError(
                f"routing kind must be one of {ROUTING_KINDS}, "
                f"got {self.kind!r}")

    @property
    def adaptive(self) -> bool:
        return self.kind == "queue_depth"

    def route_class_for(self, declared: Type[Route]) -> Type[Route]:
        """The route class to instantiate for a site declared *declared*."""
        if self.kind == "queue_depth" and declared in (RoundRobinRoute,
                                                       LoadBalancedRoute):
            return QueueDepthRoute
        return declared

    @classmethod
    def from_env(cls, env=None) -> "RoutingPolicy":
        """Build from ``REPRO_ROUTING`` (``round_robin``/``queue_depth``)."""
        if env is None:
            env = os.environ
        return cls(kind=env.get("REPRO_ROUTING", "round_robin")
                   or "round_robin")


def route_fn(
    name: str, fn: Callable[[Token, int], int]
) -> Type[Route]:
    """Create a Route subclass from an expression — the ``ROUTE`` macro.

    *fn* receives ``(token, thread_count)`` and returns the index::

        RoundRobin = route_fn("RoundRobin", lambda tok, n: tok.pos % n)
    """

    def route(self: Route, token: Token) -> int:
        return fn(token, self.thread_count)

    return type(name, (Route,), {"route": route, "__doc__": f"ROUTE({name})"})
