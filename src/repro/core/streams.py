"""Unbounded stream sources with seeded bursty arrivals (DESIGN §5i).

A :class:`StreamSource` is an entry split whose body never fans out a
finite job at once: it *injects* tokens over time, pacing itself with
``yield self.sleep(delay)`` so the same arrival schedule plays out under
the simulated engine's virtual clock and the real engines' wall clock.
The delays come from an :class:`ArrivalProcess` — a seeded Markov ON/OFF
burst model (exponential intra-burst spacing at ``rate``, geometric
burst lengths around ``burst``, exponential idle gaps around ``gap``) —
so every engine, and every replay, sees the identical schedule.

The source is still a split as far as the graph contract goes: its
tokens form one group, throttled by the opener's
:class:`~repro.core.flowcontrol.CreditWindow` and terminated by the
ordinary group-total announcement when the body returns (finite
``items``) or is cut off by :meth:`StreamSource.make_token` returning
``None``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import ClassVar, Iterator, Optional, Tuple

from ..serial.token import Token
from .graph import FlowgraphNode
from .ops import OpKind, SplitOperation

__all__ = ["ArrivalProcess", "StreamSource", "is_streaming_opener"]


@dataclass(frozen=True)
class ArrivalProcess:
    """Seeded bursty (Markov ON/OFF) token arrival schedule.

    ``rate`` is the intra-burst arrival rate in tokens/second; ``burst``
    the mean burst length in tokens; ``gap`` the mean idle time between
    bursts in seconds.  ``items`` bounds the schedule (``None`` streams
    forever — pair with a cutoff in ``make_token``).  The schedule is a
    pure function of the seed: every engine and every replay draws the
    identical delays.
    """

    rate: float = 1000.0
    burst: int = 8
    gap: float = 0.01
    items: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("arrival rate must be > 0 tokens/sec")
        if self.burst < 1:
            raise ValueError("mean burst length must be >= 1")
        if self.gap < 0:
            raise ValueError("mean burst gap must be >= 0")
        if self.items is not None and self.items < 1:
            raise ValueError("items must be >= 1 or None (unbounded)")

    def schedule(self) -> Iterator[Tuple[int, float]]:
        """Yield ``(seq, delay_before_seq)`` pairs, deterministically."""
        rng = random.Random(self.seed)
        seq = 0
        first_burst = True
        while self.items is None or seq < self.items:
            length = 1 + (int(rng.expovariate(1.0 / (self.burst - 1)))
                          if self.burst > 1 else 0)
            lead_in = 0.0 if first_burst else (
                rng.expovariate(1.0 / self.gap) if self.gap > 0 else 0.0)
            first_burst = False
            for i in range(length):
                if self.items is not None and seq >= self.items:
                    return
                delay = lead_in if i == 0 else rng.expovariate(self.rate)
                yield seq, delay
                seq += 1


class StreamSource(SplitOperation):
    """Entry split injecting tokens at a seeded bursty arrival process.

    Subclasses implement :meth:`make_token` (returning ``None`` cuts the
    stream off) and supply the :class:`ArrivalProcess` — either the
    ``arrivals`` class attribute or :meth:`arrival_process` reading it
    from the job token.  The body sleeps between posts, so the source is
    paced by its schedule *and* throttled by its credit window: in
    ``block`` mode a saturated window stalls the source (arrival
    timestamps slip), in the lossy modes the source keeps pace and the
    window sheds.
    """

    #: Marks the source as a streaming opener for StreamPolicy resolution.
    streaming: ClassVar[bool] = True
    arrivals: ClassVar[Optional[ArrivalProcess]] = None

    def arrival_process(self, job: Token) -> ArrivalProcess:
        """Arrival schedule for this activation (default: ``arrivals``)."""
        process = type(self).arrivals
        if process is None:
            raise NotImplementedError(
                f"{type(self).__name__} declares no arrival process; set "
                f"the `arrivals` class attribute or override "
                f"arrival_process()")
        return process

    def make_token(self, seq: int, job: Token) -> Optional[Token]:
        """Token for sequence *seq*, or ``None`` to end the stream."""
        raise NotImplementedError

    def execute(self, job: Token):
        process = self.arrival_process(job)
        for seq, delay in process.schedule():
            if delay > 0:
                yield self.sleep(delay)
            token = self.make_token(seq, job)
            if token is None:
                return
            yield self.post(token)


def is_streaming_opener(node: FlowgraphNode) -> bool:
    """True when *node* opens a *streaming* group (stream-stage or
    :class:`StreamSource`), i.e. its edge resolves against
    :attr:`~repro.core.flowcontrol.StreamPolicy.credit_window`."""
    return node.kind == OpKind.STREAM \
        or bool(getattr(node.op_class, "streaming", False))
