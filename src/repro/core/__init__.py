"""Dynamic Parallel Schedules core: operations, flow graphs, routing,
thread collections and flow control — the paper's contribution."""

from .flowcontrol import FlowControlPolicy, SplitWindow
from .graph import Flowgraph, FlowgraphBuilder, FlowgraphNode, GraphError
from .ops import (
    CallGraphRequest,
    ChargeRequest,
    ScatterCallRequest,
    LeafOperation,
    MergeOperation,
    NextTokenRequest,
    Operation,
    OpKind,
    PostRequest,
    SplitOperation,
    StreamOperation,
)
from .remotecall import make_service_stub, resolve_token_types
from .routing import (
    ROUTING_KINDS,
    ConstantRoute,
    LoadBalancedRoute,
    QueueDepthRoute,
    Route,
    RoundRobinRoute,
    RoutingContext,
    RoutingPolicy,
    route_fn,
)
from .threads import DpsThread, ThreadCollection, parse_mapping

__all__ = [
    "CallGraphRequest",
    "ChargeRequest",
    "ConstantRoute",
    "DpsThread",
    "FlowControlPolicy",
    "Flowgraph",
    "FlowgraphBuilder",
    "FlowgraphNode",
    "GraphError",
    "LeafOperation",
    "LoadBalancedRoute",
    "MergeOperation",
    "NextTokenRequest",
    "OpKind",
    "Operation",
    "PostRequest",
    "QueueDepthRoute",
    "ROUTING_KINDS",
    "Route",
    "ScatterCallRequest",
    "RoundRobinRoute",
    "RoutingContext",
    "RoutingPolicy",
    "SplitOperation",
    "SplitWindow",
    "StreamOperation",
    "ThreadCollection",
    "make_service_stub",
    "parse_mapping",
    "resolve_token_types",
    "route_fn",
]
