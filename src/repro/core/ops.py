"""Operation base classes: leaf, split, merge and stream (paper §2–3).

Operations are user-written classes deriving from one of the four bases.
The body is the :meth:`Operation.execute` method.  It may be

- a **plain function** — it runs atomically; :meth:`Operation.post` hands
  tokens to the runtime as they are produced; the virtual CPU time charged
  is :meth:`Operation.cost` of the input token; or
- a **generator** — it may interleave posting, explicit cost charging
  (``yield self.charge_seconds(...)``) and, for merge/stream operations,
  waiting for further group tokens (``tok = yield self.next_token()``,
  which returns ``None`` once every token of the group has been
  delivered — the analog of ``waitForNextToken()`` returning null).

Yielding a :meth:`post` request additionally blocks the operation until
flow control admits the token (the paper's stalled split).  Engines
interpret the request objects; operation code is engine-agnostic and runs
unmodified on the simulated cluster and on the real-thread engine.
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import Any, ClassVar, Deque, Optional, Set, Tuple, Type

from ..serial.token import Token
from .threads import DpsThread

__all__ = [
    "Operation",
    "LeafOperation",
    "SplitOperation",
    "MergeOperation",
    "StreamOperation",
    "PostRequest",
    "NextTokenRequest",
    "ChargeRequest",
    "SleepRequest",
    "CallGraphRequest",
    "ScatterCallRequest",
    "OpKind",
]


class OpKind:
    LEAF = "leaf"
    SPLIT = "split"
    MERGE = "merge"
    STREAM = "stream"


# ---------------------------------------------------------------------------
# effect requests — interpreted by the engines
# ---------------------------------------------------------------------------

class _Request:
    __slots__ = ()


class PostRequest(_Request):
    """Emit *token* downstream. Yield it to respect flow control."""

    __slots__ = ("token", "_admit_event")

    def __init__(self, token: Token):
        if not isinstance(token, Token):
            raise TypeError(f"post() takes a Token, got {type(token).__name__}")
        self.token = token
        #: Set by the engine when the token is queued behind flow control;
        #: yielding the request waits for this event.
        self._admit_event = None


class NextTokenRequest(_Request):
    """Wait for the next token of the current merge/stream group."""

    __slots__ = ()


class ChargeRequest(_Request):
    """Consume virtual CPU time (seconds or flops at the node's rate)."""

    __slots__ = ("seconds", "flops")

    def __init__(self, seconds: float = 0.0, flops: float = 0.0):
        if seconds < 0 or flops < 0:
            raise ValueError("charge must be >= 0")
        self.seconds = seconds
        self.flops = flops


class SleepRequest(_Request):
    """Suspend the body for *seconds* of engine time.

    On the simulated engine this advances virtual time without occupying
    the node's CPU resource (the thread is idle, not computing); on the
    real-execution engines it is a wall-clock sleep of the OS thread.
    Unbounded :class:`~repro.core.streams.StreamSource` bodies use it to
    pace their arrival process identically under both clocks.
    """

    __slots__ = ("seconds",)

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ValueError("sleep seconds must be >= 0")
        self.seconds = seconds


class CallGraphRequest(_Request):
    """Call a named flow graph (possibly of another application).

    The operation suspends until the called graph's output token returns;
    the call is what makes a whole parallel service look like a single
    leaf operation to the caller (paper §5, Figure 10).
    """

    __slots__ = ("graph_name", "token")

    def __init__(self, graph_name: str, token: Token):
        if not isinstance(token, Token):
            raise TypeError("call_graph() takes a Token input")
        self.graph_name = graph_name
        self.token = token


class ScatterCallRequest(_Request):
    """Call a remote *scatter graph*; its outputs become this split's.

    The paper's future-work inter-application split (§6): the server
    application, which knows the data distribution, performs the split;
    the client processes the scattered items in parallel and merges them
    itself.  Only valid inside split/stream bodies — the remote tokens
    are posted as the caller's own group.
    """

    __slots__ = ("graph_name", "token")

    def __init__(self, graph_name: str, token: Token):
        if not isinstance(token, Token):
            raise TypeError("call_scatter() takes a Token input")
        self.graph_name = graph_name
        self.token = token


# ---------------------------------------------------------------------------
# operation bases
# ---------------------------------------------------------------------------

class Operation:
    """Common machinery for the four operation kinds.

    Class attributes declare the graph-checkable signature (the analog of
    the C++ template parameters ``<Thread, TV(in...), TV(out...)>``):

    - ``in_types``  — token classes this operation accepts,
    - ``out_types`` — token classes it may post,
    - ``thread_type`` — required :class:`DpsThread` subclass (optional).
    """

    kind: ClassVar[str] = ""
    in_types: ClassVar[Tuple[Type[Token], ...]] = ()
    out_types: ClassVar[Tuple[Type[Token], ...]] = ()
    thread_type: ClassVar[Type[DpsThread]] = DpsThread

    def __init__(self) -> None:
        # Bound by the engine before execute() runs.
        self._thread: Optional[DpsThread] = None
        self._emit: Any = None  # engine callback for bare post()
        self._now: Any = None  # engine clock callback

    # -- runtime binding ---------------------------------------------------
    def bind(self, thread: DpsThread, emit, now=None) -> "Operation":
        self._thread = thread
        self._emit = emit
        self._now = now
        return self

    def now(self) -> float:
        """Current time: virtual seconds on the simulated engine, wall
        seconds on the real-thread engine."""
        if self._now is None:
            return 0.0
        return self._now()

    @property
    def thread(self) -> DpsThread:
        """The DPS thread instance executing this operation (local state)."""
        if self._thread is None:
            raise RuntimeError(
                f"{type(self).__name__} used outside a running schedule"
            )
        return self._thread

    # -- effects -----------------------------------------------------------
    def post(self, token: Token) -> PostRequest:
        """Send *token* downstream.

        Called bare, the token is handed to the runtime immediately (the
        engine transmits it subject to flow control).  Yielded from a
        generator body, the operation additionally stalls until flow
        control admits the token.
        """
        req = PostRequest(token)
        if self._emit is not None:
            self._emit(req)
        return req

    def next_token(self) -> NextTokenRequest:
        """Request the next token of the current group (merge/stream)."""
        if self.kind not in (OpKind.MERGE, OpKind.STREAM):
            raise TypeError(f"next_token() is only valid in merge/stream "
                            f"operations, not {self.kind}")
        return NextTokenRequest()

    def charge_seconds(self, seconds: float) -> ChargeRequest:
        """Charge *seconds* of virtual CPU time (yield from a generator)."""
        return ChargeRequest(seconds=seconds)

    def sleep(self, seconds: float) -> SleepRequest:
        """Idle for *seconds* without computing (yield from a generator).

        Virtual seconds on the simulated engine, wall seconds on the
        real-execution engines — unlike :meth:`charge_seconds`, the
        node's CPU stays free for other thread instances.
        """
        return SleepRequest(seconds)

    def charge_flops(self, flops: float) -> ChargeRequest:
        """Charge flops at the executing node's effective rate."""
        return ChargeRequest(flops=flops)

    def call_graph(self, graph_name: str, token: Token) -> CallGraphRequest:
        """Call a named (possibly remote) flow graph; yields the result."""
        return CallGraphRequest(graph_name, token)

    def call_scatter(self, graph_name: str, token: Token) -> ScatterCallRequest:
        """Call a remote scatter graph from a split/stream body.

        The remote graph's depth-1 output tokens are posted as *this*
        operation's outputs; yielding the request suspends until the
        remote group is fully delivered and returns the token count.
        """
        if self.kind not in (OpKind.SPLIT, OpKind.STREAM):
            raise TypeError(
                f"call_scatter() is only valid in split/stream operations, "
                f"not {self.kind}"
            )
        return ScatterCallRequest(graph_name, token)

    # -- user surface --------------------------------------------------------
    def cost(self, token: Token) -> ChargeRequest:
        """Default virtual cost of processing *token* for plain bodies.

        Override to return ``self.charge_seconds(...)`` or
        ``self.charge_flops(...)``.  Generator bodies normally charge
        explicitly instead.
        """
        return ChargeRequest()

    def execute(self, token: Token):  # pragma: no cover - abstract
        raise NotImplementedError

    # -- class-level validation ----------------------------------------------
    @classmethod
    def check_signature(cls) -> None:
        """Validate the declared signature; used at graph build time."""
        for attr in ("in_types", "out_types"):
            types = getattr(cls, attr)
            if not isinstance(types, tuple) or not all(
                isinstance(t, type) and issubclass(t, Token) for t in types
            ):
                raise TypeError(
                    f"{cls.__name__}.{attr} must be a tuple of Token classes"
                )
        if not cls.in_types:
            raise TypeError(f"{cls.__name__} declares no in_types")
        if not cls.out_types:
            raise TypeError(f"{cls.__name__} declares no out_types")

    @classmethod
    def accepts(cls, token_type: Type[Token]) -> bool:
        # issubclass takes the tuple directly — no generator per check.
        return issubclass(token_type, cls.in_types)


class LeafOperation(Operation):
    """One token in, exactly one token out (paper's ComputeData)."""

    kind = OpKind.LEAF


class SplitOperation(Operation):
    """One token in, one or more tokens out (task distribution)."""

    kind = OpKind.SPLIT


class MergeOperation(Operation):
    """Consumes a whole group, posts a single result.

    The body receives the group's first token; further tokens are pulled
    with ``tok = yield self.next_token()`` until it returns ``None``.
    """

    kind = OpKind.MERGE


#: Stream classes that override ``execute`` directly (the pre-streaming
#: generator contract); each warns once per class, per process.
_LEGACY_STREAM_CLASSES: Set[type] = set()


def reset_legacy_stream_warnings() -> None:
    """Forget which legacy stream classes already warned (test helper)."""
    _LEGACY_STREAM_CLASSES.clear()


class StreamOperation(Operation):
    """A first-class stream stage: 0..N outputs per input, at any time.

    Consumes an input group like a merge while opening an output group
    like a split, enabling pipelining between successive parallel phases
    (paper §3, "Stream operations"; the LU factorization of §5).  Since
    the streaming redesign (DESIGN §5i) the contract is callback-based
    with *dynamic data rates*:

    - implement :meth:`on_token`, called once per input token in arrival
      order; call :meth:`emit` zero or more times per input to produce
      outputs (each emission traverses the stage's credit window);
    - optionally implement :meth:`on_close`, called after the input
      group drains — emissions there flush trailing state (e.g. a
      partial window);
    - call :meth:`end_of_stream` to stop processing further input;
      remaining group tokens are still consumed (the group contract
      requires it) but no longer reach :meth:`on_token`.

    The base :meth:`execute` drives the callbacks and yields the posts,
    so stream stages respect per-edge credits exactly like splits.

    **Deprecated**: subclasses may still override :meth:`execute` with
    the old ``tok = yield self.next_token()`` generator body.  They run
    unmodified — the engines drive the generator directly — but emit a
    :class:`DeprecationWarning` once per class.
    """

    kind = OpKind.STREAM
    #: Marks stream stages (and :class:`~repro.core.streams.StreamSource`
    #: splits) as streaming openers for :class:`StreamPolicy` resolution.
    streaming: ClassVar[bool] = True

    def __init__(self) -> None:
        super().__init__()
        self._emit_buffer: Deque[Token] = deque()
        self._input_closed = False
        #: Input tokens consumed after :meth:`end_of_stream` (visible to
        #: subclasses that want to account for skipped work).
        self.input_discarded = 0
        cls = type(self)
        if cls.execute is not StreamOperation.execute \
                and cls not in _LEGACY_STREAM_CLASSES:
            _LEGACY_STREAM_CLASSES.add(cls)
            warnings.warn(
                f"{cls.__name__} overrides StreamOperation.execute() — the "
                f"generator stream contract is deprecated; implement "
                f"on_token()/on_close() and produce outputs with emit() "
                f"instead (see DESIGN.md §5i)",
                DeprecationWarning, stacklevel=3)

    # -- new streaming contract ---------------------------------------------
    def emit(self, token: Token) -> None:
        """Queue *token* for posting downstream.

        Valid inside :meth:`on_token` and :meth:`on_close`; each queued
        token is posted through the stage's credit window before the
        next input token is consumed, so emission respects flow control.
        """
        if not isinstance(token, Token):
            raise TypeError(
                f"emit() takes a Token, got {type(token).__name__}")
        self._emit_buffer.append(token)

    def end_of_stream(self) -> None:
        """Declare that no further input should reach :meth:`on_token`.

        The stage keeps consuming (and acknowledging) the rest of its
        input group — the group contract requires every token to be
        consumed — but stops processing it.  :meth:`on_close` still runs.
        """
        self._input_closed = True

    def on_token(self, token: Token) -> None:
        """Process one input token; call :meth:`emit` 0..N times."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement on_token() (or the "
            f"deprecated generator execute())")

    def on_close(self) -> None:
        """Input group fully consumed; emit any trailing output here."""

    def execute(self, token: Token):
        tok: Optional[Token] = token
        while tok is not None:
            if self._input_closed:
                self.input_discarded += 1
            else:
                self.on_token(tok)
                while self._emit_buffer:
                    yield self.post(self._emit_buffer.popleft())
            tok = yield self.next_token()
        self.on_close()
        while self._emit_buffer:
            yield self.post(self._emit_buffer.popleft())
