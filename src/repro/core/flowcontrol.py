"""Flow control: bounded tokens in circulation per split-merge construct.

The paper (§3, "Flow control and load balancing"): *"a feedback mechanism
ensures that no more than a given number of data objects is in circulation
between a specific pair of split merge constructs ...  The split operation
is simply stalled until data objects have arrived and been processed by
the corresponding merge operation."*

:class:`SplitWindow` is the pure bookkeeping: engines consult it before
transmitting a posted token and feed it acknowledgement messages sent by
the matching merge.  It also tracks per-target-instance outstanding counts,
which drives :class:`~repro.core.routing.LoadBalancedRoute`.

Streaming pipelines (DESIGN §5i) generalize the same feedback loop beyond
split↔merge pairs: every group opener (split, stream stage, unbounded
:class:`~repro.core.streams.StreamSource`) throttles against a
:class:`CreditWindow` — a :class:`SplitWindow` whose credits are returned
by the downstream consumer's acks and which can *shed* instead of
stalling.  :class:`StreamPolicy` is the frozen configuration: a credit
window for streaming edges, per-edge overrides keyed by opener node name,
and the shedding mode applied when credits saturate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

__all__ = ["FlowControlPolicy", "SplitWindow", "StreamPolicy",
           "CreditWindow", "SHEDDING_MODES"]

#: Behaviours when a streaming edge's credit window saturates:
#:
#: - ``"block"``       — stall the poster until credits return (the
#:   paper's stalled split; the only mode batch splits ever use);
#: - ``"drop-oldest"`` — bound the deferred-post queue at the window
#:   size and evict the *oldest* queued token of the live body to make
#:   room, keeping the freshest data (ring-buffer semantics);
#: - ``"shed"``        — bound the queue and drop the *incoming* token,
#:   keeping the oldest data (tail-drop semantics).
#:
#: Lossy modes never stall the poster; shed tokens are subtracted from
#: the announced group total so merges still terminate exactly.
SHEDDING_MODES = ("block", "drop-oldest", "shed")


@dataclass(frozen=True)
class FlowControlPolicy:
    """Per-schedule flow-control configuration.

    ``window`` is the maximum number of unacknowledged tokens a split (or
    stream) instance may have in circulation towards its matching merge.
    ``None`` disables the feedback mechanism entirely (unbounded).
    ``window=1`` degenerates to lock-step execution — the no-overlap
    baseline used by the Table 1 reproduction.
    """

    window: Optional[int] = 8

    def __post_init__(self) -> None:
        if self.window is not None and self.window < 1:
            raise ValueError("flow-control window must be >= 1 or None")


@dataclass(frozen=True)
class StreamPolicy:
    """Per-edge credit configuration for streaming pipelines.

    ``credit_window`` is the credit budget of *streaming* openers
    (stream stages and :class:`~repro.core.streams.StreamSource`
    splits); ``None`` inherits :attr:`FlowControlPolicy.window`, so the
    default instance changes nothing.  ``edge_credits`` overrides the
    window per opener **node name** — it applies to any opener, which is
    what generalizes :class:`SplitWindow` beyond split↔merge pairs
    (``None`` as a value disables the edge's window entirely).
    ``shedding`` picks the saturation behaviour for streaming edges from
    :data:`SHEDDING_MODES`; batch openers always block.
    """

    credit_window: Optional[int] = None
    shedding: str = "block"
    edge_credits: Optional[Mapping[str, Optional[int]]] = None

    def __post_init__(self) -> None:
        if self.credit_window is not None and self.credit_window < 1:
            raise ValueError("stream credit window must be >= 1 or None")
        if self.shedding not in SHEDDING_MODES:
            raise ValueError(
                f"unknown shedding mode {self.shedding!r}; expected one of "
                f"{SHEDDING_MODES}")
        if self.edge_credits is not None:
            for name, win in self.edge_credits.items():
                if not isinstance(name, str) or not name:
                    raise ValueError(
                        f"edge_credits keys are opener node names, got "
                        f"{name!r}")
                if win is not None and (not isinstance(win, int) or win < 1):
                    raise ValueError(
                        f"edge_credits[{name!r}] must be >= 1 or None, got "
                        f"{win!r}")
            # normalize to a plain dict so the caller's mapping cannot
            # mutate a frozen policy from the outside
            object.__setattr__(self, "edge_credits", dict(self.edge_credits))

    def window_for(self, opener_name: str, streaming: bool,
                   default: Optional[int]) -> Optional[int]:
        """Resolve the credit window for one opener edge.

        Per-edge overrides win; streaming edges then use
        ``credit_window`` when set; everything else keeps *default*
        (the schedule-wide :attr:`FlowControlPolicy.window`).
        """
        if self.edge_credits is not None and opener_name in self.edge_credits:
            return self.edge_credits[opener_name]
        if streaming and self.credit_window is not None:
            return self.credit_window
        return default

    def shedding_for(self, streaming: bool) -> str:
        """Shedding mode for one opener edge (batch openers block)."""
        return self.shedding if streaming else "block"


class SplitWindow:
    """Outstanding-token accounting for one split instance.

    ``in_flight`` counts tokens posted but not yet acknowledged by the
    matching merge.  ``can_send`` gates transmission; ``on_post`` /
    ``on_ack`` update the counters.
    """

    def __init__(self, window: Optional[int]):
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 or None")
        self.window = window
        self.in_flight = 0
        #: tokens outstanding per destination thread index (feedback for
        #: load-balanced routing).
        self.per_instance: Dict[int, int] = {}
        # lifetime statistics
        self.total_posted = 0
        self.total_acked = 0
        self.stalls = 0

    @property
    def can_send(self) -> bool:
        """True when another token may enter circulation now."""
        return self.window is None or self.in_flight < self.window

    def on_post(self, instance: int) -> None:
        """Record a token entering circulation towards *instance*."""
        if not self.can_send:
            raise RuntimeError("on_post() while window full; check can_send")
        self.in_flight += 1
        self.total_posted += 1
        self.per_instance[instance] = self.per_instance.get(instance, 0) + 1

    def on_ack(self, instance: int, count: int = 1) -> None:
        """Record *count* tokens consumed by the merge at *instance*."""
        if count < 1:
            raise ValueError("ack count must be >= 1")
        if count > self.in_flight:
            raise RuntimeError(
                f"ack of {count} exceeds {self.in_flight} tokens in flight"
            )
        self.in_flight -= count
        self.total_acked += count
        have = self.per_instance.get(instance, 0)
        if have < count:
            raise RuntimeError(
                f"ack from instance {instance} which holds only {have} tokens"
            )
        self.per_instance[instance] = have - count

    def on_stall(self) -> None:
        """Record that a poster had to wait for window space."""
        self.stalls += 1

    def outstanding(self, instance: int) -> int:
        return self.per_instance.get(instance, 0)

    def __repr__(self) -> str:
        return (
            f"<SplitWindow {self.in_flight}/{self.window} "
            f"posted={self.total_posted} stalls={self.stalls}>"
        )


class CreditWindow(SplitWindow):
    """A :class:`SplitWindow` for one credited edge, with shedding.

    Engines build one per opener instance, resolving size and mode
    through :meth:`StreamPolicy.window_for` / ``shedding_for``.  The
    credit mechanics are unchanged from :class:`SplitWindow` — credits
    are granted back by the consumer's acks — but a lossy window
    additionally counts tokens it shed so group totals can exclude them.
    """

    def __init__(self, window: Optional[int], shedding: str = "block"):
        super().__init__(window)
        if shedding not in SHEDDING_MODES:
            raise ValueError(
                f"unknown shedding mode {shedding!r}; expected one of "
                f"{SHEDDING_MODES}")
        self.shedding = shedding
        #: Tokens dropped by the lossy modes over this window's lifetime.
        self.shed = 0

    def on_shed(self) -> None:
        """Record one token dropped instead of queued/transmitted."""
        self.shed += 1

    def __repr__(self) -> str:
        return (
            f"<CreditWindow {self.in_flight}/{self.window} "
            f"posted={self.total_posted} stalls={self.stalls} "
            f"shedding={self.shedding} shed={self.shed}>"
        )
