"""Flow control: bounded tokens in circulation per split-merge construct.

The paper (§3, "Flow control and load balancing"): *"a feedback mechanism
ensures that no more than a given number of data objects is in circulation
between a specific pair of split merge constructs ...  The split operation
is simply stalled until data objects have arrived and been processed by
the corresponding merge operation."*

:class:`SplitWindow` is the pure bookkeeping: engines consult it before
transmitting a posted token and feed it acknowledgement messages sent by
the matching merge.  It also tracks per-target-instance outstanding counts,
which drives :class:`~repro.core.routing.LoadBalancedRoute`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["FlowControlPolicy", "SplitWindow"]


@dataclass(frozen=True)
class FlowControlPolicy:
    """Per-schedule flow-control configuration.

    ``window`` is the maximum number of unacknowledged tokens a split (or
    stream) instance may have in circulation towards its matching merge.
    ``None`` disables the feedback mechanism entirely (unbounded).
    ``window=1`` degenerates to lock-step execution — the no-overlap
    baseline used by the Table 1 reproduction.
    """

    window: Optional[int] = 8

    def __post_init__(self) -> None:
        if self.window is not None and self.window < 1:
            raise ValueError("flow-control window must be >= 1 or None")


class SplitWindow:
    """Outstanding-token accounting for one split instance.

    ``in_flight`` counts tokens posted but not yet acknowledged by the
    matching merge.  ``can_send`` gates transmission; ``on_post`` /
    ``on_ack`` update the counters.
    """

    def __init__(self, window: Optional[int]):
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 or None")
        self.window = window
        self.in_flight = 0
        #: tokens outstanding per destination thread index (feedback for
        #: load-balanced routing).
        self.per_instance: Dict[int, int] = {}
        # lifetime statistics
        self.total_posted = 0
        self.total_acked = 0
        self.stalls = 0

    @property
    def can_send(self) -> bool:
        """True when another token may enter circulation now."""
        return self.window is None or self.in_flight < self.window

    def on_post(self, instance: int) -> None:
        """Record a token entering circulation towards *instance*."""
        if not self.can_send:
            raise RuntimeError("on_post() while window full; check can_send")
        self.in_flight += 1
        self.total_posted += 1
        self.per_instance[instance] = self.per_instance.get(instance, 0) + 1

    def on_ack(self, instance: int, count: int = 1) -> None:
        """Record *count* tokens consumed by the merge at *instance*."""
        if count < 1:
            raise ValueError("ack count must be >= 1")
        if count > self.in_flight:
            raise RuntimeError(
                f"ack of {count} exceeds {self.in_flight} tokens in flight"
            )
        self.in_flight -= count
        self.total_acked += count
        have = self.per_instance.get(instance, 0)
        if have < count:
            raise RuntimeError(
                f"ack from instance {instance} which holds only {have} tokens"
            )
        self.per_instance[instance] = have - count

    def on_stall(self) -> None:
        """Record that a poster had to wait for window space."""
        self.stalls += 1

    def outstanding(self, instance: int) -> int:
        return self.per_instance.get(instance, 0)

    def __repr__(self) -> str:
        return (
            f"<SplitWindow {self.in_flight}/{self.window} "
            f"posted={self.total_posted} stalls={self.stalls}>"
        )
