"""Watermarks and windowed aggregation over streams (DESIGN §5i).

Stream stages observe tokens in whatever order the engines deliver them
— arrival order differs between the simulated, threaded and multiprocess
engines, and differs again under replay after a kernel kill.  Windowed
results must nevertheless be **bit-identical** everywhere, so the
machinery here is built from two order-independent pieces:

- :class:`Watermark` — a *contiguity* watermark over the dense 0-based
  sequence domain: the largest ``w`` such that every sequence number in
  ``0..w`` has been observed.  It is a pure function of the *set* of
  observed sequences, so every engine reaches the same watermark after
  the same tokens regardless of interleaving.
- :class:`WindowAccumulator` — per-window count/checksum/bounds folded
  with commutative operations (sum modulo a Mersenne prime), so window
  contents hash identically however the tokens arrived.

A window ``w`` of :class:`WindowSpec` ``(size, slide)`` covers sequences
``[w*slide, w*slide + size)`` (tumbling when ``slide == size``, the
default).  Windows close — in window order, deterministically — exactly
when the watermark passes their upper bound, or at end of stream for the
trailing partial window.  :class:`WindowedStream` packages the whole
protocol as a :class:`~repro.core.ops.StreamOperation` base class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Optional, Set, Tuple

from ..serial.token import Token
from .ops import StreamOperation

__all__ = [
    "WindowSpec",
    "Watermark",
    "WindowAccumulator",
    "WindowResult",
    "WindowedStream",
    "checksum_mix",
]

#: Checksum modulus: the Mersenne prime 2^61 - 1.  Sums of per-item
#: mixes are folded modulo this, making window checksums commutative,
#: associative and platform-independent (no Python hash randomization).
CHECKSUM_MOD = (1 << 61) - 1


def checksum_mix(seq: int, value: int) -> int:
    """Order-independent per-item contribution to a window checksum."""
    return (seq * 1_000_003 + (value % CHECKSUM_MOD) * 8_191
            + 0x9E3779B9) % CHECKSUM_MOD


@dataclass(frozen=True)
class WindowSpec:
    """Tumbling/sliding window geometry over the sequence domain.

    ``slide=None`` means tumbling (``slide == size``); a smaller slide
    yields overlapping sliding windows.  ``slide > size`` (gapped
    sampling) is rejected — sequences would fall into no window.
    """

    size: int
    slide: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("window size must be >= 1")
        if self.slide is not None and not 1 <= self.slide <= self.size:
            raise ValueError(
                f"window slide must be in 1..size ({self.size}), got "
                f"{self.slide}")

    @property
    def step(self) -> int:
        return self.slide if self.slide is not None else self.size

    @property
    def tumbling(self) -> bool:
        return self.step == self.size

    def bounds(self, window_id: int) -> Tuple[int, int]:
        """Sequence bounds ``[start, end)`` of *window_id*."""
        start = window_id * self.step
        return start, start + self.size

    def windows_of(self, seq: int) -> Tuple[int, ...]:
        """Ids of every window covering sequence *seq* (ascending)."""
        if seq < 0:
            raise ValueError("sequence numbers are 0-based")
        step = self.step
        first = max(0, (seq - self.size) // step + 1)
        return tuple(range(first, seq // step + 1))


class Watermark:
    """Contiguity watermark over a dense 0-based sequence domain.

    :meth:`observe` folds one sequence number in; :attr:`value` is the
    largest ``w`` with ``0..w`` all observed (``-1`` initially).  The
    value depends only on the set of observed sequences — never on their
    order — which is what makes window closing deterministic across
    engines.  Out-of-order arrivals are held in a frontier set bounded
    by the upstream credit window (arrivals can only run ahead of the
    contiguous prefix by the tokens in flight).
    """

    __slots__ = ("_next", "_frontier")

    def __init__(self) -> None:
        self._next = 0
        self._frontier: Set[int] = set()

    @property
    def value(self) -> int:
        return self._next - 1

    def seen(self, seq: int) -> bool:
        """True when *seq* was already observed (duplicate delivery)."""
        return seq < self._next or seq in self._frontier

    def observe(self, seq: int) -> int:
        """Fold *seq* in; returns the (possibly advanced) watermark."""
        if seq < 0:
            raise ValueError("sequence numbers are 0-based")
        if not self.seen(seq):
            self._frontier.add(seq)
            while self._next in self._frontier:
                self._frontier.discard(self._next)
                self._next += 1
        return self.value

    def __repr__(self) -> str:
        return f"<Watermark {self.value} frontier={len(self._frontier)}>"


class WindowAccumulator:
    """Commutative fold of one window's contents."""

    __slots__ = ("count", "checksum", "lo", "hi")

    def __init__(self) -> None:
        self.count = 0
        self.checksum = 0
        self.lo: Optional[int] = None
        self.hi: Optional[int] = None

    def add(self, seq: int, value: int) -> None:
        self.count += 1
        self.checksum = (self.checksum + checksum_mix(seq, value)) \
            % CHECKSUM_MOD
        if self.lo is None or seq < self.lo:
            self.lo = seq
        if self.hi is None or seq > self.hi:
            self.hi = seq


@dataclass(frozen=True)
class WindowResult:
    """One closed window, handed to :meth:`WindowedStream.make_result`.

    ``complete`` is True when every sequence of ``[start, end)`` was
    aggregated — False only for the trailing partial window of a finite
    stream (or when upstream shedding dropped members).  ``closed_at``
    is the engine clock at close time (virtual on the simulated engine);
    it feeds latency measurements and must stay out of any cross-engine
    result comparison.
    """

    window_id: int
    start: int
    end: int
    count: int
    checksum: int
    complete: bool
    closed_at: float


class WindowedStream(StreamOperation):
    """Watermark-driven windowed aggregation over a dense stream.

    Subclasses declare the geometry (the ``window`` class attribute, or
    :meth:`window_of` for token-carried specs) and three projections:
    :meth:`seq_of`, :meth:`value_of` and :meth:`make_result`.  Windows
    close in window-id order as the watermark passes them; at end of
    stream the trailing partial window flushes with ``complete=False``.
    Results are bit-identical across engines because both the watermark
    and the accumulators are order-independent.
    """

    window: ClassVar[Optional[WindowSpec]] = None

    def __init__(self) -> None:
        super().__init__()
        self._spec: Optional[WindowSpec] = None
        self._watermark = Watermark()
        self._accums: Dict[int, WindowAccumulator] = {}
        self._next_close = 0

    # -- subclass surface ---------------------------------------------------
    def window_of(self, token: Token) -> WindowSpec:
        """Window geometry; default reads the ``window`` class attribute."""
        spec = type(self).window
        if spec is None:
            raise NotImplementedError(
                f"{type(self).__name__} declares no window; set the "
                f"`window` class attribute or override window_of()")
        return spec

    def seq_of(self, token: Token) -> int:
        """Dense 0-based sequence number of *token*."""
        raise NotImplementedError

    def value_of(self, token: Token) -> int:
        """Integer payload folded into the window checksum (default 0)."""
        return 0

    def make_result(self, result: WindowResult) -> Token:
        """Wrap one closed window into the stage's output token."""
        raise NotImplementedError

    # -- stream contract ----------------------------------------------------
    def on_token(self, token: Token) -> None:
        if self._spec is None:
            self._spec = self.window_of(token)
        seq = self.seq_of(token)
        if self._watermark.seen(seq):
            return  # duplicate delivery; already aggregated
        for window_id in self._spec.windows_of(seq):
            if window_id < self._next_close:
                continue  # late straggler for an already-closed window
            acc = self._accums.get(window_id)
            if acc is None:
                acc = self._accums[window_id] = WindowAccumulator()
            acc.add(seq, self.value_of(token))
        watermark = self._watermark.observe(seq)
        while True:
            _, end = self._spec.bounds(self._next_close)
            if watermark < end - 1:
                break
            self._close_window(self._next_close)
            self._next_close += 1

    def on_close(self) -> None:
        if self._spec is None:
            return  # empty group: nothing was ever aggregated
        for window_id in sorted(self._accums):
            self._close_window(window_id)

    def _close_window(self, window_id: int) -> None:
        acc = self._accums.pop(window_id, None)
        if acc is None:
            return
        start, end = self._spec.bounds(window_id)
        self.emit(self.make_result(WindowResult(
            window_id=window_id, start=start, end=end,
            count=acc.count, checksum=acc.checksum,
            complete=acc.count == self._spec.size,
            closed_at=self.now(),
        )))
