"""Flow graphs: construction operators and build-time validation (paper §2–3).

A flow graph is a directed acyclic graph of operation nodes built with the
``>>`` operator (sequence) and ``+=`` (add an alternative path)::

    node_split = FlowgraphNode(MySplit, main_threads, ConstantRoute)
    node_op1   = FlowgraphNode(MyOpOne, workers, RoundRobinRoute)
    node_op2   = FlowgraphNode(MyOpTwo, workers, RoundRobinRoute)
    node_merge = FlowgraphNode(MyMerge, main_threads, ConstantRoute)

    builder  = node_split >> node_op1 >> node_merge
    builder += node_split >> node_op2 >> node_merge
    graph = Flowgraph(builder, "two-paths")

Freezing the builder into a :class:`Flowgraph` performs the validation the
C++ library does at compile time:

- the graph is a DAG with a unique entry and exit;
- adjacent operations have compatible token types, and every posted token
  type dispatches to exactly one successor (multiple paths are selected by
  token type, as in the paper's Figure 3);
- split/merge constructs nest properly: every merge/stream pops the
  split/stream that opened the enclosing group, consistently across all
  paths, and each split reconverges to a single matching merge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

from ..serial.token import Token
from .ops import Operation, OpKind
from .routing import ConstantRoute, Route
from .threads import ThreadCollection

__all__ = ["FlowgraphNode", "FlowgraphBuilder", "Flowgraph", "GraphError"]


class GraphError(ValueError):
    """Raised when a flow graph is structurally invalid."""


class FlowgraphNode:
    """One operation placement: (operation class, collection, route).

    The same node object may appear in several paths; object identity
    defines graph-node identity.
    """

    def __init__(
        self,
        op_class: Type[Operation],
        collection: ThreadCollection,
        route_class: Type[Route] = ConstantRoute,
        name: str = "",
    ):
        if not (isinstance(op_class, type) and issubclass(op_class, Operation)):
            raise TypeError(f"op_class must be an Operation subclass, got {op_class!r}")
        if not isinstance(collection, ThreadCollection):
            raise TypeError("collection must be a ThreadCollection")
        if not (isinstance(route_class, type) and issubclass(route_class, Route)):
            raise TypeError("route_class must be a Route subclass")
        op_class.check_signature()
        self.op_class = op_class
        self.collection = collection
        self.route_class = route_class
        self.name = name or op_class.__name__

    @property
    def kind(self) -> str:
        return self.op_class.kind

    def __rshift__(self, other: "FlowgraphNode") -> "FlowgraphBuilder":
        return FlowgraphBuilder._from_edge(self, other)

    def as_builder(self) -> "FlowgraphBuilder":
        """A builder containing just this node (single-operation graph)."""
        b = FlowgraphBuilder()
        b._note_node(self)
        b._tail = self
        return b

    def __repr__(self) -> str:
        return f"<FlowgraphNode {self.name} kind={self.kind}>"


class FlowgraphBuilder:
    """Accumulates nodes and edges; supports ``>>`` chaining and ``+=``."""

    def __init__(self) -> None:
        self._nodes: List[FlowgraphNode] = []  # insertion order
        self._edges: List[Tuple[FlowgraphNode, FlowgraphNode]] = []
        self._tail: Optional[FlowgraphNode] = None

    @classmethod
    def _from_edge(cls, a: FlowgraphNode, b: FlowgraphNode) -> "FlowgraphBuilder":
        builder = cls()
        builder._note_node(a)
        builder._add_edge(a, b)
        return builder

    def _note_node(self, node: FlowgraphNode) -> None:
        if node not in self._nodes:
            self._nodes.append(node)

    def _add_edge(self, a: FlowgraphNode, b: FlowgraphNode) -> None:
        if a is b:
            raise GraphError(f"self-loop on {a.name}")
        self._note_node(a)
        self._note_node(b)
        if (a, b) not in self._edges:
            self._edges.append((a, b))
        self._tail = b

    def __rshift__(self, other: FlowgraphNode) -> "FlowgraphBuilder":
        if self._tail is None:
            raise GraphError("cannot chain >> on an empty builder")
        self._add_edge(self._tail, other)
        return self

    def __iadd__(self, other: "FlowgraphBuilder | FlowgraphNode") -> "FlowgraphBuilder":
        if isinstance(other, FlowgraphNode):
            other = other.as_builder()
        if not isinstance(other, FlowgraphBuilder):
            raise TypeError("+= expects a FlowgraphBuilder or FlowgraphNode")
        for node in other._nodes:
            self._note_node(node)
        for a, b in other._edges:
            if (a, b) not in self._edges:
                self._edges.append((a, b))
        self._tail = other._tail or self._tail
        return self

    @property
    def nodes(self) -> List[FlowgraphNode]:
        return list(self._nodes)

    @property
    def edges(self) -> List[Tuple[FlowgraphNode, FlowgraphNode]]:
        return list(self._edges)


class Flowgraph:
    """A validated, frozen flow graph, ready to execute.

    Node ids are dense ints in insertion order; :attr:`entry` / :attr:`exit`
    are node ids.  :meth:`dispatch` resolves the successor for a posted
    token type; :meth:`matching_merge` gives the merge/stream node closing
    the group opened by a split/stream node.
    """

    def __init__(self, builder: "FlowgraphBuilder | FlowgraphNode", name: str = "",
                 scatter: bool = False):
        if isinstance(builder, FlowgraphNode):
            builder = builder.as_builder()
        if not builder.nodes:
            raise GraphError("empty flow graph")
        self.name = name or "graph"
        #: A *scatter graph* ends inside one open split-merge group: its
        #: exit emits multiple depth-1 tokens that are merged by the
        #: *calling* application (the paper's future-work
        #: "inter-application split and merge operations", §6).
        self.scatter = scatter
        #: node id of the opener whose group leaves the graph (scatter only)
        self.scatter_opener: Optional[int] = None
        self._nodes: List[FlowgraphNode] = builder.nodes
        self._ids: Dict[FlowgraphNode, int] = {
            n: i for i, n in enumerate(self._nodes)
        }
        self._succ: Dict[int, List[int]] = {i: [] for i in range(len(self._nodes))}
        self._pred: Dict[int, List[int]] = {i: [] for i in range(len(self._nodes))}
        for a, b in builder.edges:
            self._succ[self._ids[a]].append(self._ids[b])
            self._pred[self._ids[b]].append(self._ids[a])
        self.entry = self._find_entry()
        self.exit = self._find_exit()
        self._dispatch: Dict[Tuple[int, Type[Token]], Optional[int]] = {}
        self._matching: Dict[int, int] = {}
        self._depth_in: Dict[int, int] = {}
        self._check_acyclic()
        self._check_types()
        self._check_structure()

    # -- accessors ---------------------------------------------------------
    def node(self, node_id: int) -> FlowgraphNode:
        return self._nodes[node_id]

    @property
    def node_ids(self) -> List[int]:
        return list(range(len(self._nodes)))

    def successors(self, node_id: int) -> List[int]:
        return list(self._succ[node_id])

    def predecessors(self, node_id: int) -> List[int]:
        return list(self._pred[node_id])

    def collections(self) -> List[ThreadCollection]:
        """All thread collections used, in node order, deduplicated."""
        seen: List[ThreadCollection] = []
        for n in self._nodes:
            if n.collection not in seen:
                seen.append(n.collection)
        return seen

    def dispatch(self, node_id: int, token_type: Type[Token]) -> Optional[int]:
        """Successor node id receiving a *token_type* posted by *node_id*.

        ``None`` when *node_id* is the exit (the token is a graph result).
        """
        key = (node_id, token_type)
        if key in self._dispatch:
            return self._dispatch[key]
        candidates = [
            s for s in self._succ[node_id]
            if self._nodes[s].op_class.accepts(token_type)
        ]
        if not candidates:
            if node_id == self.exit:
                self._dispatch[key] = None
                return None
            raise GraphError(
                f"{self._nodes[node_id].name} posted {token_type.__name__} "
                f"but no successor accepts it"
            )
        if len(candidates) > 1:
            names = [self._nodes[c].name for c in candidates]
            raise GraphError(
                f"{token_type.__name__} from {self._nodes[node_id].name} is "
                f"ambiguous: accepted by {names}"
            )
        self._dispatch[key] = candidates[0]
        return candidates[0]

    def matching_merge(self, opener_id: int) -> int:
        """The merge/stream node closing the group opened by *opener_id*."""
        try:
            return self._matching[opener_id]
        except KeyError:
            raise GraphError(
                f"{self._nodes[opener_id].name} does not open a group"
            ) from None

    def group_depth(self, node_id: int) -> int:
        """Split-nesting depth of tokens *entering* this node."""
        return self._depth_in[node_id]

    # -- validation ----------------------------------------------------------
    def _find_entry(self) -> int:
        entries = [i for i in self._succ if not self._pred[i]]
        if len(entries) != 1:
            names = [self._nodes[i].name for i in entries]
            raise GraphError(f"graph must have exactly one entry, found {names}")
        return entries[0]

    def _find_exit(self) -> int:
        exits = [i for i in self._succ if not self._succ[i]]
        if len(exits) != 1:
            names = [self._nodes[i].name for i in exits]
            raise GraphError(f"graph must have exactly one exit, found {names}")
        return exits[0]

    def _check_acyclic(self) -> None:
        state: Dict[int, int] = {}

        def visit(u: int, stack: Tuple[int, ...]) -> None:
            if state.get(u) == 1:
                names = [self._nodes[i].name for i in stack + (u,)]
                raise GraphError(f"cycle in flow graph: {' -> '.join(names)}")
            if state.get(u) == 2:
                return
            state[u] = 1
            for v in self._succ[u]:
                visit(v, stack + (u,))
            state[u] = 2

        visit(self.entry, ())
        unreached = [
            self._nodes[i].name for i in self._succ if state.get(i) != 2
        ]
        if unreached:
            raise GraphError(f"nodes unreachable from entry: {unreached}")

    def _check_types(self) -> None:
        for u, succs in self._succ.items():
            for v in succs:
                out = self._nodes[u].op_class.out_types
                if not any(self._nodes[v].op_class.accepts(t) for t in out):
                    raise GraphError(
                        f"type mismatch on edge {self._nodes[u].name} >> "
                        f"{self._nodes[v].name}: outputs "
                        f"{[t.__name__ for t in out]} not accepted by "
                        f"{self._nodes[v].op_class.__name__}"
                    )
            # every declared out type must go somewhere (unless exit)
            if u != self.exit:
                for t in self._nodes[u].op_class.out_types:
                    self.dispatch(u, t)

    def _check_structure(self) -> None:
        """Propagate group stacks; record split→merge matching."""
        stacks: Dict[int, Tuple[int, ...]] = {}
        order = self._topo_order()
        stacks[self.entry] = ()
        for u in order:
            stack_in = stacks[u]
            node = self._nodes[u]
            self._depth_in[u] = len(stack_in)
            if node.kind == OpKind.LEAF:
                stack_out = stack_in
            elif node.kind == OpKind.SPLIT:
                stack_out = stack_in + (u,)
            elif node.kind in (OpKind.MERGE, OpKind.STREAM):
                if not stack_in:
                    raise GraphError(
                        f"{node.name} ({node.kind}) has no enclosing split"
                    )
                opener = stack_in[-1]
                prev = self._matching.get(opener)
                if prev is not None and prev != u:
                    raise GraphError(
                        f"split {self._nodes[opener].name} matches two "
                        f"different closers: {self._nodes[prev].name} and "
                        f"{node.name}; all paths of a split-merge construct "
                        f"must reconverge to a single merge/stream"
                    )
                self._matching[opener] = u
                stack_out = stack_in[:-1]
                if node.kind == OpKind.STREAM:
                    stack_out = stack_out + (u,)
            else:  # pragma: no cover - defensive
                raise GraphError(f"unknown op kind {node.kind!r}")
            if u == self.exit:
                if self.scatter:
                    if len(stack_out) != 1:
                        raise GraphError(
                            f"a scatter graph must end inside exactly one "
                            f"open group; exit is at depth {len(stack_out)}"
                        )
                    self.scatter_opener = stack_out[-1]
                elif stack_out:
                    names = [self._nodes[i].name for i in stack_out]
                    raise GraphError(
                        f"unbalanced split-merge constructs: groups opened "
                        f"by {names} are never merged"
                    )
                continue
            for v in self._succ[u]:
                if v in stacks and stacks[v] != stack_out:
                    raise GraphError(
                        f"inconsistent split nesting at {self._nodes[v].name}: "
                        f"paths disagree about enclosing split-merge constructs"
                    )
                stacks[v] = stack_out

    # -- visualization ---------------------------------------------------
    def to_dot(self) -> str:
        """Graphviz source for the flow graph.

        The paper (§6): the flow graph "can be easily visualized and
        represents therefore a valuable tool for thinking and
        experimenting with different parallelization strategies".
        Node shapes encode the operation kind (trapezium split, inverted
        trapezium merge, hexagon stream, box leaf); labels carry the
        thread collection.
        """
        shapes = {
            OpKind.LEAF: "box",
            OpKind.SPLIT: "trapezium",
            OpKind.MERGE: "invtrapezium",
            OpKind.STREAM: "hexagon",
        }
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for i, node in enumerate(self._nodes):
            label = f"{node.name}\\n[{node.collection.name}]"
            lines.append(
                f'  n{i} [label="{label}" shape={shapes[node.kind]}];'
            )
        for u, succs in sorted(self._succ.items()):
            for v in succs:
                lines.append(f"  n{u} -> n{v};")
        lines.append("}")
        return "\n".join(lines)

    def describe(self) -> str:
        """A terminal-friendly structural summary of the graph."""
        kind_marks = {
            OpKind.LEAF: "[leaf  ]",
            OpKind.SPLIT: "[split ]",
            OpKind.MERGE: "[merge ]",
            OpKind.STREAM: "[stream]",
        }
        lines = [
            f"flow graph {self.name!r}: {len(self._nodes)} operations, "
            f"entry={self._nodes[self.entry].name}, "
            f"exit={self._nodes[self.exit].name}"
        ]
        for u in self._topo_order():
            node = self._nodes[u]
            succs = ", ".join(self._nodes[v].name for v in self._succ[u])
            arrow = f" >> {succs}" if succs else "  (exit)"
            depth = "  " * self._depth_in[u]
            lines.append(
                f"  {kind_marks[node.kind]} {depth}{node.name} "
                f"@ {node.collection.name}/{node.route_class.__name__}{arrow}"
            )
        for opener, closer in sorted(self._matching.items()):
            lines.append(
                f"  group: {self._nodes[opener].name} ... closed by "
                f"{self._nodes[closer].name}"
            )
        return "\n".join(lines)

    def _topo_order(self) -> List[int]:
        indeg = {i: len(self._pred[i]) for i in self._succ}
        ready = [i for i, d in sorted(indeg.items()) if d == 0]
        order: List[int] = []
        while ready:
            u = ready.pop(0)
            order.append(u)
            for v in self._succ[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    ready.append(v)
        return order

    def __repr__(self) -> str:
        return f"<Flowgraph {self.name!r} nodes={len(self._nodes)}>"
