"""Table 2 — graph-call overhead on a running Game of Life service.

The paper runs a 5620×5620-cell Game of Life on 4 machines (1000 ms per
iteration) and lets a client application periodically request randomly
located fixed-size blocks through the exposed read graph.  Table 2
reports, per block size, the median call time, the slowed-down iteration
time, and the average calls per second.

    block (w×h)   call (median)  iteration   calls/s
    —             —              1000 ms     (no calls)
    40×40         1.66 ms        1041 ms     66.8
    400×400       22.14 ms       1284 ms     31.8
    400×2400      130.43 ms      1381 ms     6.9

The client issues the next call ~13 ms after the previous one returns
(matching the paper's observed pacing: 1.66 ms calls at 66.8 calls/s).

:func:`run` reproduces the table on the *simulated* engine (virtual
time, paper-scale world).  :func:`run_resident` re-expresses the same
protocol against the resident service tier (ISSUE 10): a real
:class:`~repro.service.ServiceEngine` cluster stays up across the whole
sweep while an external client *process* issues paced ``gol.read``
calls over TCP and the console keeps iterating the world — the
paper-vs-resident comparison the ROADMAP asks for.  Wall-clock numbers
on a shrunk world, so the shape (calls stay cheap, iterations slow only
modestly) is the comparable part, not the absolute milliseconds.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..apps.gameoflife import GolIterToken
from ..apps.gol_service import GameOfLifeService, GolReadRequest
from ..cluster import paper_cluster
from ..runtime import SimEngine
from .common import ExperimentResult

__all__ = ["run", "run_resident", "BLOCK_SIZES"]

#: (width, height) request sizes from the paper's Table 2
BLOCK_SIZES: List[Optional[Tuple[int, int]]] = [
    None, (40, 40), (400, 400), (400, 2400)
]

GOL_FLOPS = 200e6
CLIENT_PAUSE = 13e-3

PAPER_TABLE2 = {
    None: (None, 1000.0, None),
    (40, 40): (1.66, 1041.0, 66.8),
    (400, 400): (22.14, 1284.0, 31.8),
    (400, 2400): (130.43, 1381.0, 6.9),
}


def _measure(world_side: int, n_workers: int, block: Optional[Tuple[int, int]],
             n_iters: int, seed: int = 7,
             tracer=None) -> Tuple[float, float, float]:
    """Returns (median call ms, mean iteration ms, calls per second)."""
    rng = np.random.default_rng(seed)
    world = (rng.random((world_side, world_side)) < 0.35).astype(np.uint8)
    engine = SimEngine(
        paper_cluster(n_workers, flops=GOL_FLOPS),
        serialize_payloads=False,
        tracer=tracer,
    )
    svc = GameOfLifeService(engine, world,
                            engine.cluster.node_names[:n_workers])
    svc.load()
    svc.step(improved=True)  # warm-up (launch delays)

    call_times: List[float] = []
    stop = [False]

    def client(sim):
        w, h = block
        while not stop[0]:
            row = int(rng.integers(0, world_side - h + 1))
            col = int(rng.integers(0, world_side - w + 1))
            start = sim.now
            yield svc.start_read(row, col, h, w)
            call_times.append(sim.now - start)
            yield sim.timeout(CLIENT_PAUSE)

    started = engine.sim.now
    if block is not None:
        engine.spawn(client(engine.sim), name="table2-client")
    # drive the iterations with run_until: the client loop runs forever,
    # so draining the whole event queue would never return
    iter_total = 0.0
    for _ in range(n_iters):
        t0 = engine.sim.now
        done = engine.start(svc.improved_graph, GolIterToken(svc.iteration + 1))
        svc.iteration += 1
        engine.run_until(done)
        iter_total += engine.sim.now - t0
    stop[0] = True
    elapsed = engine.sim.now - started

    median_call = float(np.median(call_times)) if call_times else 0.0
    calls_per_sec = len(call_times) / elapsed if call_times else 0.0
    return median_call * 1e3, iter_total / n_iters * 1e3, calls_per_sec


def run(fast: bool = False, tracer=None) -> ExperimentResult:
    world_side = 1408 if fast else 5620
    n_iters = 1 if fast else 3
    # fast mode shrinks the tall block so it still fits the smaller world
    blocks = ([None, (40, 40), (400, 400), (400, 1200)] if fast
              else BLOCK_SIZES)
    rows: List[List] = []
    data = {}
    for block in blocks:
        call_ms, iter_ms, cps = _measure(world_side, 4, block, n_iters,
                                         tracer=tracer)
        label = "none" if block is None else f"{block[0]}x{block[1]}"
        paper = PAPER_TABLE2.get(block, (None, None, None))
        rows.append([
            label,
            call_ms if block else float("nan"),
            iter_ms,
            cps if block else float("nan"),
            paper[0] if paper[0] is not None else float("nan"),
            paper[1] if paper[1] is not None else float("nan"),
            paper[2] if paper[2] is not None else float("nan"),
        ])
        data[label] = {"call_ms": call_ms, "iter_ms": iter_ms, "cps": cps}
    return ExperimentResult(
        name="table2",
        title="Simulation iteration time with and without graph calls "
              "(Game of Life service, 4 nodes)",
        headers=["block", "call [ms]", "iter [ms]", "calls/s",
                 "paper call", "paper iter", "paper c/s"],
        rows=rows,
        paper_reference="Paper Table 2: 1000 ms baseline iteration; calls "
                        "grow from 1.66 ms (40x40) to 130 ms (400x2400) "
                        "while the iteration slows only to 1041–1381 ms — "
                        "implicit overlap keeps graph calls cheap.",
        notes=f"world {world_side}², {n_iters} measured iterations, client "
              f"pause {CLIENT_PAUSE * 1e3:.0f} ms between calls",
        data=data,
    )


# ---------------------------------------------------------------------------
# the same protocol against the resident service tier (ISSUE 10)
# ---------------------------------------------------------------------------

def _resident_client(address, side, cmd_q, res_q, stop):
    """External client process: one session, paced reads per command.

    The session is opened *before* the host drives any iteration and
    stays open for the whole sweep — matching how a long-lived client of
    a resident service behaves, and keeping the session handshake out of
    every measured phase.  Each command is a ``(w, h)`` block; the
    client paces reads until ``stop`` is set, then reports its latency
    samples; ``None`` ends the process.
    """
    import time as _time

    from ..service import ServiceClient

    try:
        with ServiceClient(address, name="table2-client") as client:
            client.open()
            res_q.put(("ready", 0, []))
            while True:
                block = cmd_q.get()
                if block is None:
                    return
                w, h = block
                latencies: List[float] = []
                wrong = 0
                j = 0
                # at least one call per phase, even if the phase raced
                while not stop.is_set() or not latencies:
                    row = (j * 5) % (side - h + 1)
                    col = (j * 7) % (side - w + 1)
                    t0 = _time.perf_counter()
                    token = client.call(
                        "gol.read", GolReadRequest(row, col, h, w),
                        timeout=60, retries=100, backoff=0.01)
                    latencies.append(_time.perf_counter() - t0)
                    if token.data.array.shape != (h, w):
                        wrong += 1
                    j += 1
                    _time.sleep(CLIENT_PAUSE)
                res_q.put(("ok", wrong, latencies))
    except Exception as exc:  # pragma: no cover - harness failure path
        res_q.put((f"error: {exc!r}", 0, []))


def run_resident(fast: bool = False, tracer=None) -> ExperimentResult:
    """Table 2's protocol on the resident service tier (wall clock).

    One :class:`~repro.service.ServiceEngine` cluster stays up for the
    whole sweep; per block size an external client process issues paced
    ``gol.read`` calls over TCP while the console iterates the world.
    """
    import multiprocessing
    import time

    from ..service import AdmissionPolicy, ServiceEngine

    side = 96 if fast else 192
    n_iters = 2 if fast else 4
    blocks: List[Optional[Tuple[int, int]]] = [
        None, (8, 8), (24, 24), (24, 48)]

    rng = np.random.default_rng(7)
    world = (rng.random((side, side)) < 0.35).astype(np.uint8)
    engine = ServiceEngine(
        admission=AdmissionPolicy(max_concurrent=2, max_queue=8,
                                  session_window=4),
        tracer=tracer)
    rows: List[List] = []
    data = {}
    ctx = multiprocessing.get_context("fork")
    cmd_q, res_q, stop = ctx.Queue(), ctx.Queue(), ctx.Event()
    proc = None
    try:
        gol = GameOfLifeService(engine, world, ["node01", "node02"])
        engine.expose(gol.read_graph, "gol.read")
        address = engine.serve()
        gol.load()

        # The client session must open before the host drives its first
        # iteration and then stays open for the whole sweep (long-lived
        # client of a resident service).
        proc = ctx.Process(target=_resident_client,
                           args=(address, side, cmd_q, res_q, stop))
        proc.start()
        status, _, _ = res_q.get(timeout=60)
        if status != "ready":
            raise RuntimeError(f"resident client failed to open: {status}")
        gol.step(improved=True)  # warm-up (first-run launch costs)

        # iterations on the shrunk world are milliseconds, so a phase
        # additionally runs until the paced client had time for a
        # handful of calls (the paper's phases last seconds each)
        min_phase = 0.4 if fast else 1.5
        for block in blocks:
            stop.clear()
            if block is not None:
                cmd_q.put(block)
            iter_total = 0.0
            iters_done = 0
            t_start = time.perf_counter()
            while iters_done < n_iters or (
                    time.perf_counter() - t_start < min_phase):
                t0 = time.perf_counter()
                gol.step(improved=True)
                iter_total += time.perf_counter() - t0
                iters_done += 1
            elapsed = time.perf_counter() - t_start
            call_ms, cps = float("nan"), float("nan")
            if block is not None:
                stop.set()
                status, wrong, latencies = res_q.get(timeout=60)
                if status != "ok":
                    raise RuntimeError(f"resident client failed: {status}")
                if wrong:
                    raise RuntimeError(
                        f"{wrong} block reads had the wrong shape")
                if latencies:
                    call_ms = float(np.median(latencies)) * 1e3
                    cps = len(latencies) / elapsed
            iter_ms = iter_total / iters_done * 1e3
            label = "none" if block is None else f"{block[0]}x{block[1]}"
            rows.append([label, call_ms, iter_ms, cps])
            data[label] = {"call_ms": call_ms, "iter_ms": iter_ms,
                           "cps": cps}
        cmd_q.put(None)
        proc.join(timeout=30)
    finally:
        if proc is not None and proc.is_alive():
            proc.terminate()
        engine.shutdown()
    return ExperimentResult(
        name="table2r",
        title="Resident service tier under Table 2's protocol (wall "
              "clock, external client process over TCP)",
        headers=["block", "call [ms]", "iter [ms]", "calls/s"],
        rows=rows,
        paper_reference="Paper Table 2 shape: graph calls stay cheap "
                        "while iterations slow only modestly; compare "
                        "against the in-sim `table2` reproduction.",
        notes=f"world {side}², {n_iters} measured iterations per block, "
              f"client pause {CLIENT_PAUSE * 1e3:.0f} ms between calls, "
              f"2 worker kernels + console, admission 2/8/4",
        data=data,
    )
