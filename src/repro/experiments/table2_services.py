"""Table 2 — graph-call overhead on a running Game of Life service.

The paper runs a 5620×5620-cell Game of Life on 4 machines (1000 ms per
iteration) and lets a client application periodically request randomly
located fixed-size blocks through the exposed read graph.  Table 2
reports, per block size, the median call time, the slowed-down iteration
time, and the average calls per second.

    block (w×h)   call (median)  iteration   calls/s
    —             —              1000 ms     (no calls)
    40×40         1.66 ms        1041 ms     66.8
    400×400       22.14 ms       1284 ms     31.8
    400×2400      130.43 ms      1381 ms     6.9

The client issues the next call ~13 ms after the previous one returns
(matching the paper's observed pacing: 1.66 ms calls at 66.8 calls/s).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..apps.gameoflife import GolIterToken
from ..apps.gol_service import GameOfLifeService, GolReadRequest
from ..cluster import paper_cluster
from ..runtime import SimEngine
from .common import ExperimentResult

__all__ = ["run", "BLOCK_SIZES"]

#: (width, height) request sizes from the paper's Table 2
BLOCK_SIZES: List[Optional[Tuple[int, int]]] = [
    None, (40, 40), (400, 400), (400, 2400)
]

GOL_FLOPS = 200e6
CLIENT_PAUSE = 13e-3

PAPER_TABLE2 = {
    None: (None, 1000.0, None),
    (40, 40): (1.66, 1041.0, 66.8),
    (400, 400): (22.14, 1284.0, 31.8),
    (400, 2400): (130.43, 1381.0, 6.9),
}


def _measure(world_side: int, n_workers: int, block: Optional[Tuple[int, int]],
             n_iters: int, seed: int = 7,
             tracer=None) -> Tuple[float, float, float]:
    """Returns (median call ms, mean iteration ms, calls per second)."""
    rng = np.random.default_rng(seed)
    world = (rng.random((world_side, world_side)) < 0.35).astype(np.uint8)
    engine = SimEngine(
        paper_cluster(n_workers, flops=GOL_FLOPS),
        serialize_payloads=False,
        tracer=tracer,
    )
    svc = GameOfLifeService(engine, world,
                            engine.cluster.node_names[:n_workers])
    svc.load()
    svc.step(improved=True)  # warm-up (launch delays)

    call_times: List[float] = []
    stop = [False]

    def client(sim):
        w, h = block
        while not stop[0]:
            row = int(rng.integers(0, world_side - h + 1))
            col = int(rng.integers(0, world_side - w + 1))
            start = sim.now
            yield svc.start_read(row, col, h, w)
            call_times.append(sim.now - start)
            yield sim.timeout(CLIENT_PAUSE)

    started = engine.sim.now
    if block is not None:
        engine.spawn(client(engine.sim), name="table2-client")
    # drive the iterations with run_until: the client loop runs forever,
    # so draining the whole event queue would never return
    iter_total = 0.0
    for _ in range(n_iters):
        t0 = engine.sim.now
        done = engine.start(svc.improved_graph, GolIterToken(svc.iteration + 1))
        svc.iteration += 1
        engine.run_until(done)
        iter_total += engine.sim.now - t0
    stop[0] = True
    elapsed = engine.sim.now - started

    median_call = float(np.median(call_times)) if call_times else 0.0
    calls_per_sec = len(call_times) / elapsed if call_times else 0.0
    return median_call * 1e3, iter_total / n_iters * 1e3, calls_per_sec


def run(fast: bool = False, tracer=None) -> ExperimentResult:
    world_side = 1408 if fast else 5620
    n_iters = 1 if fast else 3
    # fast mode shrinks the tall block so it still fits the smaller world
    blocks = ([None, (40, 40), (400, 400), (400, 1200)] if fast
              else BLOCK_SIZES)
    rows: List[List] = []
    data = {}
    for block in blocks:
        call_ms, iter_ms, cps = _measure(world_side, 4, block, n_iters,
                                         tracer=tracer)
        label = "none" if block is None else f"{block[0]}x{block[1]}"
        paper = PAPER_TABLE2.get(block, (None, None, None))
        rows.append([
            label,
            call_ms if block else float("nan"),
            iter_ms,
            cps if block else float("nan"),
            paper[0] if paper[0] is not None else float("nan"),
            paper[1] if paper[1] is not None else float("nan"),
            paper[2] if paper[2] is not None else float("nan"),
        ])
        data[label] = {"call_ms": call_ms, "iter_ms": iter_ms, "cps": cps}
    return ExperimentResult(
        name="table2",
        title="Simulation iteration time with and without graph calls "
              "(Game of Life service, 4 nodes)",
        headers=["block", "call [ms]", "iter [ms]", "calls/s",
                 "paper call", "paper iter", "paper c/s"],
        rows=rows,
        paper_reference="Paper Table 2: 1000 ms baseline iteration; calls "
                        "grow from 1.66 ms (40x40) to 130 ms (400x2400) "
                        "while the iteration slows only to 1041–1381 ms — "
                        "implicit overlap keeps graph calls cheap.",
        notes=f"world {world_side}², {n_iters} measured iterations, client "
              f"pause {CLIENT_PAUSE * 1e3:.0f} ms between calls",
        data=data,
    )
