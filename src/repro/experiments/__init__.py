"""Reproduction harnesses for every table and figure of the evaluation.

Each module exposes ``run(fast=False) -> ExperimentResult``:

- :mod:`.fig6_throughput`   — Figure 6, ring throughput DPS vs sockets
- :mod:`.table1_overlap`    — Table 1, matmul overlap reductions
- :mod:`.fig9_gol_speedup`  — Figure 9, Game of Life speedups
- :mod:`.table2_services`   — Table 2, graph-call overhead (``table2``
  in-sim; ``table2r`` against the resident service tier)
- :mod:`.fig15_lu_speedup`  — Figure 15, LU pipelined vs non-pipelined
"""

from . import (
    fig6_throughput,
    fig9_gol_speedup,
    fig15_lu_speedup,
    table1_overlap,
    table2_services,
)
from .common import ExperimentResult, format_table

ALL = {
    "fig6": fig6_throughput.run,
    "table1": table1_overlap.run,
    "fig9": fig9_gol_speedup.run,
    "table2": table2_services.run,
    "table2r": table2_services.run_resident,
    "fig15": fig15_lu_speedup.run,
}

__all__ = [
    "ALL",
    "ExperimentResult",
    "fig6_throughput",
    "fig9_gol_speedup",
    "fig15_lu_speedup",
    "format_table",
    "table1_overlap",
    "table2_services",
]
