"""Table 1 — execution-time reduction from overlapping comm and compute.

The paper multiplies two 1024×1024 matrices on 1–4 compute nodes with
block sizes 256/128/64/32 (splitting factors s = 4..32), sweeping the
communication/computation ratio, and reports the reduction in execution
time due to DPS's implicit overlap, against the serialized
(communication + computation) execution:

    reduction = 1 − T_overlapped / (T_comm + T_comp)
    potential g = ratio/(ratio+1) if ratio <= 1 else 1/(1+ratio)

``T_comm`` and ``T_comp`` come from the cost model (total bytes through
the master's NICs, total flops over the workers); ``T_overlapped`` is the
measured virtual makespan of the pipelined DPS run.

Calibration: the paper's matmul kernel ran at roughly 220 Mflop/s on the
733 MHz PIII (blocked C++ code); the effective socket bandwidth is the
Figure 6 plateau.  See DESIGN.md §2.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..apps.matmul import block_multiply
from ..cluster import ClusterSpec, NetworkSpec, NodeSpec, paper_cluster
from ..runtime.base import DATA_HEADER_BYTES
from .common import ExperimentResult

__all__ = ["run", "PAPER_TABLE1"]

#: effective rate of the paper's block-matmul kernel
MATMUL_FLOPS = 220e6

#: (block size -> {nodes -> (reduction %, ratio)}) from the paper's Table 1
PAPER_TABLE1 = {
    256: {1: (6.7, 0.22), 2: (13.6, 0.33), 3: (15.8, 0.44), 4: (23.9, 0.63)},
    128: {1: (9.1, 0.45), 2: (19.8, 0.66), 3: (29.5, 0.97), 4: (35.6, 1.36)},
    64: {1: (17.6, 0.94), 2: (28.7, 1.28), 3: (32.1, 1.92), 4: (27.2, 2.54)},
    32: {1: (25.2, 2.09), 2: (24.9, 2.76), 3: (19.5, 4.19), 4: (15.6, 5.54)},
}


def _model_times(n: int, s: int, p: int, spec: ClusterSpec) -> tuple:
    """(T_comm, T_comp) of the serialized execution, from the cost model."""
    nb = n // s
    task_bytes = 2 * s * nb * nb * 8 + DATA_HEADER_BYTES
    result_bytes = nb * nb * 8 + DATA_HEADER_BYTES
    n_tasks = s * s
    net = spec.network
    t_comm = (
        n_tasks * (task_bytes + result_bytes) / net.bandwidth
        + 2 * n_tasks * (net.send_overhead + net.recv_overhead)
    )
    t_comp = 2.0 * n**3 / (MATMUL_FLOPS * p)
    return t_comm, t_comp


def run(fast: bool = False, tracer=None) -> ExperimentResult:
    n = 512 if fast else 1024
    block_sizes = [n // 4, n // 8, n // 16, n // 32]
    node_counts = [1, 2] if fast else [1, 2, 3, 4]
    # the paper's sustained socket throughput is ~35 MB/s (Figure 6 plateau)
    spec = paper_cluster(5, flops=MATMUL_FLOPS,
                         network=NetworkSpec(bandwidth=35e6))
    rng = np.random.default_rng(42)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))

    rows: List[List] = []
    reductions = {}
    ratios = {}
    for block in block_sizes:
        s = n // block
        for p in node_counts:
            run_ = block_multiply(spec, a, b, s=s, n_workers=p,
                                  window=3 * p, tracer=tracer)
            if not run_.check(a, b):  # pragma: no cover - defensive
                raise AssertionError("distributed product is wrong")
            t_comm, t_comp = _model_times(n, s, p, spec)
            ratio = t_comm / t_comp
            t_serial = t_comm + t_comp
            reduction = 100.0 * (1.0 - run_.makespan / t_serial)
            potential = 100.0 * (
                ratio / (ratio + 1.0) if ratio <= 1.0 else 1.0 / (1.0 + ratio)
            )
            paper = PAPER_TABLE1.get(block * (1024 // n), {}).get(p)
            rows.append([
                block, p, reduction, ratio, potential,
                paper[0] if paper else float("nan"),
                paper[1] if paper else float("nan"),
            ])
            reductions[(block, p)] = reduction
            ratios[(block, p)] = ratio
    return ExperimentResult(
        name="table1",
        title="Reduction in execution time due to overlapping and "
              "corresponding comm/comp ratio (block matmul, 1024²)",
        headers=["block", "nodes", "reduction %", "ratio",
                 "potential g %", "paper red. %", "paper ratio"],
        rows=rows,
        paper_reference="Paper Table 1: reductions 6.7%–35.6%; the best "
                        "reductions (25–35%) occur at comm/comp ratios "
                        "0.9–2.5, falling off on both sides.",
        notes=f"n={n}; serialized baseline T_comm+T_comp from the cost "
              f"model; matmul kernel calibrated to "
              f"{MATMUL_FLOPS / 1e6:.0f} Mflop/s",
        data={"reductions": reductions, "ratios": ratios},
    )
