"""Figure 15 — LU factorization speedup, pipelined vs non-pipelined.

The paper factors a 4096×4096 matrix on 1–8 nodes and compares the fully
pipelined graph (stream operations) with a variant using merge+split
barriers instead.  The pipelined variant clearly wins, with the gap
growing with the node count (the barrier serializes the per-column
stages, idling workers between phases).

We really factor a 1024×1024 matrix split into 16 block columns and
price every operation as if the matrix were 4096×4096 (``scale=4``) —
the schedule structure (tokens, dependencies, message counts) is
identical, only the real arithmetic is cheaper.  "No optimized linear
algebra library was used" in the paper, so the cost model uses the plain
C++ kernel rate (~80 Mflop/s).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..apps.lu import DistributedLU
from ..cluster import paper_cluster
from ..core import FlowControlPolicy
from ..runtime import SimEngine
from .common import ExperimentResult

__all__ = ["run"]

LU_FLOPS = 80e6


def _lu_time(a: np.ndarray, s: int, p: int, pipelined: bool,
             scale: float, check: bool, tracer=None) -> float:
    engine = SimEngine(paper_cluster(max(p, 1), flops=LU_FLOPS),
                       policy=FlowControlPolicy(window=None),
                       serialize_payloads=False, tracer=tracer)
    lu = DistributedLU(engine, a, s, engine.cluster.node_names[:p],
                       pipelined=pipelined, scale=scale)
    lu.load()
    result = lu.run()
    if check and not lu.check():  # pragma: no cover - defensive
        raise AssertionError("P·A != L·U")
    return result.makespan


def run(fast: bool = False, tracer=None) -> ExperimentResult:
    n_real = 256 if fast else 512
    scale = 4096 / n_real
    s = 8 if fast else 16
    node_counts = [1, 2, 4] if fast else [1, 2, 3, 4, 5, 6, 7, 8]
    rng = np.random.default_rng(99)
    a = rng.standard_normal((n_real, n_real)) + n_real * np.eye(n_real)

    base = None
    rows: List[List] = []
    speedups: Dict[tuple, float] = {}
    for p in node_counts:
        t_pipe = _lu_time(a, s, p, True, scale,
                          check=(p == node_counts[-1]), tracer=tracer)
        t_barrier = _lu_time(a, s, p, False, scale, check=False)
        if base is None:
            base = t_barrier  # 1-node non-pipelined run
        s_pipe = base / t_pipe
        s_barrier = base / t_barrier
        rows.append([p, s_pipe, s_barrier, t_pipe, t_barrier])
        speedups[("pipelined", p)] = s_pipe
        speedups[("non-pipelined", p)] = s_barrier
    return ExperimentResult(
        name="fig15",
        title="LU factorization speedup (virtual 4096²): pipelined "
              "(stream ops) vs non-pipelined (merge+split barriers)",
        headers=["nodes", "speedup pipe", "speedup barrier",
                 "t_pipe [s]", "t_barrier [s]"],
        rows=rows,
        paper_reference="Paper Fig. 15: both curves start at ~1; the "
                        "pipelined variant dominates, reaching ~6-7 at 8 "
                        "nodes while the non-pipelined one flattens "
                        "around 4-5.",
        notes=f"real matrix {n_real}², s={s} block columns, costs scaled "
              f"x{scale:.0f} to the paper's 4096² (identical schedule "
              f"structure); baseline: non-pipelined on 1 node",
        data={"speedups": speedups},
    )
