"""Shared plumbing for the table/figure reproduction harnesses.

Each experiment module exposes ``run(fast=False) -> ExperimentResult``.
``fast`` shrinks sweeps for CI; the default parameters regenerate the
paper's tables and figures at full scope.  Results carry both the
measured rows and the paper's reference values so EXPERIMENTS.md can be
generated mechanically and shape checks can be asserted in benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ExperimentResult", "format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    floatfmt: str = "{:.2f}",
) -> str:
    """Plain-text table with right-aligned numeric columns."""
    def fmt(v: Any) -> str:
        if isinstance(v, float):
            return floatfmt.format(v)
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Outcome of one table/figure reproduction."""

    #: experiment id, e.g. "fig6", "table1"
    name: str
    #: one-line description of what the paper reports
    title: str
    headers: List[str]
    rows: List[List[Any]]
    #: the paper's reference numbers, for side-by-side comparison
    paper_reference: str = ""
    #: free-form notes about scope/calibration
    notes: str = ""
    #: arbitrary extra data for shape assertions in benchmarks
    data: Dict[str, Any] = field(default_factory=dict)

    def table(self) -> str:
        return format_table(self.headers, self.rows)

    def report(self) -> str:
        parts = [f"== {self.name}: {self.title} ==", self.table()]
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)
