"""Figure 9 — Game of Life speedup: improved vs standard flow graph.

The paper plots speedup over 1–8 nodes for three world sizes (400×400,
4000×400, 4000×4000) and both iteration graphs.  The improved graph
(border exchange overlapped with the center computation) always wins;
the gap is most pronounced for the smallest world, where communication
overhead is largest, and shrinks as the world grows.

Speedup baseline: the standard graph on one node (per world size), as in
the paper.  The stencil really executes; virtual time is charged via the
cost model calibrated so a 5620²-cell iteration on 4 nodes takes about
one second (the paper's Table 2 baseline), i.e. ~200 Mflop/s effective.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..apps.gameoflife import DistributedGameOfLife
from ..cluster import paper_cluster
from ..runtime import SimEngine
from .common import ExperimentResult

__all__ = ["run", "WORLD_SIZES"]

#: (rows, cols) — the paper labels them 400x400, 4000x400, 4000x4000
WORLD_SIZES: List[Tuple[int, int]] = [(400, 400), (400, 4000), (4000, 4000)]

#: effective rate of the paper's Game of Life kernel (see module docstring)
GOL_FLOPS = 200e6


def _time_per_iteration(world: np.ndarray, n_workers: int,
                        improved: bool, iters: int, tracer=None) -> float:
    engine = SimEngine(paper_cluster(max(n_workers, 1), flops=GOL_FLOPS),
                       tracer=tracer)
    gol = DistributedGameOfLife(
        engine, world, engine.cluster.node_names[:n_workers]
    )
    gol.load()
    gol.step(improved=improved)  # warm-up: application launch delays
    total = 0.0
    for _ in range(iters):
        total += gol.step(improved=improved).makespan
    return total / iters


def run(fast: bool = False, tracer=None) -> ExperimentResult:
    sizes = WORLD_SIZES[:2] if fast else WORLD_SIZES
    node_counts = [1, 2, 4] if fast else [1, 2, 3, 4, 5, 6, 7, 8]
    iters = 1 if fast else 2
    rng = np.random.default_rng(123)

    rows: List[List] = []
    speedups: Dict[Tuple[str, str, int], float] = {}
    for (r, c) in sizes:
        label = f"{c}x{r}"
        world = (rng.random((r, c)) < 0.35).astype(np.uint8)
        base = _time_per_iteration(world, 1, improved=False, iters=iters)
        for p in node_counts:
            t_std = _time_per_iteration(world, p, improved=False, iters=iters)
            t_imp = _time_per_iteration(world, p, improved=True, iters=iters,
                                        tracer=tracer)
            s_std = base / t_std
            s_imp = base / t_imp
            rows.append([label, p, s_std, s_imp, t_std * 1e3, t_imp * 1e3])
            speedups[(label, "std", p)] = s_std
            speedups[(label, "imp", p)] = s_imp
    return ExperimentResult(
        name="fig9",
        title="Game of Life speedup, improved vs standard flow graph",
        headers=["world", "nodes", "speedup std", "speedup imp",
                 "t_std [ms]", "t_imp [ms]"],
        rows=rows,
        paper_reference="Paper Fig. 9: improved >= standard everywhere; "
                        "largest gap at 400x400 (communication-bound), "
                        "smallest at 4000x4000; speedups grow with world "
                        "size, approaching linear for 4000x4000.",
        notes="baseline: standard graph on 1 node per world size; "
              "2 measured iterations after a warm-up iteration",
        data={"speedups": speedups},
    )
