"""Figure 6 — round-trip ring throughput: DPS data objects vs raw sockets.

The paper transfers 100 MB along a ring of 4 PCs, each forwarding blocks
as soon as received, and plots steady-state throughput against the single
transfer size (1 KB … 1 MB).  Sockets plateau around 35–40 MB/s; DPS
tracks them closely for large transfers but pays its control-structure
and serialization overhead on small ones.

We sweep the same sizes; the total volume is scaled with the block size
(steady-state throughput is volume-independent; the harness keeps at
least 60 blocks in every point so the ramp is amortized out).
"""

from __future__ import annotations

from ..apps.ring import run_dps_ring, run_socket_ring
from ..cluster import paper_cluster
from .common import ExperimentResult

__all__ = ["run", "SIZES"]

SIZES = [1_000, 2_000, 5_000, 10_000, 20_000, 50_000,
         100_000, 200_000, 500_000, 1_000_000]

FAST_SIZES = [1_000, 10_000, 100_000, 1_000_000]

PAPER_REFERENCE = (
    "Paper Fig. 6: socket throughput rises from a few MB/s at 1 KB to a "
    "~35 MB/s plateau at >= 100 KB; DPS sits visibly below sockets for "
    "small transfers (control structures dominate) and converges to the "
    "socket curve for large ones."
)


def _total_for(block: int, fast: bool) -> int:
    blocks = 60 if fast else 200
    cap = 20_000_000 if fast else 100_000_000
    return min(max(block * blocks, block * 60), max(cap, block * 60))


def run(fast: bool = False, tracer=None) -> ExperimentResult:
    spec = paper_cluster(4)
    sizes = FAST_SIZES if fast else SIZES
    rows = []
    series = {"size": [], "sockets": [], "dps": []}
    for size in sizes:
        total = _total_for(size, fast)
        sock = run_socket_ring(spec, size, total)
        dps = run_dps_ring(spec, size, total, tracer=tracer)
        ratio = dps.throughput / sock.throughput
        rows.append([size, sock.throughput_mb, dps.throughput_mb, ratio])
        series["size"].append(size)
        series["sockets"].append(sock.throughput_mb)
        series["dps"].append(dps.throughput_mb)
    return ExperimentResult(
        name="fig6",
        title="Round-trip data transfer throughput: DPS vs direct sockets "
              "(4-node ring)",
        headers=["block [B]", "sockets [MB/s]", "DPS [MB/s]", "DPS/sockets"],
        rows=rows,
        paper_reference=PAPER_REFERENCE,
        notes="total volume scaled with block size (>=60 blocks/point); "
              "steady-state throughput measured over the last 80% of blocks",
        data=series,
    )
