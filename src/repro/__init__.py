"""Reproduction of "DPS - Dynamic Parallel Schedules" (Gerlach & Hersch,
HIPS/IPDPS 2003).

A dataflow framework for parallel applications on distributed-memory
clusters: compositional split-compute-merge flow graphs with stream
operations, dynamic thread-collection mapping, implicit pipelining and
overlap of computation and communication, flow control, and parallel
services — executed either on a deterministic simulated cluster
(:class:`~repro.runtime.SimEngine`, virtual time) or on real OS threads
(:class:`~repro.runtime.threaded_engine.ThreadedEngine`).

Quick tour::

    from repro import (
        SimEngine, paper_cluster, ThreadCollection, DpsThread,
        Flowgraph, FlowgraphNode, SplitOperation, LeafOperation,
        MergeOperation, ConstantRoute, RoundRobinRoute,
    )

See ``examples/quickstart.py`` and the README for the full story; the
``repro.experiments`` package regenerates every table and figure of the
paper's evaluation (``python -m repro.cli all --fast``).
"""

from .cluster import (
    Cluster,
    ClusterSpec,
    NetworkSpec,
    NodeSpec,
    paper_cluster,
)
from .core import (
    ConstantRoute,
    DpsThread,
    FlowControlPolicy,
    Flowgraph,
    FlowgraphBuilder,
    FlowgraphNode,
    GraphError,
    LeafOperation,
    LoadBalancedRoute,
    MergeOperation,
    Operation,
    Route,
    RoundRobinRoute,
    SplitOperation,
    StreamOperation,
    ThreadCollection,
    route_fn,
)
from .runtime import Application, RunResult, ScheduleError, SimEngine
from .runtime.threaded_engine import ThreadedEngine
from .serial import Buffer, ComplexToken, SimpleToken, Token, Vector

__version__ = "1.0.0"

__all__ = [
    "Application",
    "Buffer",
    "Cluster",
    "ClusterSpec",
    "ComplexToken",
    "ConstantRoute",
    "DpsThread",
    "FlowControlPolicy",
    "Flowgraph",
    "FlowgraphBuilder",
    "FlowgraphNode",
    "GraphError",
    "LeafOperation",
    "LoadBalancedRoute",
    "MergeOperation",
    "NetworkSpec",
    "NodeSpec",
    "Operation",
    "Route",
    "RoundRobinRoute",
    "RunResult",
    "ScheduleError",
    "SimEngine",
    "SimpleToken",
    "SplitOperation",
    "StreamOperation",
    "ThreadCollection",
    "ThreadedEngine",
    "Token",
    "Vector",
    "paper_cluster",
    "route_fn",
]
