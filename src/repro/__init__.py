"""Reproduction of "DPS - Dynamic Parallel Schedules" (Gerlach & Hersch,
HIPS/IPDPS 2003).

A dataflow framework for parallel applications on distributed-memory
clusters: compositional split-compute-merge flow graphs with stream
operations, dynamic thread-collection mapping, implicit pipelining and
overlap of computation and communication, flow control, and parallel
services — executed on a deterministic simulated cluster
(:class:`~repro.runtime.SimEngine`, virtual time), on real OS threads
(:class:`~repro.runtime.ThreadedEngine`), or on one OS process per
logical node over TCP (:class:`~repro.runtime.MultiprocessEngine`).
All three share the :class:`~repro.runtime.Engine` API — build them
uniformly with :func:`~repro.runtime.create_engine` and attach a
:class:`~repro.trace.Tracer`/:class:`~repro.trace.MetricsRegistry` for
observability on any of them.

Quick tour::

    from repro import (
        SimEngine, paper_cluster, ThreadCollection, DpsThread,
        Flowgraph, FlowgraphNode, SplitOperation, LeafOperation,
        MergeOperation, ConstantRoute, RoundRobinRoute,
    )

See ``examples/quickstart.py`` and the README for the full story; the
``repro.experiments`` package regenerates every table and figure of the
paper's evaluation (``python -m repro.cli all --fast``).
"""

from .cluster import (
    Cluster,
    ClusterSpec,
    NetworkSpec,
    NodeSpec,
    paper_cluster,
)
from .core import (
    ArrivalProcess,
    ConstantRoute,
    DpsThread,
    FlowControlPolicy,
    Flowgraph,
    FlowgraphBuilder,
    FlowgraphNode,
    GraphError,
    LeafOperation,
    LoadBalancedRoute,
    MergeOperation,
    Operation,
    QueueDepthRoute,
    Route,
    RoundRobinRoute,
    RoutingPolicy,
    SplitOperation,
    StreamOperation,
    StreamPolicy,
    StreamSource,
    ThreadCollection,
    Watermark,
    WindowSpec,
    WindowedStream,
    route_fn,
)
from .runtime import (
    Application,
    Engine,
    FaultPolicy,
    KernelFailure,
    MultiprocessEngine,
    RunResult,
    ScalingPolicy,
    ScheduleError,
    SimEngine,
    ThreadedEngine,
    create_engine,
)
from .net import TransportPolicy
from .serial import Buffer, ComplexToken, SimpleToken, Token, Vector
from .service import AdmissionPolicy, ServiceClient, ServiceEngine
from .trace import MetricsRegistry, Tracer, export_chrome_trace

__version__ = "1.0.0"

__all__ = [
    "AdmissionPolicy",
    "Application",
    "ArrivalProcess",
    "Buffer",
    "Cluster",
    "ClusterSpec",
    "ComplexToken",
    "ConstantRoute",
    "DpsThread",
    "Engine",
    "FaultPolicy",
    "FlowControlPolicy",
    "Flowgraph",
    "FlowgraphBuilder",
    "FlowgraphNode",
    "GraphError",
    "KernelFailure",
    "LeafOperation",
    "LoadBalancedRoute",
    "MergeOperation",
    "MetricsRegistry",
    "MultiprocessEngine",
    "NetworkSpec",
    "NodeSpec",
    "Operation",
    "QueueDepthRoute",
    "RoundRobinRoute",
    "Route",
    "RoutingPolicy",
    "RunResult",
    "ScalingPolicy",
    "ScheduleError",
    "ServiceClient",
    "ServiceEngine",
    "SimEngine",
    "SimpleToken",
    "SplitOperation",
    "StreamOperation",
    "StreamPolicy",
    "StreamSource",
    "ThreadCollection",
    "ThreadedEngine",
    "Token",
    "Tracer",
    "TransportPolicy",
    "Vector",
    "Watermark",
    "WindowSpec",
    "WindowedStream",
    "create_engine",
    "export_chrome_trace",
    "paper_cluster",
    "route_fn",
]
