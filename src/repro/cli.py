"""Command-line runner for the paper-reproduction experiments.

Usage::

    python -m repro.cli list
    python -m repro.cli fig6 [--fast]
    python -m repro.cli all --fast
    python -m repro.cli demo            # quickstart: parallel uppercase
    python -m repro.cli demo --engine multiprocess   # real OS processes
    python -m repro.cli ring --engine threaded --trace ring.json
    python -m repro.cli ring --engine multiprocess --kill-kernel node03@#5
    python -m repro.cli stream --engine sim --items 512
    python -m repro.cli stream --engine multiprocess --kill-kernel node02@#40
    python -m repro.cli stream --credit-window 8 --shedding shed
    python -m repro.cli serve --ns-port 7780      # resident GoL service
    python -m repro.cli call --ns-port 7780 --discover
    python -m repro.cli call --ns-port 7780 --service gol.read \
        --block 0 0 8 8 --count 20
    python -m repro.cli join --ns-port 7780 --name node05   # live join
    python -m repro.cli fig9 --fast --trace fig9.json

Each experiment prints its measured table next to the paper's reference
values; ``--fast`` shrinks sweeps for a quick look.  ``--trace FILE``
records a unified event timeline (any engine) and writes it as Chrome
trace-event JSON — open it at https://ui.perfetto.dev.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from .experiments import ALL

__all__ = ["main"]


def _export_trace(tracer, path: str) -> None:
    from .trace import export_chrome_trace

    n = export_chrome_trace(tracer, path)
    print(f"trace: {n} events -> {path} (open at https://ui.perfetto.dev)")


def _run_experiment(name: str, fast: bool,
                    trace_path: Optional[str] = None) -> None:
    runner = ALL[name]
    tracer = None
    if trace_path is not None:
        from .trace import Tracer

        tracer = Tracer()
    t0 = time.perf_counter()
    result = runner(fast=fast, tracer=tracer)
    wall = time.perf_counter() - t0
    print(result.report())
    if result.paper_reference:
        print(f"paper: {result.paper_reference}")
    print(f"(wall time {wall:.1f} s{', fast mode' if fast else ''})")
    if tracer is not None:
        _export_trace(tracer, trace_path)
    print()


def _demo(engine_kind: str = "sim",
          trace_path: Optional[str] = None) -> None:
    from .apps.strings import StringToken, build_uppercase_graph
    from .runtime import create_engine
    from .trace import Tracer, activity_timeline, op_summary

    text = "dynamic parallel schedules"
    graph, *_ = build_uppercase_graph("node01", "node02 node03 node04")
    tracer = Tracer() if trace_path is not None or engine_kind == "sim" \
        else None

    t0 = time.perf_counter()
    with create_engine(engine_kind, nodes=4, tracer=tracer) as engine:
        if engine_kind == "multiprocess":
            engine.register_graph(graph)
        out = engine.run(graph, StringToken(text))
        wall = time.perf_counter() - t0
        kernels = getattr(engine, "kernel_names", None)
    print(f"input : {text!r}")
    if engine_kind == "sim":
        print(f"output: {out.token.text!r}")
        print(f"virtual time: {out.makespan * 1e3:.2f} ms on 4 nodes")
        print()
        print(op_summary(tracer))
        print()
        print(activity_timeline(tracer, width=60))
    elif engine_kind == "threaded":
        print(f"output: {out.text!r}")
        print(f"wall time: {wall * 1e3:.1f} ms on OS threads (1 process)")
    else:
        print(f"output: {out.text!r}")
        print(f"wall time: {wall * 1e3:.1f} ms across kernel processes "
              f"[{', '.join(kernels or [])}] + name server")
    if trace_path is not None:
        _export_trace(tracer, trace_path)


def _ring(engine_kind: str = "threaded",
          trace_path: Optional[str] = None,
          block_bytes: int = 4096, blocks: int = 32) -> None:
    """Push *blocks* blocks around a 4-node ring on any engine."""
    from .apps.ring import RingJobToken, build_ring_graph
    from .runtime import create_engine

    tracer = None
    if trace_path is not None:
        from .trace import Tracer

        tracer = Tracer()
    nodes = ["node01", "node02", "node03", "node04"]
    graph = build_ring_graph(nodes)
    t0 = time.perf_counter()
    with create_engine(engine_kind, nodes=4, tracer=tracer) as engine:
        engine.register_graph(graph)
        out = engine.run(graph, RingJobToken(block_bytes, blocks))
        wall = time.perf_counter() - t0
    done = out.token if engine_kind == "sim" else out
    print(f"ring on {engine_kind} engine: {done.blocks} blocks x "
          f"{block_bytes} B round-tripped over {len(nodes)} hops "
          f"({done.received_bytes} bytes) in {wall * 1e3:.1f} ms")
    if trace_path is not None:
        _export_trace(tracer, trace_path)


def _stream(args) -> int:
    """Run the bursty windowed streaming pipeline on any engine."""
    from .apps.stream_pipeline import (
        StreamJob,
        oracle_digest,
        run_stream_pipeline,
    )
    from .core import StreamPolicy
    from .runtime import create_engine
    from .trace import MetricsRegistry

    job = StreamJob(items=args.items)
    stream = None
    if args.credit_window is not None or args.shedding != "block":
        stream = StreamPolicy(credit_window=args.credit_window,
                              shedding=args.shedding)
    metrics = MetricsRegistry()
    t0 = time.perf_counter()
    with create_engine(args.engine, nodes=4, stream=stream,
                       metrics=metrics) as engine:
        stats = run_stream_pipeline(
            engine, job, "node01", ["node02", "node03"], "node04",
            name="cli-stream")
        wall = time.perf_counter() - t0
    shed = metrics.counter("tokens_shed").value
    print(f"stream on {args.engine} engine: {stats.items} tokens -> "
          f"{stats.windows} windows ({stats.complete_windows} complete), "
          f"digest {stats.digest}")
    print(f"sustained {stats.sustained_tps:.0f} tokens/s, p99 window "
          f"latency {stats.p99_window_latency * 1e3:.2f} ms "
          f"({'virtual' if args.engine == 'sim' else 'wall'} clock), "
          f"wall time {wall * 1e3:.0f} ms")
    if stats.recovered:
        print(f"recovered from a kernel kill mid-stream: "
              f"{stats.replayed_tokens} tokens replayed")
    if shed:
        print(f"lossy credit window shed {shed} tokens "
              f"({args.shedding}); digest reflects the surviving "
              f"{stats.items} tokens")
    elif stream is None or args.shedding == "block":
        ok = stats.digest == oracle_digest(job).digest
        print(f"digest vs engine-free oracle: "
              f"{'MATCH' if ok else 'MISMATCH'}")
        if not ok:
            return 1
    return 0


def _serve(args) -> int:
    """Boot a resident GoL service and serve until interrupted."""
    import numpy as np

    from .apps.gol_service import GameOfLifeService
    from .service import AdmissionPolicy, ServiceEngine

    worker_nodes = [f"node{i + 1:02d}" for i in range(args.workers)]
    rows, cols = args.world
    rng = np.random.default_rng(args.seed)
    world = rng.integers(0, 2, size=(rows, cols), dtype=np.uint8)
    engine = ServiceEngine(
        admission=AdmissionPolicy(max_concurrent=args.max_concurrent,
                                  max_queue=args.max_queue,
                                  session_window=args.session_window),
        ns_port=args.ns_port)
    gol = GameOfLifeService(engine, world, worker_nodes)
    engine.expose(gol.read_graph, "gol.read")
    host, port = engine.serve()
    gol.load()
    print(f"resident GoL service: {rows}x{cols} world on "
          f"{len(worker_nodes)} workers")
    print(f"name server at {host}:{port} — call with:")
    print(f"    python -m repro.cli call --ns-port {port} --discover")
    print("Ctrl-C to drain and shut down")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("\ndraining ...")
        drained = engine.drain_and_shutdown()
        print(f"drained={drained}")
    return 0


def _join(args) -> int:
    """Join a running cluster as a fresh kernel, mid-run.

    Rebuilds the serving application's graphs locally (the same
    parameters the ``serve`` command used, so graph and collection names
    line up), registers with the cluster's name server, and serves: the
    resident engine's liveness loop spots the new lease, runs a
    voluntary rebalance onto this kernel, and starts shipping it work.
    Blocks until the cluster orders shutdown (Ctrl-C to leave early —
    the cluster then treats it as a failure and recovers).
    """
    import threading
    import zlib

    import numpy as np

    from .apps.gol_service import GameOfLifeService
    from .net.kernel import CONSOLE_KERNEL, run_kernel_process
    from .net.nameserver import NameServerClient
    from .runtime.base import Engine

    name = args.name or f"joiner{os.getpid() % 10000:04d}"
    address = ("127.0.0.1", args.ns_port)
    ns = NameServerClient(address)
    try:
        peers = sorted(set(ns.loads()) | {CONSOLE_KERNEL, name})
    finally:
        ns.close()

    # Rebuild the same world/graphs the 'serve' process registered.  The
    # graph uid counter is process-local, so this must be the first
    # service instance built in this process (it is: fresh interpreter).
    rows, cols = args.world
    rng = np.random.default_rng(args.seed)
    world = rng.integers(0, 2, size=(rows, cols), dtype=np.uint8)
    worker_nodes = [f"node{i + 1:02d}" for i in range(args.workers)]
    collector = Engine()
    GameOfLifeService(collector, world, worker_nodes)
    graphs = list(collector._graphs.values())

    # CLI joiners take crc32-derived ordinals far above anything the
    # engine hands out, so ctx/group id ranges can never collide.
    ordinal = 1_000_000 + (zlib.crc32(name.encode("utf-8")) % 1_000_000)
    print(f"joining cluster at {address[0]}:{address[1]} as {name!r} "
          f"(ordinal {ordinal}); Ctrl-C to leave")
    run_kernel_process(name, ordinal, address, peers, graphs,
                       ready=threading.Event(), recover=True,
                       heartbeat_interval=0.25)
    return 0


def _call(args) -> int:
    """Call a resident service (or just discover what is registered)."""
    from .apps.gol_service import GolReadRequest  # registers the tokens
    from .service import ServiceClient

    address = ("127.0.0.1", args.ns_port)
    with ServiceClient(address) as client:
        if args.discover:
            records = client.discover()
            if not records:
                print("(no live services registered)")
            for rec in records:
                ins = ", ".join(rec["in_types"])
                outs = ", ".join(rec["out_types"])
                print(f"{rec['service']:<20} {rec['provider']:<12} "
                      f"({ins}) -> ({outs})")
            return 0
        row, col, height, width = args.block
        latencies = []
        for _ in range(args.count):
            t0 = time.perf_counter()
            result = client.call(args.service,
                                 GolReadRequest(row, col, height, width),
                                 timeout=60, retries=8)
            latencies.append(time.perf_counter() - t0)
        latencies.sort()
        block = result.data.array
        print(f"{args.count} x {args.service} "
              f"[{row}:{row + height}, {col}:{col + width}] "
              f"-> {block.shape[0]}x{block.shape[1]} block, "
              f"{int(block.sum())} live cells")
        print(f"latency p50 {latencies[len(latencies) // 2] * 1e3:.1f} ms, "
              f"max {latencies[-1] * 1e3:.1f} ms; "
              f"busy retries {client.busy_retries}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="dps-repro",
        description="Reproduce the evaluation of 'DPS - Dynamic Parallel "
                    "Schedules' (Gerlach & Hersch, 2003)",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL) + ["all", "list", "demo", "ring", "stream",
                               "serve", "call", "join"],
        help="experiment id (table/figure), 'all', 'list', 'demo', 'ring', "
             "'stream' (bursty windowed streaming pipeline), 'serve' "
             "(resident GoL service), 'call' (service client) or "
             "'join' (add a kernel to a running cluster)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="shrunk parameter sweeps (seconds instead of minutes)",
    )
    parser.add_argument(
        "--engine", choices=["sim", "threaded", "multiprocess"],
        default="sim",
        help="engine for 'demo'/'ring': simulated cluster (default), OS "
             "threads, or one OS process per node over TCP",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record a unified event timeline and write Chrome trace-event "
             "JSON to FILE (view at https://ui.perfetto.dev)",
    )
    parser.add_argument(
        "--unbatched", action="store_true",
        help="multiprocess engine: disable outbox coalescing and ack "
             "aggregation (sets REPRO_TRANSPORT_BATCH=0; the frame-at-a-"
             "time wire path, for A/B comparison)",
    )
    parser.add_argument(
        "--no-shm", action="store_true",
        help="multiprocess engine: disable the shared-memory payload lane "
             "between co-located kernels (sets REPRO_SHM=0)",
    )
    parser.add_argument(
        "--io-mode", choices=["eventloop", "threads"], default=None,
        help="multiprocess engine: socket I/O core — one selectors event "
             "loop per kernel (default) or the per-peer writer / "
             "per-connection reader threads (sets REPRO_IO_MODE)",
    )
    parser.add_argument(
        "--codec", choices=["auto", "fast", "pure"], default=None,
        help="wire codec selection: 'auto' (default) uses the compiled/"
             "plan fast path when available, 'fast' insists on it, "
             "'pure' forces the pure-Python reference codec — bytes are "
             "bit-identical either way (sets REPRO_CODEC)",
    )
    parser.add_argument(
        "--flush-delay-us", type=int, metavar="US", default=None,
        help="eventloop I/O core: timer flush window in microseconds — "
             "data frames queued within the window share one vectored "
             "write; acks/control frames always flush immediately; 0 "
             "(default) keeps only the free quiescent-point coalescing "
             "(sets REPRO_FLUSH_DELAY_US)",
    )
    parser.add_argument(
        "--routing", choices=["round_robin", "queue_depth"], default=None,
        help="split routing policy: as declared by the graph (default) or "
             "queue-depth adaptive — round-robin routes pick the instance "
             "with the shortest observed queue instead (sets "
             "REPRO_ROUTING)",
    )
    parser.add_argument(
        "--min-kernels", type=int, metavar="N", default=None,
        help="multiprocess engine autoscaling floor (sets "
             "REPRO_SCALING_MIN and switches the autoscaler on)",
    )
    parser.add_argument(
        "--max-kernels", type=int, metavar="N", default=None,
        help="multiprocess engine autoscaling ceiling (sets "
             "REPRO_SCALING_MAX and switches the autoscaler on)",
    )
    parser.add_argument(
        "--kill-kernel", metavar="NODE@WHEN", default=None,
        help="multiprocess engine chaos: kill the named kernel process, "
             "e.g. 'node03@0.5' (seconds after start) or 'node03@#5' "
             "(before its 5th data message).  Sets REPRO_FAULT_KILL and "
             "turns recovery on (REPRO_RECOVER=1) unless already set",
    )
    parser.add_argument(
        "--drop-rate", type=float, metavar="P", default=None,
        help="multiprocess engine chaos: drop each received data frame "
             "with probability P in [0,1); deterministic per kernel from "
             "--fault-seed (sets REPRO_FAULT_DROP)",
    )
    parser.add_argument(
        "--delay-ms", type=float, metavar="MS", default=None,
        help="multiprocess engine chaos: delay each received data frame "
             "by up to MS milliseconds (sets REPRO_FAULT_DELAY_MS)",
    )
    parser.add_argument(
        "--fault-seed", type=int, metavar="N", default=None,
        help="seed for the deterministic chaos schedule "
             "(sets REPRO_FAULT_SEED)",
    )
    stm = parser.add_argument_group("streaming ('stream')")
    stm.add_argument(
        "--items", type=int, metavar="N", default=512,
        help="stream: tokens the bursty source injects (default 512)",
    )
    stm.add_argument(
        "--credit-window", type=int, metavar="N", default=None,
        help="stream: per-edge credit window for streaming openers "
             "(default: inherit the schedule-wide flow-control window)",
    )
    stm.add_argument(
        "--shedding", choices=["block", "drop-oldest", "shed"],
        default="block",
        help="stream: behaviour when the credit window saturates — "
             "stall the source (default), ring-buffer the freshest "
             "tokens, or tail-drop the incoming ones",
    )
    svc = parser.add_argument_group("service tier ('serve' / 'call')")
    svc.add_argument(
        "--ns-port", type=int, metavar="PORT", default=7780,
        help="name-server TCP port the service binds / the client "
             "connects to (default 7780)",
    )
    svc.add_argument(
        "--workers", type=int, metavar="N", default=4,
        help="serve: worker kernels hosting world bands (default 4)",
    )
    svc.add_argument(
        "--world", type=int, nargs=2, metavar=("ROWS", "COLS"),
        default=(64, 64),
        help="serve: Game of Life world shape (default 64 64)",
    )
    svc.add_argument(
        "--seed", type=int, metavar="N", default=12345,
        help="serve: RNG seed for the initial world (default 12345)",
    )
    svc.add_argument(
        "--max-concurrent", type=int, metavar="N", default=4,
        help="serve: graph calls executing at once (default 4)",
    )
    svc.add_argument(
        "--max-queue", type=int, metavar="N", default=16,
        help="serve: admitted calls allowed to queue; beyond this "
             "requests are shed with MSG_SVC_BUSY (default 16)",
    )
    svc.add_argument(
        "--session-window", type=int, metavar="N", default=8,
        help="serve: per-client in-flight window (default 8)",
    )
    svc.add_argument(
        "--discover", action="store_true",
        help="call: list live service records (name, provider, token "
             "signature) instead of calling",
    )
    svc.add_argument(
        "--service", metavar="NAME", default="gol.read",
        help="call: service name to invoke (default gol.read)",
    )
    svc.add_argument(
        "--block", type=int, nargs=4, metavar=("ROW", "COL", "H", "W"),
        default=(0, 0, 8, 8),
        help="call: world block to read (default 0 0 8 8)",
    )
    svc.add_argument(
        "--count", type=int, metavar="N", default=1,
        help="call: number of calls to issue (default 1)",
    )
    svc.add_argument(
        "--name", metavar="KERNEL", default=None,
        help="join: name for the joining kernel (default joinerNNNN from "
             "the pid)",
    )
    args = parser.parse_args(argv)

    # Resolved by TransportPolicy.from_env() in the engine and inherited
    # by every forked kernel; harmless on the sim/threaded engines.
    if args.unbatched:
        os.environ["REPRO_TRANSPORT_BATCH"] = "0"
    if args.no_shm:
        os.environ["REPRO_SHM"] = "0"
    if args.io_mode is not None:
        os.environ["REPRO_IO_MODE"] = args.io_mode
    if args.codec is not None:
        os.environ["REPRO_CODEC"] = args.codec
        from .serial import fastpath
        fastpath.set_codec(args.codec)  # this process, not just children
    if args.flush_delay_us is not None:
        os.environ["REPRO_FLUSH_DELAY_US"] = str(args.flush_delay_us)
    # Routing/scaling policies, resolved by RoutingPolicy.from_env() /
    # ScalingPolicy.from_env() in whichever engine the command builds.
    if args.routing is not None:
        os.environ["REPRO_ROUTING"] = args.routing
    if args.min_kernels is not None:
        os.environ["REPRO_SCALING_MIN"] = str(args.min_kernels)
    if args.max_kernels is not None:
        os.environ["REPRO_SCALING_MAX"] = str(args.max_kernels)
    # Chaos flags, resolved by FaultPolicy.from_env() in the engine.  A
    # kill without recovery would just fail the run, so --kill-kernel
    # also opts into recovery unless the caller chose explicitly.
    if args.kill_kernel is not None:
        from .net.recovery import FaultPolicy
        FaultPolicy.parse_kill(args.kill_kernel)  # fail fast on bad spec
        os.environ["REPRO_FAULT_KILL"] = args.kill_kernel
        os.environ.setdefault("REPRO_RECOVER", "1")
    if args.drop_rate is not None:
        os.environ["REPRO_FAULT_DROP"] = str(args.drop_rate)
        os.environ.setdefault("REPRO_RECOVER", "1")
    if args.delay_ms is not None:
        os.environ["REPRO_FAULT_DELAY_MS"] = str(args.delay_ms)
    if args.fault_seed is not None:
        os.environ["REPRO_FAULT_SEED"] = str(args.fault_seed)

    if args.experiment == "list":
        for name, runner in sorted(ALL.items()):
            doc = (runner.__module__ or "").rsplit(".", 1)[-1]
            print(f"{name:8} {doc}")
        return 0
    if args.experiment == "demo":
        _demo(args.engine, args.trace)
        return 0
    if args.experiment == "ring":
        _ring(args.engine, args.trace)
        return 0
    if args.experiment == "stream":
        return _stream(args)
    if args.experiment == "serve":
        return _serve(args)
    if args.experiment == "call":
        return _call(args)
    if args.experiment == "join":
        return _join(args)
    names = sorted(ALL) if args.experiment == "all" else [args.experiment]
    for name in names:
        _run_experiment(name, args.fast, args.trace)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
