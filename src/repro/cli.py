"""Command-line runner for the paper-reproduction experiments.

Usage::

    python -m repro.cli list
    python -m repro.cli fig6 [--fast]
    python -m repro.cli all --fast
    python -m repro.cli demo            # quickstart: parallel uppercase
    python -m repro.cli demo --engine multiprocess   # real OS processes

Each experiment prints its measured table next to the paper's reference
values; ``--fast`` shrinks sweeps for a quick look.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import ALL

__all__ = ["main"]


def _run_experiment(name: str, fast: bool) -> None:
    runner = ALL[name]
    t0 = time.perf_counter()
    result = runner(fast=fast)
    wall = time.perf_counter() - t0
    print(result.report())
    if result.paper_reference:
        print(f"paper: {result.paper_reference}")
    print(f"(wall time {wall:.1f} s{', fast mode' if fast else ''})")
    print()


def _demo(engine_kind: str = "sim") -> None:
    from .apps.strings import StringToken, build_uppercase_graph

    text = "dynamic parallel schedules"
    graph, *_ = build_uppercase_graph("node01", "node02 node03 node04")
    if engine_kind == "sim":
        from .cluster import paper_cluster
        from .runtime import SimEngine
        from .trace import Tracer, activity_timeline, op_summary

        tracer = Tracer()
        engine = SimEngine(paper_cluster(4), tracer=tracer)
        result = engine.run(graph, StringToken(text))
        print(f"input : {text!r}")
        print(f"output: {result.token.text!r}")
        print(f"virtual time: {result.makespan * 1e3:.2f} ms on 4 nodes")
        print()
        print(op_summary(tracer))
        print()
        print(activity_timeline(tracer, width=60))
        return

    if engine_kind == "threaded":
        from .runtime import ThreadedEngine

        t0 = time.perf_counter()
        with ThreadedEngine() as engine:
            out = engine.run(graph, StringToken(text))
        wall = time.perf_counter() - t0
        print(f"input : {text!r}")
        print(f"output: {out.text!r}")
        print(f"wall time: {wall * 1e3:.1f} ms on OS threads (1 process)")
        return

    from .runtime import MultiprocessEngine

    t0 = time.perf_counter()
    with MultiprocessEngine() as engine:
        engine.register_graph(graph)
        out = engine.run(graph, StringToken(text))
        wall = time.perf_counter() - t0
        kernels = ", ".join(engine.kernel_names)
    print(f"input : {text!r}")
    print(f"output: {out.text!r}")
    print(f"wall time: {wall * 1e3:.1f} ms across kernel processes "
          f"[{kernels}] + name server")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="dps-repro",
        description="Reproduce the evaluation of 'DPS - Dynamic Parallel "
                    "Schedules' (Gerlach & Hersch, 2003)",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(ALL) + ["all", "list", "demo"],
        help="experiment id (table/figure), 'all', 'list' or 'demo'",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="shrunk parameter sweeps (seconds instead of minutes)",
    )
    parser.add_argument(
        "--engine", choices=["sim", "threaded", "multiprocess"],
        default="sim",
        help="engine for 'demo': simulated cluster (default), OS threads, "
             "or one OS process per node over TCP",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, runner in sorted(ALL.items()):
            doc = (runner.__module__ or "").rsplit(".", 1)[-1]
            print(f"{name:8} {doc}")
        return 0
    if args.experiment == "demo":
        _demo(args.engine)
        return 0
    names = sorted(ALL) if args.experiment == "all" else [args.experiment]
    for name in names:
        _run_experiment(name, args.fast)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
