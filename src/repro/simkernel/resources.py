"""Queues and resources for the simulation kernel.

- :class:`Store` — an (optionally bounded) FIFO of items; the mailbox
  primitive used for DPS thread token queues and network links.
- :class:`Resource` — a counting resource with a FIFO wait queue; used to
  model CPUs and NIC serialization.

Both hand out :class:`~repro.simkernel.events.Event` objects so processes
interact with them via ``yield``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from .events import _PENDING, Event, SimulationError, Simulator

__all__ = ["Store", "Resource"]


class StorePut(Event):
    """Event returned by :meth:`Store.put`; succeeds when the item is stored."""

    __slots__ = ("item",)

    def __init__(self, sim: Simulator, item: Any):
        # Inlined Event.__init__ (hot path: one per queued token).
        self.sim = sim
        self._callbacks = None
        self._value = _PENDING
        self._ok = None
        self._scheduled = False
        self._processed = False
        self.item = item


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; succeeds with the item."""

    __slots__ = ("filter",)

    def __init__(self, sim: Simulator, filter: Optional[Callable[[Any], bool]] = None):
        self.sim = sim
        self._callbacks = None
        self._value = _PENDING
        self._ok = None
        self._scheduled = False
        self._processed = False
        self.filter = filter


class Store:
    """FIFO item queue with optional capacity.

    ``put`` succeeds immediately while below capacity, otherwise the putter
    waits until a slot frees up.  ``get`` succeeds immediately when an item
    is available, otherwise the getter waits.  Both sides are served in
    strict FIFO order, which keeps simulations deterministic.

    ``get(filter=...)`` takes the first item (in queue order) matching the
    predicate; non-matching getters keep waiting.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"), name: str = ""):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: deque[Any] = deque()
        self._putters: deque[StorePut] = deque()
        self._getters: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)

    @property
    def waiting_putters(self) -> int:
        return len(self._putters)

    def put(self, item: Any) -> StorePut:
        """Queue *item*; returns an event that succeeds once stored."""
        ev = StorePut(self.sim, item)
        # Fast path: nobody queued on either side — store and (maybe)
        # hand straight to a waiting getter, same order _dispatch gives.
        if not self._putters and len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed()
            if self._getters:
                self._dispatch()
            return ev
        self._putters.append(ev)
        self._dispatch()
        return ev

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Request an item; returns an event succeeding with the item."""
        ev = StoreGet(self.sim, filter)
        # Fast path: unfiltered get with stock on hand and no queue to
        # respect — pop directly (identical to what _dispatch would do).
        if (filter is None and not self._getters and not self._putters
                and self.items):
            ev.succeed(self.items.popleft())
            return ev
        self._getters.append(ev)
        self._dispatch()
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking pop: ``(True, item)`` or ``(False, None)``."""
        if self.items and not self._getters:
            item = self.items.popleft()
            self._dispatch()
            return True, item
        return False, None

    def cancel_get(self, ev: StoreGet) -> None:
        """Withdraw a pending get request (no-op if already satisfied)."""
        try:
            self._getters.remove(ev)
        except ValueError:
            pass

    def _dispatch(self) -> None:
        # Admit putters while capacity allows.
        progress = True
        while progress:
            progress = False
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.popleft()
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Serve getters in FIFO order; with filters, each getter scans
            # the current items and takes the first match.
            i = 0
            while i < len(self._getters) and self.items:
                get = self._getters[i]
                if get.filter is None:
                    item = self.items.popleft()
                    del self._getters[i]
                    get.succeed(item)
                    progress = True
                    continue
                matched = None
                for j, item in enumerate(self.items):
                    if get.filter(item):
                        matched = j
                        break
                if matched is None:
                    i += 1
                    continue
                del self._getters[i]
                item = self.items[matched]
                del self.items[matched]
                get.succeed(item)
                progress = True


class Request(Event):
    """Event returned by :meth:`Resource.request`."""

    __slots__ = ("resource", "released")

    def __init__(self, sim: Simulator, resource: "Resource"):
        self.sim = sim
        self._callbacks = None
        self._value = _PENDING
        self._ok = None
        self._scheduled = False
        self._processed = False
        self.resource = resource
        self.released = False

    def release(self) -> None:
        """Give the slot back (idempotent)."""
        self.resource.release(self)


class Resource:
    """Counting resource with *capacity* slots and a FIFO wait queue.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            yield sim.timeout(work)
        finally:
            req.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: set[Request] = set()
        self._queue: deque[Request] = deque()
        # Cumulative busy integral for utilization metrics.
        self._busy_since: dict[Request, float] = {}
        self.busy_time = 0.0

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queued(self) -> int:
        """Number of waiting requests."""
        return len(self._queue)

    def request(self) -> Request:
        """Ask for a slot; the returned event succeeds when granted."""
        req = Request(self.sim, self)
        # Fast path: free slot and an empty queue — grant immediately
        # (exactly what _grant would do after the append).
        if not self._queue and len(self._users) < self.capacity:
            self._users.add(req)
            self._busy_since[req] = self.sim.now
            req.succeed(req)
            return req
        self._queue.append(req)
        self._grant()
        return req

    def release(self, req: Request) -> None:
        """Return a previously granted slot."""
        if req.released:
            return
        if req in self._users:
            req.released = True
            self._users.discard(req)
            self.busy_time += self.sim.now - self._busy_since.pop(req)
            self._grant()
        elif req in self._queue:
            req.released = True
            self._queue.remove(req)
        else:
            raise SimulationError("release() of a request that was never granted")

    def _grant(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            req = self._queue.popleft()
            self._users.add(req)
            self._busy_since[req] = self.sim.now
            req.succeed(req)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of (capacity × elapsed) spent busy so far."""
        t = self.sim.now if elapsed is None else elapsed
        if t <= 0:
            return 0.0
        inflight = sum(self.sim.now - s for s in self._busy_since.values())
        return (self.busy_time + inflight) / (t * self.capacity)
