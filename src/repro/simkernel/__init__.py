"""Deterministic discrete-event simulation kernel.

The substrate under the DPS simulated-cluster runtime: generator-based
processes, a virtual clock, FIFO stores and counting resources.
"""

from .events import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .resources import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
]
