"""Discrete-event simulation kernel: events, processes and the scheduler.

This module implements a compact, deterministic discrete-event simulation
core in the style of SimPy.  Simulated activities are Python generators
("processes") that ``yield`` :class:`Event` objects; the :class:`Simulator`
advances a virtual clock and resumes processes when the events they wait on
are triggered.

Determinism: every scheduled callback is keyed by ``(time, priority, seq)``
where ``seq`` is a monotonically increasing counter, so simultaneous events
always fire in the order they were scheduled.  Runs are fully reproducible.

The DPS runtime (:mod:`repro.runtime.sim_engine`) builds node controllers,
network links and operation executions on top of these primitives.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
]

_PENDING = object()

#: Priority used for ordinary events.
NORMAL = 1
#: Priority used for urgent (kernel-internal) events.
URGENT = 0


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. double trigger)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait for.

    An event starts *pending*; it is *triggered* by :meth:`succeed` or
    :meth:`fail` and then delivered to its callbacks at the current
    simulation time (in scheduling order).  Processes wait on an event by
    yielding it.
    """

    __slots__ = ("sim", "_callbacks", "_value", "_ok", "_scheduled")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False

    # -- state -----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (succeed/fail was called)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception when failed)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(0.0, self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed; waiters receive *exception*."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(0.0, self, priority)
        return self

    # -- subscription ----------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register *fn* to run when the event is processed.

        If the event has already been processed the callback runs
        immediately (still at the current simulation time).
        """
        if self._callbacks is None:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _process_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6g}>"


class Timeout(Event):
    """An event that succeeds *delay* time units after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._ok = True
        self._value = value
        sim._schedule(delay, self, NORMAL)


class Process(Event):
    """A running simulated activity wrapped around a generator.

    The process itself is an event that triggers when the generator
    terminates; yielding a process therefore *joins* it.  The generator
    return value becomes the event value, an uncaught exception fails it.
    """

    __slots__ = ("name", "_gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise TypeError(f"Process requires a generator, got {type(gen).__name__}")
        super().__init__(sim)
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        # Bootstrap: start the generator at the current time.
        init = Event(sim)
        init._ok = True
        init._value = None
        init.add_callback(self._resume)
        sim._schedule(0.0, init, URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a terminated process is an error; interrupting a
        process blocked on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt terminated process {self.name!r}")
        hit = Event(self.sim)
        hit._ok = False
        hit._value = Interrupt(cause)
        hit.add_callback(self._resume)
        self.sim._schedule(0.0, hit, URGENT)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:  # e.g. interrupted then event fired anyway
            return
        waited = self._waiting_on
        self._waiting_on = None
        self.sim._active_process = self
        try:
            if event._ok:
                target = self._gen.send(event._value)
            else:
                exc = event._value
                if isinstance(exc, Interrupt) and waited is not None:
                    # Detach from the event we were waiting on so a later
                    # trigger does not resume us twice.
                    _discard_callback(waited, self._resume)
                target = self._gen.throw(exc)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = None
            self.fail(exc)
            return
        self.sim._active_process = None
        if not isinstance(target, Event):
            self._gen.close()
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes "
                    f"must yield Event instances"
                )
            )
            return
        if target.sim is not self.sim:
            self._gen.close()
            self.fail(SimulationError("yielded event belongs to another simulator"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)


def _discard_callback(event: Event, fn: Callable) -> None:
    if event._callbacks is not None:
        try:
            event._callbacks.remove(fn)
        except ValueError:
            pass


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        for ev in self._events:
            if ev.sim is not sim:
                raise SimulationError("all events must belong to the same simulator")
        self._remaining = len(self._events)
        if not self._events:
            self.succeed({})
        else:
            for ev in self._events:
                ev.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when the first of its events triggers.

    The value is a dict mapping the triggered event(s) to their values.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed({event: event._value})


class AllOf(_Condition):
    """Triggers when all of its events have triggered."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({ev: ev._value for ev in self._events})


class Simulator:
    """The event loop: a virtual clock plus a priority queue of events.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(2.0)
            return "done"

        proc = sim.spawn(worker(sim))
        sim.run()
        assert sim.now == 2.0 and proc.value == "done"
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that succeeds after *delay* time units."""
        return Timeout(self, delay, value)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a new process from generator *gen*."""
        return Process(self, gen, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, delay: float, event: Event, priority: int = NORMAL) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def step(self) -> bool:
        """Process the next event. Returns False when the queue is empty.

        Like :meth:`run`, a process that died with no waiter to deliver
        the exception to re-raises here instead of vanishing silently.
        """
        if not self._heap:
            return False
        time, _prio, _seq, event = heapq.heappop(self._heap)
        if time < self._now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = time
        unobserved_failure = (
            isinstance(event, Process) and not event._ok and not event._callbacks
        )
        event._process_callbacks()
        if unobserved_failure:
            raise event._value
        return True

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock reaches *until*.

        Returns the final simulation time.  If a process fails with an
        uncaught exception the exception propagates out of :meth:`run`
        unless some other process was joined on it.
        """
        while self._heap:
            if until is not None and self.peek() > until:
                self._now = until
                break
            time, _prio, _seq, event = heapq.heappop(self._heap)
            self._now = time
            unobserved_failure = (
                isinstance(event, Process) and not event._ok and not event._callbacks
            )
            event._process_callbacks()
            if unobserved_failure:
                # A process died with no waiter to deliver the exception to;
                # surface it instead of silently swallowing the crash.
                raise event._value
        return self._now
