"""Discrete-event simulation kernel: events, processes and the scheduler.

This module implements a compact, deterministic discrete-event simulation
core in the style of SimPy.  Simulated activities are Python generators
("processes") that ``yield`` :class:`Event` objects; the :class:`Simulator`
advances a virtual clock and resumes processes when the events they wait on
are triggered.

Determinism: every scheduled callback is keyed by ``(time, priority, seq)``
where ``seq`` is a monotonically increasing counter, so simultaneous events
always fire in the order they were scheduled.  Runs are fully reproducible.

The event loop is on an allocation diet — per-message bookkeeping is the
scheduling overhead pipeline frameworks live or die on:

- single-waiter events (the overwhelming case: every ``transfer`` yield)
  store their sole callback inline instead of allocating a list;
- :meth:`Simulator.spawn` starts generators through a slotted
  :class:`_Resume` heap entry rather than a bootstrap :class:`Event`;
- triggered-and-delivered :class:`Timeout` objects are recycled through a
  small pool when (and only when) nothing else references them.

The DPS runtime (:mod:`repro.runtime.sim_engine`) builds node controllers,
network links and operation executions on top of these primitives.
"""

from __future__ import annotations

import heapq
import sys
from types import GeneratorType
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AnyOf",
    "AllOf",
    "SimulationError",
]

_PENDING = object()

#: Priority used for ordinary events.
NORMAL = 1
#: Priority used for urgent (kernel-internal) events.
URGENT = 0

#: Maximum number of recycled Timeout objects kept per simulator.
_TIMEOUT_POOL_CAP = 256

_getrefcount = getattr(sys, "getrefcount", None)


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. double trigger)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait for.

    An event starts *pending*; it is *triggered* by :meth:`succeed` or
    :meth:`fail` and then delivered to its callbacks at the current
    simulation time (in scheduling order).  Processes wait on an event by
    yielding it.

    ``_callbacks`` holds ``None`` (no waiters), a single callable (the
    dominant case — one waiting process) or a list; ``_processed`` flips
    once delivery has happened.  This avoids a list allocation per event.
    """

    __slots__ = ("sim", "_callbacks", "_value", "_ok", "_scheduled", "_processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: Any = None
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._processed = False

    # -- state -----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (succeed/fail was called)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception when failed)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        # Inlined _schedule: the pending-value guard above already rules
        # out double scheduling for plain events.
        self._scheduled = True
        sim = self.sim
        sim._seq += 1
        heapq.heappush(sim._heap, (sim._now, priority, sim._seq, self))
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed; waiters receive *exception*."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._scheduled = True
        sim = self.sim
        sim._seq += 1
        heapq.heappush(sim._heap, (sim._now, priority, sim._seq, self))
        return self

    # -- subscription ----------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register *fn* to run when the event is processed.

        If the event has already been processed the callback runs
        immediately (still at the current simulation time).
        """
        if self._processed:
            fn(self)
            return
        cbs = self._callbacks
        if cbs is None:
            self._callbacks = fn
        elif type(cbs) is list:
            cbs.append(fn)
        else:
            self._callbacks = [cbs, fn]

    def _process_callbacks(self) -> None:
        cbs = self._callbacks
        self._callbacks = None
        self._processed = True
        if cbs is None:
            return
        if type(cbs) is list:
            for fn in cbs:
                fn(self)
        else:
            cbs(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6g}>"


class Timeout(Event):
    """An event that succeeds *delay* time units after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ + Simulator._schedule: a timeout is born
        # triggered, so it goes straight onto the heap.
        self.sim = sim
        self._callbacks = None
        self._value = value
        self._ok = True
        self._scheduled = True
        self._processed = False
        sim._seq += 1
        heapq.heappush(sim._heap, (sim._now + delay, NORMAL, sim._seq, self))


class _Resume:
    """A slotted heap entry that resumes a process directly.

    Used for the spawn bootstrap and for interrupts: it duck-types the
    slice of the :class:`Event` interface that :meth:`Process._resume`
    and the scheduler touch, without the callback machinery or the heap
    bookkeeping of a full event.
    """

    __slots__ = ("_proc", "_ok", "_value", "_scheduled")

    _callbacks = None

    def __init__(self, proc: "Process", ok: bool, value: Any):
        self._proc = proc
        self._ok = ok
        self._value = value
        self._scheduled = False

    def _process_callbacks(self) -> None:
        self._proc._resume(self)


class Process(Event):
    """A running simulated activity wrapped around a generator.

    The process itself is an event that triggers when the generator
    terminates; yielding a process therefore *joins* it.  The generator
    return value becomes the event value, an uncaught exception fails it.
    """

    __slots__ = ("name", "_gen", "_waiting_on", "_bound_resume")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if type(gen) is not GeneratorType and not hasattr(gen, "send"):
            raise TypeError(f"Process requires a generator, got {type(gen).__name__}")
        self.sim = sim
        self._callbacks = None
        self._value = _PENDING
        self._ok = None
        self._scheduled = False
        self._processed = False
        self.name = name or getattr(gen, "__name__", "process")
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        # One bound method for the process's whole life instead of one
        # allocation per yield.
        self._bound_resume = self._resume
        # Bootstrap fast path: start the generator at the current time
        # without allocating a full Event (inlined _schedule).
        sim._seq += 1
        heapq.heappush(sim._heap, (sim._now, URGENT, sim._seq,
                                   _Resume(self, True, None)))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a terminated process is an error; interrupting a
        process blocked on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt terminated process {self.name!r}")
        self.sim._schedule(0.0, _Resume(self, False, Interrupt(cause)), URGENT)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:  # e.g. interrupted then event fired anyway
            return
        waited = self._waiting_on
        self._waiting_on = None
        sim = self.sim
        sim._active_process = self
        try:
            if event._ok:
                target = self._gen.send(event._value)
            else:
                exc = event._value
                if isinstance(exc, Interrupt) and waited is not None:
                    # Detach from the event we were waiting on so a later
                    # trigger does not resume us twice.
                    _discard_callback(waited, self._bound_resume)
                target = self._gen.throw(exc)
        except StopIteration as stop:
            sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            sim._active_process = None
            self.fail(exc)
            return
        sim._active_process = None
        tcls = type(target)
        if tcls is Timeout or tcls is Event or isinstance(target, Event):
            if target.sim is not sim:
                self._gen.close()
                self.fail(SimulationError("yielded event belongs to another simulator"))
                return
            self._waiting_on = target
            # Inlined single-waiter subscription (the hot path: every
            # transfer/timeout yield has exactly this one waiter).
            if target._processed:
                self._resume(target)
            elif target._callbacks is None:
                target._callbacks = self._bound_resume
            else:
                target.add_callback(self._bound_resume)
            return
        self._gen.close()
        self.fail(
            SimulationError(
                f"process {self.name!r} yielded {target!r}; processes "
                f"must yield Event instances"
            )
        )


def _discard_callback(event: Event, fn: Callable) -> None:
    cbs = event._callbacks
    if cbs is None:
        return
    if type(cbs) is list:
        try:
            cbs.remove(fn)
        except ValueError:
            pass
    elif cbs == fn:
        event._callbacks = None


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        for ev in self._events:
            if ev.sim is not sim:
                raise SimulationError("all events must belong to the same simulator")
        self._remaining = len(self._events)
        if not self._events:
            self.succeed({})
        else:
            for ev in self._events:
                ev.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when the first of its events triggers.

    The value is a dict mapping the triggered event(s) to their values.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed({event: event._value})


class AllOf(_Condition):
    """Triggers when all of its events have triggered."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({ev: ev._value for ev in self._events})


class Simulator:
    """The event loop: a virtual clock plus a priority queue of events.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(2.0)
            return "done"

        proc = sim.spawn(worker(sim))
        sim.run()
        assert sim.now == 2.0 and proc.value == "done"
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._timeout_pool: list[Timeout] = []

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that succeeds after *delay* time units."""
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative timeout delay: {delay}")
            t = pool.pop()
            t._callbacks = None
            t._value = value
            t._ok = True
            t._scheduled = True
            t._processed = False
            self._seq += 1
            heapq.heappush(self._heap, (self._now + delay, NORMAL, self._seq, t))
            return t
        return Timeout(self, delay, value)

    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a new process from generator *gen*."""
        return Process(self, gen, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, delay: float, event: Event, priority: int = NORMAL) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def _recycle(self, event: Event) -> None:
        """Pool a delivered Timeout iff nothing else references it.

        Callers pass the freshly-popped, already-processed heap event.
        The refcount check (this frame's local + getrefcount's argument
        = 2) proves no process or user code still holds the object, so
        reuse can never be observed.  CPython-specific; a no-op
        elsewhere.
        """
        if (
            type(event) is Timeout
            and _getrefcount is not None
            and len(self._timeout_pool) < _TIMEOUT_POOL_CAP
            and _getrefcount(event) == 3  # caller local + our arg + getrefcount arg
        ):
            self._timeout_pool.append(event)

    def step(self) -> bool:
        """Process the next event. Returns False when the queue is empty.

        Like :meth:`run`, a process that died with no waiter to deliver
        the exception to re-raises here instead of vanishing silently.
        """
        if not self._heap:
            return False
        time, _prio, _seq, event = heapq.heappop(self._heap)
        if time < self._now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = time
        cls = type(event)
        if cls is Timeout:
            event._process_callbacks()
            self._recycle(event)
            return True
        if cls is _Resume:
            event._proc._resume(event)
            return True
        # Inlined _process_callbacks (no subclass overrides it).  A falsy
        # cbs (no waiters) on a failed process means nobody will see the
        # exception — surface it here.
        cbs = event._callbacks
        event._callbacks = None
        event._processed = True
        if cbs:
            if type(cbs) is list:
                for fn in cbs:
                    fn(event)
            else:
                cbs(event)
        elif isinstance(event, Process) and not event._ok:
            raise event._value
        return True

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock reaches *until*.

        Returns the final simulation time — with *until* set, always
        ``max(until, now)``: the clock advances to *until* even when the
        event queue drains early.  If a process fails with an uncaught
        exception the exception propagates out of :meth:`run` unless
        some other process was joined on it.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap:
            if until is not None and heap[0][0] > until:
                self._now = until
                return self._now
            time, _prio, _seq, event = pop(heap)
            self._now = time
            cls = type(event)
            if cls is Timeout:
                # Fast path: timeouts cannot be unobserved failures.
                event._process_callbacks()
                self._recycle(event)
                continue
            if cls is _Resume:
                # Fast path: spawn bootstraps and interrupts resume their
                # process directly — no callback machinery to run.
                event._proc._resume(event)
                continue
            # Inlined _process_callbacks (no subclass overrides it).
            cbs = event._callbacks
            event._callbacks = None
            event._processed = True
            if cbs:
                if type(cbs) is list:
                    for fn in cbs:
                        fn(event)
                else:
                    cbs(event)
            elif isinstance(event, Process) and not event._ok:
                # A process died with no waiter to deliver the exception to;
                # surface it instead of silently swallowing the crash.
                raise event._value
        if until is not None and until > self._now:
            # The heap drained before the horizon: idle time still passes.
            self._now = until
        return self._now
