"""Per-node controller for the simulated-cluster engine.

The paper (§3): *"At the heart of the DPS library is the Controller
object, instantiated in each node and responsible for sequencing within
each node the program execution according to the flow graphs and thread
collections instantiated by the application."*

Each controller owns the DPS thread instances mapped to its node.  A DPS
thread is a sequential event loop (one simulated process) draining an
inbox of envelopes:

- envelopes for leaf/split operations start an operation body and drive it
  to completion;
- envelopes for merge/stream operations feed per-group state: the first
  token starts the body, later tokens resume it when it is parked on
  ``next_token()``.

Operation bodies are generators yielding effect requests
(:mod:`repro.core.ops`); the driver interprets them against the node's CPU
resource, the network, and the flow-control windows.
"""

from __future__ import annotations

import inspect
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Tuple

from ..cluster.costs import dps_wire_overhead_seconds
from ..core.flowcontrol import CreditWindow, SplitWindow
from ..core.graph import Flowgraph, FlowgraphNode
from ..core.ops import (
    CallGraphRequest,
    ChargeRequest,
    NextTokenRequest,
    Operation,
    OpKind,
    PostRequest,
    ScatterCallRequest,
    SleepRequest,
)
from ..core.streams import is_streaming_opener
from ..core.routing import Route, RoutingContext
from ..core.threads import ThreadCollection
from ..serial.token import Token
from ..simkernel import Event, Store
from .base import (
    ACK_BYTES,
    DATA_HEADER_BYTES,
    GROUP_TOTAL_BYTES,
    AckMessage,
    DataEnvelope,
    GroupFrame,
    GroupTotalMessage,
)

if TYPE_CHECKING:  # pragma: no cover
    from .sim_engine import SimEngine

__all__ = ["SimController", "ScheduleError", "KernelFailure"]

#: Bound on remembered group totals for groups this instance never saw
#: (stale broadcast entries); oldest entries are pruned beyond this.
MAX_STALE_GROUPS = 10_000

_genfunc_cache: Dict[Any, bool] = {}


def _is_generator_body(op) -> bool:
    """Cached inspect.isgeneratorfunction(op.execute) (hot per-token path)."""
    fn = op.execute
    key = getattr(fn, "__func__", fn)
    flag = _genfunc_cache.get(key)
    if flag is None:
        flag = inspect.isgeneratorfunction(fn)
        _genfunc_cache[key] = flag
    return flag


class ScheduleError(RuntimeError):
    """Raised for runtime schedule violations (routing, group misuse)."""


class KernelFailure(ScheduleError, ConnectionError):
    """A kernel process (or simulated node) died and the run cannot finish.

    The one failure type every engine raises when an execution node is
    lost: the multiprocess runtime raises it for dead kernel processes
    and lost peer connections, the simulated engine for node failures
    past the recovery contract.  It multiply-inherits
    :class:`ScheduleError` and :class:`ConnectionError` so callers that
    caught either of the historical ad-hoc types keep working.
    """


class _ThreadState:
    """One DPS thread instance living on this controller's node."""

    __slots__ = ("collection", "index", "thread", "inbox", "started", "proc")

    def __init__(self, controller: "SimController", collection: ThreadCollection,
                 index: int, thread=None):
        self.collection = collection
        self.index = index
        self.thread = thread if thread is not None else collection.make_thread(index)
        self.inbox: Store = Store(controller.engine.sim,
                                  name=f"{collection.name}[{index}]")
        self.started = False
        self.proc = None


class _GroupState:
    """Arrival bookkeeping for one merge/stream input group."""

    __slots__ = (
        "group_id", "buffer", "received", "consumed", "total",
        "instance", "node_id", "parent_frames", "body", "body_gen",
        "parked", "completed",
    )

    def __init__(self, group_id: int):
        self.group_id = group_id
        self.buffer: Deque[DataEnvelope] = deque()
        self.received = 0
        self.consumed = 0
        self.total: Optional[int] = None
        self.instance: Optional[int] = None
        self.node_id: Optional[int] = None
        self.parent_frames: Optional[Tuple[GroupFrame, ...]] = None
        self.body: Optional["_BodyState"] = None
        self.body_gen: Any = None
        self.parked = False
        self.completed = False

    @property
    def drained(self) -> bool:
        return self.total is not None and self.consumed == self.total


class _BodyState:
    """One executing operation body (an activation of execute())."""

    __slots__ = (
        "op", "graph", "node_id", "thread_state", "ctx_id",
        "base_frames", "out_group_id", "posted", "shed", "group",
        "started_at",
    )

    def __init__(
        self,
        op: Operation,
        graph: Flowgraph,
        node_id: int,
        thread_state: _ThreadState,
        ctx_id: int,
        base_frames: Tuple[GroupFrame, ...],
        group: Optional[_GroupState] = None,
    ):
        self.op = op
        self.graph = graph
        self.node_id = node_id
        self.thread_state = thread_state
        self.ctx_id = ctx_id
        #: frames attached to outputs (before the opener's own frame).
        self.base_frames = base_frames
        self.out_group_id: Optional[int] = None
        self.posted = 0
        #: posts dropped by a lossy credit window; excluded from the
        #: announced group total so the merge still terminates exactly.
        self.shed = 0
        self.group = group
        self.started_at = 0.0

    @property
    def kind(self) -> str:
        return self.graph.node(self.node_id).kind

    @property
    def opens_group(self) -> bool:
        return self.kind in (OpKind.SPLIT, OpKind.STREAM)


class _ResumeGroup:
    """Internal inbox marker: re-examine a parked group's state."""

    __slots__ = ("group_id",)

    def __init__(self, group_id: int):
        self.group_id = group_id


class SimController:
    """Controller for one node of the simulated cluster."""

    def __init__(self, engine: "SimEngine", node_name: str):
        self.engine = engine
        self.node_name = node_name
        self.node = engine.cluster.node(node_name)
        self._threads: Dict[Tuple[int, int], _ThreadState] = {}
        self._groups: Dict[int, _GroupState] = {}
        self._stale_totals: "deque[int]" = deque()
        self._windows: Dict[Tuple[str, int, int], SplitWindow] = {}
        #: tokens awaiting window admission: (body, token, succ, seq, admit)
        self._pending: Dict[Tuple[str, int, int], Deque[tuple]] = {}
        self._routes: Dict[Tuple[str, int], Route] = {}
        self._route_window_cell: List[Optional[SplitWindow]] = [None]
        self._launched: set = set()
        self._launching: Dict[str, List[Any]] = {}

    # ------------------------------------------------------------------
    # thread management
    # ------------------------------------------------------------------
    def thread_state(self, collection: ThreadCollection, index: int) -> _ThreadState:
        key = (id(collection), index)
        ts = self._threads.get(key)
        if ts is None:
            if collection.node_of(index) != self.node_name:
                raise ScheduleError(
                    f"thread {collection.name}[{index}] is mapped to "
                    f"{collection.node_of(index)}, not {self.node_name}"
                )
            ts = _ThreadState(self, collection, index)
            self._threads[key] = ts
        if not ts.started:
            ts.started = True
            ts.proc = self.engine.sim.spawn(
                self._thread_loop(ts),
                name=f"{self.node_name}:{collection.name}[{index}]",
            )
        return ts

    def _thread_loop(self, ts: _ThreadState):
        from ..simkernel import Interrupt

        while True:
            try:
                item = yield ts.inbox.get()
            except Interrupt:
                return  # thread evicted (collection remapped)
            if isinstance(item, DataEnvelope):
                yield from self._handle_data(ts, item)
            elif isinstance(item, _ResumeGroup):
                yield from self._poke_group(ts, item.group_id)
            else:  # pragma: no cover - defensive
                raise ScheduleError(f"unexpected inbox item {item!r}")

    # ------------------------------------------------------------------
    # dynamic remapping (runtime reshaping, paper §2/§6)
    # ------------------------------------------------------------------
    def evict_thread(self, collection: ThreadCollection, index: int):
        """Detach a quiescent thread for migration; returns the thread
        object, or None if it never ran here."""
        key = (id(collection), index)
        ts = self._threads.pop(key, None)
        if ts is None:
            return None
        if len(ts.inbox) or ts.inbox.waiting_putters:
            raise ScheduleError(
                f"cannot migrate {collection.name}[{index}]: envelopes "
                f"still queued; remap only quiescent schedules"
            )
        if ts.proc is not None and ts.proc.is_alive:
            ts.proc.interrupt("remap")
        return ts.thread

    def adopt_thread(self, collection: ThreadCollection, index: int,
                     thread) -> None:
        """Install a migrated thread object and start its loop here."""
        key = (id(collection), index)
        if key in self._threads:
            raise ScheduleError(
                f"{collection.name}[{index}] already lives on {self.node_name}"
            )
        thread.node_name = self.node_name
        ts = _ThreadState(self, collection, index, thread=thread)
        ts.started = True
        ts.proc = self.engine.sim.spawn(
            self._thread_loop(ts),
            name=f"{self.node_name}:{collection.name}[{index}]",
        )
        self._threads[key] = ts

    # ------------------------------------------------------------------
    # inbound paths (called by the engine at message delivery time)
    # ------------------------------------------------------------------
    def receive(self, message: Any) -> None:
        """Entry point for delivered messages (post-launch gate)."""
        app = self.engine.app_of(message) if isinstance(message, DataEnvelope) else None
        if app is not None and app not in self._launched:
            buffer = self._launching.get(app)
            if buffer is not None:
                buffer.append(message)
                return
            self._launching[app] = [message]
            self.engine.sim.spawn(
                self._launch(app), name=f"launch:{app}@{self.node_name}"
            )
            return
        self._dispatch(message)

    def _launch(self, app: str):
        yield self.engine.sim.timeout(self.node.spec.launch_delay)
        self._launched.add(app)
        buffered = self._launching.pop(app)
        for message in buffered:
            self._dispatch(message)

    def _dispatch(self, message: Any) -> None:
        if isinstance(message, DataEnvelope):
            node = message.graph.node(message.node_id)
            ts = self.thread_state(node.collection, message.instance)
            ts.inbox.put(message)
        elif isinstance(message, AckMessage):
            self._on_ack(message)
        elif isinstance(message, GroupTotalMessage):
            self._on_group_total(message)
        else:  # pragma: no cover - defensive
            raise ScheduleError(f"unknown message {message!r}")

    def _on_ack(self, ack: AckMessage) -> None:
        key = (ack.graph_name, ack.opener, ack.opener_instance)
        window = self._windows.get(key)
        if window is None:
            raise ScheduleError(f"ack for unknown split window {key}")
        window.on_ack(ack.routed_instance)
        self._pump_window(key)

    def _on_group_total(self, msg: GroupTotalMessage) -> None:
        group = self._groups.get(msg.group_id)
        if group is None:
            group = _GroupState(msg.group_id)
            self._groups[msg.group_id] = group
            self._stale_totals.append(msg.group_id)
            while len(self._stale_totals) > MAX_STALE_GROUPS:
                old = self._stale_totals.popleft()
                stale = self._groups.get(old)
                if stale is not None and stale.received == 0:
                    del self._groups[old]
        group.total = msg.total
        if group.body is not None and group.parked:
            # Wake the owning thread to re-check drain status.
            group.body.thread_state.inbox.put(_ResumeGroup(msg.group_id))

    # ------------------------------------------------------------------
    # envelope handling inside the thread loop
    # ------------------------------------------------------------------
    def _handle_data(self, ts: _ThreadState, env: DataEnvelope):
        node = env.graph.node(env.node_id)
        kind = node.kind
        engine = self.engine
        if engine.tracer is not None:
            engine.trace("token_recv", node=self.node_name,
                         op=node.name, graph=env.graph.name,
                         depth=len(ts.inbox))
        if engine.metrics is not None:
            engine.metrics.gauge("queue_depth").set(len(ts.inbox))
        if kind in (OpKind.LEAF, OpKind.SPLIT):
            body = self._make_body(env, ts)
            yield from self._drive(body, env.token)
            return
        # merge / stream: group bookkeeping
        frame = env.top_frame()
        group = self._groups.get(frame.group_id)
        if group is None:
            group = _GroupState(frame.group_id)
            self._groups[frame.group_id] = group
        if group.instance is None:
            group.instance = env.instance
            group.node_id = env.node_id
            group.parent_frames = env.frames[:-1]
        else:
            if group.instance != env.instance or group.node_id != env.node_id:
                raise ScheduleError(
                    f"group {frame.group_id} routed to multiple merge "
                    f"instances ({group.node_id}/{group.instance} and "
                    f"{env.node_id}/{env.instance}); routing functions must "
                    f"send all tokens of one group to the same thread"
                )
            if group.parent_frames != env.frames[:-1]:
                raise ScheduleError(
                    f"group {frame.group_id} tokens carry inconsistent "
                    f"enclosing frames"
                )
        group.received += 1
        if group.body is None:
            # First token starts the merge/stream body.
            group.consumed += 1
            self._send_ack(env)
            body = self._make_body(env, ts, group=group)
            group.body = body
            yield from self._drive(body, env.token)
        elif group.parked:
            group.buffer.append(env)
            yield from self._poke_group(ts, frame.group_id)
        else:
            group.buffer.append(env)

    def _poke_group(self, ts: _ThreadState, group_id: int):
        """Resume a parked merge/stream body if it can make progress."""
        group = self._groups.get(group_id)
        if group is None or group.body is None or not group.parked:
            return
        if group.buffer:
            env = group.buffer.popleft()
            group.consumed += 1
            group.parked = False
            self._send_ack(env)
            self._check_in_type(group.body, env.token)
            yield from self._drive(group.body, env.token, resume=True)
        elif group.drained:
            group.parked = False
            group.completed = True
            yield from self._drive(group.body, None, resume=True)

    def _make_body(
        self, env: DataEnvelope, ts: _ThreadState, group: Optional[_GroupState] = None
    ) -> _BodyState:
        node = env.graph.node(env.node_id)
        op: Operation = node.op_class()
        if not isinstance(ts.thread, node.op_class.thread_type):
            raise ScheduleError(
                f"{node.op_class.__name__} requires thread type "
                f"{node.op_class.thread_type.__name__}, got "
                f"{type(ts.thread).__name__}"
            )
        if node.kind in (OpKind.LEAF, OpKind.SPLIT):
            base = env.frames
        else:  # merge and stream outputs sit outside the consumed group
            base = env.frames[:-1]
        body = _BodyState(op, env.graph, env.node_id, ts, env.ctx_id, base, group)
        body.started_at = self.engine.sim.now
        if self.engine.tracer is not None:
            self.engine.trace("op_start", node=self.node_name,
                              op=node.name, graph=env.graph.name)
        op.bind(
            ts.thread,
            lambda req, b=body: self._emit(b, req),
            now=lambda: self.engine.sim.now,
        )
        return body

    # ------------------------------------------------------------------
    # body driver
    # ------------------------------------------------------------------
    def _drive(self, body: _BodyState, first_value: Any, resume: bool = False):
        """Run an operation body, interpreting effect requests.

        This generator executes inside the owning thread's loop, so the
        DPS thread is busy for the duration (sequential thread semantics).
        """
        op = body.op
        if not resume:
            if not isinstance(first_value, Token):
                raise ScheduleError("operation started without a token")
            self._check_in_type(body, first_value)
            if not _is_generator_body(op):
                if body.kind in (OpKind.MERGE, OpKind.STREAM):
                    raise ScheduleError(
                        f"{type(op).__name__}.execute must be a generator "
                        f"(it needs `tok = yield self.next_token()` to "
                        f"consume its group)"
                    )
                # Plain body: charge the declared cost, then run atomically
                # (compute first, outputs leave when ready).
                charge = op.cost(first_value)
                if charge.seconds or charge.flops:
                    yield from self._charge(charge)
                op.execute(first_value)
                self._finish_body(body)
                return
            body_gen = op.execute(first_value)
            to_send: Any = None
            throw: Optional[BaseException] = None
        else:
            assert body.group is not None
            body_gen = body.group.body_gen
            to_send = first_value
            throw = None

        while True:
            try:
                if throw is not None:
                    request = body_gen.throw(throw)
                    throw = None
                else:
                    request = body_gen.send(to_send)
            except StopIteration:
                self._finish_body(body)
                return
            to_send = None
            if isinstance(request, PostRequest):
                # Already emitted via the bare-call hook; yielding means
                # "wait until flow control admits it".
                admit = getattr(request, "_admit_event", None)
                if admit is not None and not admit.triggered:
                    window = self._body_window(body)
                    if window is not None:
                        window.on_stall()
                    engine = self.engine
                    stalled_at = engine.sim.now
                    if engine.tracer is not None:
                        engine.trace("stall", node=self.node_name,
                                     graph=body.graph.name)
                    if engine.metrics is not None:
                        engine.metrics.counter("stalls").inc()
                    yield admit
                    waited = engine.sim.now - stalled_at
                    if engine.tracer is not None:
                        engine.trace("admit", node=self.node_name,
                                     graph=body.graph.name, waited=waited)
                    if engine.metrics is not None:
                        engine.metrics.histogram("stall_seconds").observe(waited)
            elif isinstance(request, ChargeRequest):
                yield from self._charge(request)
            elif isinstance(request, SleepRequest):
                # Pacing delay (stream sources): pure virtual-time wait,
                # no compute charged against the node.
                if request.seconds > 0:
                    yield self.engine.sim.timeout(request.seconds)
            elif isinstance(request, NextTokenRequest):
                group = body.group
                if group is None:
                    raise ScheduleError("next_token() outside a merge/stream body")
                if group.buffer:
                    env = group.buffer.popleft()
                    group.consumed += 1
                    self._send_ack(env)
                    self._check_in_type(body, env.token)
                    to_send = env.token
                elif group.drained:
                    group.completed = True
                    to_send = None
                else:
                    group.parked = True
                    group.body_gen = body_gen
                    return  # thread loop regains control
            elif isinstance(request, CallGraphRequest):
                call_event = self.engine.start_call(
                    request.graph_name, request.token, self.node_name
                )
                outcome = yield call_event
                to_send = outcome
            elif isinstance(request, ScatterCallRequest):
                if not body.opens_group:
                    raise ScheduleError(
                        "call_scatter() outside a split/stream body"
                    )
                scatter_event = self.engine.start_scatter(
                    request.graph_name,
                    request.token,
                    self.node_name,
                    on_token=lambda tok, b=body: self._emit(b, PostRequest(tok)),
                )
                outcome = yield scatter_event
                to_send = outcome
            else:
                raise ScheduleError(
                    f"{type(op).__name__} yielded {request!r}; operation "
                    f"bodies may yield post/charge/sleep/next_token/"
                    f"call_graph requests only"
                )
        # not reached

    def _charge(self, charge: ChargeRequest):
        seconds = charge.seconds + (
            charge.flops / self.node.spec.flops if charge.flops else 0.0
        )
        if seconds > 0:
            yield from self.node.compute_seconds(seconds)

    def _check_in_type(self, body: _BodyState, token: Token) -> None:
        if not body.op.accepts(type(token)):
            raise ScheduleError(
                f"{type(body.op).__name__} received "
                f"{type(token).__name__}, accepts "
                f"{[t.__name__ for t in body.op.in_types]}"
            )

    def _finish_body(self, body: _BodyState) -> None:
        if self.engine.tracer is not None:
            self.engine.trace(
                "op_end",
                node=self.node_name,
                op=body.graph.node(body.node_id).name,
                graph=body.graph.name,
                duration=self.engine.sim.now - body.started_at,
                posted=body.posted,
            )
        group = body.group
        if group is not None:
            if not group.completed:
                raise ScheduleError(
                    f"{type(body.op).__name__} returned before consuming its "
                    f"whole group (consumed {group.consumed} of "
                    f"{group.total if group.total is not None else 'unknown'})"
                )
            del self._groups[group.group_id]
        if body.opens_group:
            if body.posted == 0:
                raise ScheduleError(
                    f"{type(body.op).__name__} ({body.kind}) posted no "
                    f"tokens; a split/stream group must contain at least one"
                )
            if body.posted - body.shed == 0:
                raise ScheduleError(
                    f"{type(body.op).__name__} ({body.kind}): the credit "
                    f"window shed every posted token ({body.shed}); the "
                    f"group would announce total 0 and hang its merge"
                )
            self._close_group(body)

    # ------------------------------------------------------------------
    # posting path
    # ------------------------------------------------------------------
    def _emit(self, body: _BodyState, req: PostRequest) -> None:
        token = req.token
        node = body.graph.node(body.node_id)
        if self.engine.metrics is not None:
            self.engine.metrics.counter("tokens_posted").inc()
        if not isinstance(token, node.op_class.out_types):
            raise ScheduleError(
                f"{node.op_class.__name__} posted {type(token).__name__}, "
                f"declares out_types "
                f"{[t.__name__ for t in node.op_class.out_types]}"
            )
        succ = body.graph.dispatch(body.node_id, type(token))
        if succ is None:
            if body.graph.scatter:
                # scatter-graph exit: each token leaves towards the
                # calling application, carrying its group frame so the
                # caller can acknowledge it for flow control
                frame = None
                if body.opens_group:
                    if body.out_group_id is None:
                        body.out_group_id = self.engine.next_group_id()
                    frame = GroupFrame(
                        group_id=body.out_group_id,
                        index=body.posted,
                        opener=body.node_id,
                        opener_instance=body.thread_state.index,
                        origin_node=self.node_name,
                        routed_instance=0,
                    )
                elif body.base_frames:
                    frame = body.base_frames[-1]
                body.posted += 1
                # acks apply only when the token went through an upstream
                # opener's flow-control window (leaf exit); a split exit
                # emits directly and is throttled by the caller instead
                self.engine.complete_activation(
                    body.ctx_id, token, self.node_name, frame=frame,
                    needs_ack=not body.opens_group,
                )
                return
            # Graph result: leaves through the exit at group depth 0.
            if body.base_frames and not body.opens_group:
                raise ScheduleError(
                    "graph result posted from inside an open split-merge group"
                )
            body.posted += 1
            self.engine.complete_activation(body.ctx_id, token, self.node_name)
            return
        window: Optional[SplitWindow] = None
        if body.opens_group:
            if body.out_group_id is None:
                body.out_group_id = self.engine.next_group_id()
            window = self._window_for(body)
        seq = body.posted
        body.posted += 1
        if window is not None:
            key = (body.graph.name, body.node_id, body.thread_state.index)
            if not window.can_send or self._pending.get(key):
                # Routing is deferred until the window admits the token,
                # so feedback-driven routes see up-to-date counters — the
                # paper routes "to those processing nodes which have
                # previously posted data objects to the merge operation".
                shedding = getattr(window, "shedding", "block")
                if shedding == "block":
                    admit = self.engine.sim.event()
                    req._admit_event = admit  # type: ignore[attr-defined]
                    self._pending.setdefault(key, deque()).append(
                        (body, token, succ, seq, admit)
                    )
                    return
                # Lossy modes never stall the poster: queued entries carry
                # admit=None and the queue is capped at the window size.
                queue = self._pending.setdefault(key, deque())
                if len(queue) >= (window.window or 1):
                    if shedding == "drop-oldest":
                        for i, entry in enumerate(queue):
                            if entry[0] is body:
                                del queue[i]
                                self._record_shed(body, window)
                                break
                        else:
                            # No queued entry of the live poster — dropping
                            # another body's token would corrupt its
                            # announced total; shed the incoming instead.
                            self._record_shed(body, window)
                            return
                    else:  # "shed": drop the incoming token
                        self._record_shed(body, window)
                        return
                queue.append((body, token, succ, seq, None))
                return
        self._send_routed(body, token, succ, seq, window)

    def _record_shed(self, body: _BodyState, window: SplitWindow) -> None:
        if isinstance(window, CreditWindow):
            window.on_shed()
        body.shed += 1
        if self.engine.tracer is not None:
            self.engine.trace("shed", node=self.node_name,
                              graph=body.graph.name)
        if self.engine.metrics is not None:
            self.engine.metrics.counter("tokens_shed").inc()

    def _send_routed(self, body: _BodyState, token: Token, succ: int,
                     seq: int, window: Optional[SplitWindow]) -> None:
        """Route *token* to a thread instance and transmit it."""
        succ_node = body.graph.node(succ)
        route = self._route_for(body.graph, succ, succ_node, window)
        instance = route(token)
        dest = succ_node.collection.node_of(instance)
        frames = body.base_frames
        if body.opens_group:
            frames = frames + (
                GroupFrame(
                    group_id=body.out_group_id,
                    index=seq,
                    opener=body.node_id,
                    opener_instance=body.thread_state.index,
                    origin_node=self.node_name,
                    routed_instance=instance,
                ),
            )
        env = DataEnvelope(
            token=token,
            graph=body.graph,
            node_id=succ,
            instance=instance,
            ctx_id=body.ctx_id,
            frames=frames,
        )
        if window is not None:
            window.on_post(instance)
        self._transmit(env, dest)

    def _window_for(self, body: _BodyState) -> SplitWindow:
        key = (body.graph.name, body.node_id, body.thread_state.index)
        window = self._windows.get(key)
        if window is None:
            node = body.graph.node(body.node_id)
            streaming = is_streaming_opener(node)
            stream = self.engine.stream
            window = CreditWindow(
                stream.window_for(node.name, streaming,
                                  self.engine.policy.window),
                shedding=stream.shedding_for(streaming),
            )
            self._windows[key] = window
        return window

    def _body_window(self, body: _BodyState) -> Optional[SplitWindow]:
        if not body.opens_group:
            return None
        return self._windows.get(
            (body.graph.name, body.node_id, body.thread_state.index)
        )

    def _pump_window(self, key: Tuple[str, int, int]) -> None:
        window = self._windows[key]
        queue = self._pending.get(key)
        while queue and window.can_send:
            body, token, succ, seq, admit = queue.popleft()
            self._send_routed(body, token, succ, seq, window)
            if admit is not None:
                admit.succeed()
        if queue is not None and not queue:
            del self._pending[key]

    def _route_for(
        self,
        graph: Flowgraph,
        node_id: int,
        node: FlowgraphNode,
        window: Optional[SplitWindow],
    ) -> Route:
        key = (graph.name, node_id)
        route = self._routes.get(key)
        if route is None:
            cell = self._route_window_cell
            engine = self.engine
            collection = node.collection

            def outstanding(i: int) -> int:
                return cell[0].outstanding(i) if cell[0] is not None else 0

            def depth(i: int) -> int:
                # Observed queue depth of instance *i*, wherever it
                # lives: the simulator plays the role of the
                # heartbeat-fed gauge the real runtime consults.
                host = engine.controllers.get(collection.node_of(i))
                if host is None:
                    return 0
                ts = host._threads.get((id(collection), i))
                return len(ts.inbox) if ts is not None else 0

            route = engine.routing.route_class_for(node.route_class)()
            route.bind(RoutingContext(collection, outstanding, depth))
            self._routes[key] = route
        self._route_window_cell[0] = window
        return route

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _send_ack(self, env: DataEnvelope) -> None:
        frame = env.top_frame()
        ack = AckMessage(
            graph_name=env.graph.name,
            opener=frame.opener,
            opener_instance=frame.opener_instance,
            group_id=frame.group_id,
            routed_instance=frame.routed_instance,
        )
        engine = self.engine
        if engine.tracer is not None:
            engine.trace("ack", node=self.node_name, graph=env.graph.name,
                         opener=frame.opener, group=frame.group_id)
        if engine.metrics is not None:
            engine.metrics.counter("acks").inc()
        engine.send_control(self.node_name, frame.origin_node, ACK_BYTES, ack)

    def _close_group(self, body: _BodyState) -> None:
        graph = body.graph
        if graph.scatter and body.node_id == graph.scatter_opener:
            # the group is merged by the calling application: report the
            # total to the activation instead of broadcasting to merges
            self.engine.scatter_total(body.ctx_id, body.posted - body.shed)
            return
        merge_id = graph.matching_merge(body.node_id)
        merge_node = graph.node(merge_id)
        total = body.posted - body.shed
        for instance in range(merge_node.collection.thread_count):
            msg = GroupTotalMessage(
                graph_name=graph.name,
                merge_node=merge_id,
                instance=instance,
                group_id=body.out_group_id,  # type: ignore[arg-type]
                total=total,
            )
            dest = merge_node.collection.node_of(instance)
            self.engine.send_control(self.node_name, dest, GROUP_TOTAL_BYTES, msg)

    def _transmit(self, env: DataEnvelope, dest: str) -> None:
        self.engine.transmit(env, self.node_name, dest)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def open_groups(self) -> List[str]:
        """Human-readable descriptions of unfinished merge groups."""
        out = []
        for gid, group in self._groups.items():
            if group.received == 0:
                continue  # stale broadcast entry
            out.append(
                f"group {gid} at node {self.node_name}: received "
                f"{group.received}, consumed {group.consumed}, total "
                f"{group.total}"
            )
        return out

    def pending_posts(self) -> int:
        return sum(len(q) for q in self._pending.values())

    def window_stats(self) -> Dict[Tuple[str, int, int], SplitWindow]:
        return dict(self._windows)
