"""Autoscaling policy: queue-depth gauges drive spawn/retire decisions.

The elastic-membership machinery (`add_kernel`/`retire_kernel`) gives the
cluster a control surface; :class:`ScalingPolicy` is the controller that
drives it.  Modeled on the decentralized "demand scaling" idea (saturated
nodes spawn replicas): per-kernel queue depths — shipped with heartbeat
leases to the name server and mirrored in the ``queue_depth_total``
metrics gauge — are compared against high/low watermarks, with a
cooldown so one burst cannot trigger a spawn/retire oscillation.

The policy itself is a pure, frozen decision function (engine-agnostic
and unit-testable under virtual time); the
:class:`~repro.runtime.multiprocess_engine.MultiprocessEngine` autoscaler
thread and sim-engine harnesses both consume it through
:meth:`ScalingPolicy.decide`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping, Optional

__all__ = ["ScalingPolicy"]


@dataclass(frozen=True)
class ScalingPolicy:
    """When to grow or shrink the kernel cluster.

    Frozen (shareable across forked kernels) with validation in
    ``__post_init__`` and ``from_env``, following the
    :class:`~repro.net.connections.TransportPolicy` /
    :class:`~repro.net.recovery.FaultPolicy` pattern.
    """

    #: Never shrink below this many kernels.
    min_kernels: int = 1
    #: Never grow beyond this many kernels.
    max_kernels: int = 8
    #: Grow when any kernel's observed queue depth reaches this.
    queue_high: int = 8
    #: Shrink when every kernel's observed queue depth is at or below
    #: this (the cluster is over-provisioned).
    queue_low: int = 1
    #: Seconds between scaling actions (per direction-agnostic change).
    cooldown: float = 2.0

    def __post_init__(self):
        if self.min_kernels < 1:
            raise ValueError(
                f"min_kernels must be >= 1: {self.min_kernels}")
        if self.max_kernels < self.min_kernels:
            raise ValueError(
                f"max_kernels ({self.max_kernels}) must be >= min_kernels "
                f"({self.min_kernels})")
        if self.queue_low < 0:
            raise ValueError(f"queue_low must be >= 0: {self.queue_low}")
        if self.queue_high <= self.queue_low:
            raise ValueError(
                f"queue_high ({self.queue_high}) must be > queue_low "
                f"({self.queue_low})")
        if self.cooldown < 0.0:
            raise ValueError(f"cooldown must be >= 0: {self.cooldown}")

    def decide(self, n_kernels: int, depths: Mapping[str, int],
               last_change: float, now: float) -> Optional[str]:
        """``"grow"``, ``"shrink"`` or ``None`` (hold).

        *depths* maps kernel name → observed queue depth; *last_change*
        and *now* are timestamps on any shared monotonic clock (wall
        clock on the real engines, virtual time in the simulator).
        Decisions are pure: same inputs, same answer.
        """
        if now - last_change < self.cooldown:
            return None
        if not depths:
            return None
        peak = max(depths.values())
        if peak >= self.queue_high and n_kernels < self.max_kernels:
            return "grow"
        if peak <= self.queue_low and n_kernels > self.min_kernels:
            return "shrink"
        return None

    @classmethod
    def from_env(cls, env=None) -> "ScalingPolicy":
        """Build from ``REPRO_SCALING_*`` variables (all optional).

        ``REPRO_SCALING_MIN``, ``REPRO_SCALING_MAX``,
        ``REPRO_SCALING_HIGH``, ``REPRO_SCALING_LOW``,
        ``REPRO_SCALING_COOLDOWN``.
        """
        if env is None:
            env = os.environ
        return cls(
            min_kernels=int(env.get("REPRO_SCALING_MIN", "1") or 1),
            max_kernels=int(env.get("REPRO_SCALING_MAX", "8") or 8),
            queue_high=int(env.get("REPRO_SCALING_HIGH", "8") or 8),
            queue_low=int(env.get("REPRO_SCALING_LOW", "1") or 1),
            cooldown=float(env.get("REPRO_SCALING_COOLDOWN", "2.0") or 2.0),
        )
